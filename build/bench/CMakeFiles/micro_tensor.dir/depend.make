# Empty dependencies file for micro_tensor.
# This may be replaced when dependencies are built.
