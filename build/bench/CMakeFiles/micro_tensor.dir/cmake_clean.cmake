file(REMOVE_RECURSE
  "CMakeFiles/micro_tensor.dir/micro_tensor.cc.o"
  "CMakeFiles/micro_tensor.dir/micro_tensor.cc.o.d"
  "micro_tensor"
  "micro_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
