file(REMOVE_RECURSE
  "CMakeFiles/exp_watermark.dir/exp_watermark.cc.o"
  "CMakeFiles/exp_watermark.dir/exp_watermark.cc.o.d"
  "exp_watermark"
  "exp_watermark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_watermark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
