# Empty dependencies file for exp_watermark.
# This may be replaced when dependencies are built.
