# Empty compiler generated dependencies file for exp_benchmarking.
# This may be replaced when dependencies are built.
