file(REMOVE_RECURSE
  "CMakeFiles/exp_benchmarking.dir/exp_benchmarking.cc.o"
  "CMakeFiles/exp_benchmarking.dir/exp_benchmarking.cc.o.d"
  "exp_benchmarking"
  "exp_benchmarking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_benchmarking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
