file(REMOVE_RECURSE
  "CMakeFiles/micro_index.dir/micro_index.cc.o"
  "CMakeFiles/micro_index.dir/micro_index.cc.o.d"
  "micro_index"
  "micro_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
