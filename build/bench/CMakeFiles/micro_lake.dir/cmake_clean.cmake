file(REMOVE_RECURSE
  "CMakeFiles/micro_lake.dir/micro_lake.cc.o"
  "CMakeFiles/micro_lake.dir/micro_lake.cc.o.d"
  "micro_lake"
  "micro_lake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
