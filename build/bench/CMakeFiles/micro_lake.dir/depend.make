# Empty dependencies file for micro_lake.
# This may be replaced when dependencies are built.
