# Empty dependencies file for exp_indexer.
# This may be replaced when dependencies are built.
