file(REMOVE_RECURSE
  "CMakeFiles/exp_indexer.dir/exp_indexer.cc.o"
  "CMakeFiles/exp_indexer.dir/exp_indexer.cc.o.d"
  "exp_indexer"
  "exp_indexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_indexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
