file(REMOVE_RECURSE
  "CMakeFiles/exp_membership.dir/exp_membership.cc.o"
  "CMakeFiles/exp_membership.dir/exp_membership.cc.o.d"
  "exp_membership"
  "exp_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
