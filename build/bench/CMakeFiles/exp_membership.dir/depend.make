# Empty dependencies file for exp_membership.
# This may be replaced when dependencies are built.
