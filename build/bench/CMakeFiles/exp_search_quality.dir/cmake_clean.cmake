file(REMOVE_RECURSE
  "CMakeFiles/exp_search_quality.dir/exp_search_quality.cc.o"
  "CMakeFiles/exp_search_quality.dir/exp_search_quality.cc.o.d"
  "exp_search_quality"
  "exp_search_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_search_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
