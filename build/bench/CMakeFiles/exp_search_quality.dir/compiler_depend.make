# Empty compiler generated dependencies file for exp_search_quality.
# This may be replaced when dependencies are built.
