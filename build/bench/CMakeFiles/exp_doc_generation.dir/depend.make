# Empty dependencies file for exp_doc_generation.
# This may be replaced when dependencies are built.
