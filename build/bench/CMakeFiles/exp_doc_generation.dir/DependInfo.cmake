
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_doc_generation.cc" "bench/CMakeFiles/exp_doc_generation.dir/exp_doc_generation.cc.o" "gcc" "bench/CMakeFiles/exp_doc_generation.dir/exp_doc_generation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lakegen/CMakeFiles/mlake_lakegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/mlake_search.dir/DependInfo.cmake"
  "/root/repo/build/src/versioning/CMakeFiles/mlake_versioning.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/mlake_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/mlake_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mlake_index.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/mlake_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mlake_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mlake_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
