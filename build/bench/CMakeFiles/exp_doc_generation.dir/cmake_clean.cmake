file(REMOVE_RECURSE
  "CMakeFiles/exp_doc_generation.dir/exp_doc_generation.cc.o"
  "CMakeFiles/exp_doc_generation.dir/exp_doc_generation.cc.o.d"
  "exp_doc_generation"
  "exp_doc_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_doc_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
