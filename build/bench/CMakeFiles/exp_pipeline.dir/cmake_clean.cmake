file(REMOVE_RECURSE
  "CMakeFiles/exp_pipeline.dir/exp_pipeline.cc.o"
  "CMakeFiles/exp_pipeline.dir/exp_pipeline.cc.o.d"
  "exp_pipeline"
  "exp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
