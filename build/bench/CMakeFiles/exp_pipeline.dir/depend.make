# Empty dependencies file for exp_pipeline.
# This may be replaced when dependencies are built.
