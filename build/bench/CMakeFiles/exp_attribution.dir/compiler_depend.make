# Empty compiler generated dependencies file for exp_attribution.
# This may be replaced when dependencies are built.
