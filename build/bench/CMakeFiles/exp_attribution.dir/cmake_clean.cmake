file(REMOVE_RECURSE
  "CMakeFiles/exp_attribution.dir/exp_attribution.cc.o"
  "CMakeFiles/exp_attribution.dir/exp_attribution.cc.o.d"
  "exp_attribution"
  "exp_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
