file(REMOVE_RECURSE
  "CMakeFiles/micro_storage.dir/micro_storage.cc.o"
  "CMakeFiles/micro_storage.dir/micro_storage.cc.o.d"
  "micro_storage"
  "micro_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
