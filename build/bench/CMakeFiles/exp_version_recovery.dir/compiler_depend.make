# Empty compiler generated dependencies file for exp_version_recovery.
# This may be replaced when dependencies are built.
