file(REMOVE_RECURSE
  "CMakeFiles/exp_version_recovery.dir/exp_version_recovery.cc.o"
  "CMakeFiles/exp_version_recovery.dir/exp_version_recovery.cc.o.d"
  "exp_version_recovery"
  "exp_version_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_version_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
