# Empty compiler generated dependencies file for card_autogen.
# This may be replaced when dependencies are built.
