file(REMOVE_RECURSE
  "CMakeFiles/card_autogen.dir/card_autogen.cc.o"
  "CMakeFiles/card_autogen.dir/card_autogen.cc.o.d"
  "card_autogen"
  "card_autogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/card_autogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
