# Empty dependencies file for legal_model_search.
# This may be replaced when dependencies are built.
