file(REMOVE_RECURSE
  "CMakeFiles/legal_model_search.dir/legal_model_search.cc.o"
  "CMakeFiles/legal_model_search.dir/legal_model_search.cc.o.d"
  "legal_model_search"
  "legal_model_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legal_model_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
