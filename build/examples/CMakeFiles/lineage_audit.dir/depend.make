# Empty dependencies file for lineage_audit.
# This may be replaced when dependencies are built.
