file(REMOVE_RECURSE
  "CMakeFiles/lineage_audit.dir/lineage_audit.cc.o"
  "CMakeFiles/lineage_audit.dir/lineage_audit.cc.o.d"
  "lineage_audit"
  "lineage_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
