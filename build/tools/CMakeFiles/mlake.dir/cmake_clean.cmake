file(REMOVE_RECURSE
  "CMakeFiles/mlake.dir/mlake.cc.o"
  "CMakeFiles/mlake.dir/mlake.cc.o.d"
  "mlake"
  "mlake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
