# Empty dependencies file for mlake.
# This may be replaced when dependencies are built.
