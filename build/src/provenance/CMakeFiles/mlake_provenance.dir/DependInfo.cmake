
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/influence.cc" "src/provenance/CMakeFiles/mlake_provenance.dir/influence.cc.o" "gcc" "src/provenance/CMakeFiles/mlake_provenance.dir/influence.cc.o.d"
  "/root/repo/src/provenance/membership.cc" "src/provenance/CMakeFiles/mlake_provenance.dir/membership.cc.o" "gcc" "src/provenance/CMakeFiles/mlake_provenance.dir/membership.cc.o.d"
  "/root/repo/src/provenance/tracin.cc" "src/provenance/CMakeFiles/mlake_provenance.dir/tracin.cc.o" "gcc" "src/provenance/CMakeFiles/mlake_provenance.dir/tracin.cc.o.d"
  "/root/repo/src/provenance/watermark.cc" "src/provenance/CMakeFiles/mlake_provenance.dir/watermark.cc.o" "gcc" "src/provenance/CMakeFiles/mlake_provenance.dir/watermark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlake_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
