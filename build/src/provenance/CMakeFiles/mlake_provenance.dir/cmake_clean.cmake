file(REMOVE_RECURSE
  "CMakeFiles/mlake_provenance.dir/influence.cc.o"
  "CMakeFiles/mlake_provenance.dir/influence.cc.o.d"
  "CMakeFiles/mlake_provenance.dir/membership.cc.o"
  "CMakeFiles/mlake_provenance.dir/membership.cc.o.d"
  "CMakeFiles/mlake_provenance.dir/tracin.cc.o"
  "CMakeFiles/mlake_provenance.dir/tracin.cc.o.d"
  "CMakeFiles/mlake_provenance.dir/watermark.cc.o"
  "CMakeFiles/mlake_provenance.dir/watermark.cc.o.d"
  "libmlake_provenance.a"
  "libmlake_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
