# Empty compiler generated dependencies file for mlake_provenance.
# This may be replaced when dependencies are built.
