file(REMOVE_RECURSE
  "libmlake_provenance.a"
)
