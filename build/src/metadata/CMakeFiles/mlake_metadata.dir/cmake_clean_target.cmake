file(REMOVE_RECURSE
  "libmlake_metadata.a"
)
