file(REMOVE_RECURSE
  "CMakeFiles/mlake_metadata.dir/card_noise.cc.o"
  "CMakeFiles/mlake_metadata.dir/card_noise.cc.o.d"
  "CMakeFiles/mlake_metadata.dir/model_card.cc.o"
  "CMakeFiles/mlake_metadata.dir/model_card.cc.o.d"
  "libmlake_metadata.a"
  "libmlake_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
