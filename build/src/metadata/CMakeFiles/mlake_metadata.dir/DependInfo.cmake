
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/card_noise.cc" "src/metadata/CMakeFiles/mlake_metadata.dir/card_noise.cc.o" "gcc" "src/metadata/CMakeFiles/mlake_metadata.dir/card_noise.cc.o.d"
  "/root/repo/src/metadata/model_card.cc" "src/metadata/CMakeFiles/mlake_metadata.dir/model_card.cc.o" "gcc" "src/metadata/CMakeFiles/mlake_metadata.dir/model_card.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
