# Empty dependencies file for mlake_metadata.
# This may be replaced when dependencies are built.
