file(REMOVE_RECURSE
  "libmlake_common.a"
)
