file(REMOVE_RECURSE
  "CMakeFiles/mlake_common.dir/file_util.cc.o"
  "CMakeFiles/mlake_common.dir/file_util.cc.o.d"
  "CMakeFiles/mlake_common.dir/hash.cc.o"
  "CMakeFiles/mlake_common.dir/hash.cc.o.d"
  "CMakeFiles/mlake_common.dir/json.cc.o"
  "CMakeFiles/mlake_common.dir/json.cc.o.d"
  "CMakeFiles/mlake_common.dir/logging.cc.o"
  "CMakeFiles/mlake_common.dir/logging.cc.o.d"
  "CMakeFiles/mlake_common.dir/random.cc.o"
  "CMakeFiles/mlake_common.dir/random.cc.o.d"
  "CMakeFiles/mlake_common.dir/status.cc.o"
  "CMakeFiles/mlake_common.dir/status.cc.o.d"
  "CMakeFiles/mlake_common.dir/string_util.cc.o"
  "CMakeFiles/mlake_common.dir/string_util.cc.o.d"
  "libmlake_common.a"
  "libmlake_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
