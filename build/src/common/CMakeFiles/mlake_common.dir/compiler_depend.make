# Empty compiler generated dependencies file for mlake_common.
# This may be replaced when dependencies are built.
