file(REMOVE_RECURSE
  "libmlake_versioning.a"
)
