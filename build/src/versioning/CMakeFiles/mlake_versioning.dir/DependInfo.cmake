
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/versioning/edge_classifier.cc" "src/versioning/CMakeFiles/mlake_versioning.dir/edge_classifier.cc.o" "gcc" "src/versioning/CMakeFiles/mlake_versioning.dir/edge_classifier.cc.o.d"
  "/root/repo/src/versioning/heritage.cc" "src/versioning/CMakeFiles/mlake_versioning.dir/heritage.cc.o" "gcc" "src/versioning/CMakeFiles/mlake_versioning.dir/heritage.cc.o.d"
  "/root/repo/src/versioning/model_graph.cc" "src/versioning/CMakeFiles/mlake_versioning.dir/model_graph.cc.o" "gcc" "src/versioning/CMakeFiles/mlake_versioning.dir/model_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlake_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
