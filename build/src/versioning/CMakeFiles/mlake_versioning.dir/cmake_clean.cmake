file(REMOVE_RECURSE
  "CMakeFiles/mlake_versioning.dir/edge_classifier.cc.o"
  "CMakeFiles/mlake_versioning.dir/edge_classifier.cc.o.d"
  "CMakeFiles/mlake_versioning.dir/heritage.cc.o"
  "CMakeFiles/mlake_versioning.dir/heritage.cc.o.d"
  "CMakeFiles/mlake_versioning.dir/model_graph.cc.o"
  "CMakeFiles/mlake_versioning.dir/model_graph.cc.o.d"
  "libmlake_versioning.a"
  "libmlake_versioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_versioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
