# Empty compiler generated dependencies file for mlake_versioning.
# This may be replaced when dependencies are built.
