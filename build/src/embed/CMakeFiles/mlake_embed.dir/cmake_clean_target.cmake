file(REMOVE_RECURSE
  "libmlake_embed.a"
)
