file(REMOVE_RECURSE
  "CMakeFiles/mlake_embed.dir/cka.cc.o"
  "CMakeFiles/mlake_embed.dir/cka.cc.o.d"
  "CMakeFiles/mlake_embed.dir/embedder.cc.o"
  "CMakeFiles/mlake_embed.dir/embedder.cc.o.d"
  "libmlake_embed.a"
  "libmlake_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
