# Empty dependencies file for mlake_embed.
# This may be replaced when dependencies are built.
