
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/cka.cc" "src/embed/CMakeFiles/mlake_embed.dir/cka.cc.o" "gcc" "src/embed/CMakeFiles/mlake_embed.dir/cka.cc.o.d"
  "/root/repo/src/embed/embedder.cc" "src/embed/CMakeFiles/mlake_embed.dir/embedder.cc.o" "gcc" "src/embed/CMakeFiles/mlake_embed.dir/embedder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlake_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
