# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("storage")
subdirs("metadata")
subdirs("index")
subdirs("embed")
subdirs("provenance")
subdirs("versioning")
subdirs("search")
subdirs("lakegen")
subdirs("core")
