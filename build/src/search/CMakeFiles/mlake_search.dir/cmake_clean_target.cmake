file(REMOVE_RECURSE
  "libmlake_search.a"
)
