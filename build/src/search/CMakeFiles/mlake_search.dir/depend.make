# Empty dependencies file for mlake_search.
# This may be replaced when dependencies are built.
