file(REMOVE_RECURSE
  "CMakeFiles/mlake_search.dir/ast.cc.o"
  "CMakeFiles/mlake_search.dir/ast.cc.o.d"
  "CMakeFiles/mlake_search.dir/executor.cc.o"
  "CMakeFiles/mlake_search.dir/executor.cc.o.d"
  "CMakeFiles/mlake_search.dir/parser.cc.o"
  "CMakeFiles/mlake_search.dir/parser.cc.o.d"
  "libmlake_search.a"
  "libmlake_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
