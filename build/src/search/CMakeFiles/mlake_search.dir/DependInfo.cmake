
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/ast.cc" "src/search/CMakeFiles/mlake_search.dir/ast.cc.o" "gcc" "src/search/CMakeFiles/mlake_search.dir/ast.cc.o.d"
  "/root/repo/src/search/executor.cc" "src/search/CMakeFiles/mlake_search.dir/executor.cc.o" "gcc" "src/search/CMakeFiles/mlake_search.dir/executor.cc.o.d"
  "/root/repo/src/search/parser.cc" "src/search/CMakeFiles/mlake_search.dir/parser.cc.o" "gcc" "src/search/CMakeFiles/mlake_search.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metadata/CMakeFiles/mlake_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mlake_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
