# Empty compiler generated dependencies file for mlake_nn.
# This may be replaced when dependencies are built.
