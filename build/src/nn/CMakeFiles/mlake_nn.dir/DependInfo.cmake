
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cc" "src/nn/CMakeFiles/mlake_nn.dir/dataset.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/dataset.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/mlake_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/mlake_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/mlake_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/mlake_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/mlake_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/trainer.cc.o.d"
  "/root/repo/src/nn/transform.cc" "src/nn/CMakeFiles/mlake_nn.dir/transform.cc.o" "gcc" "src/nn/CMakeFiles/mlake_nn.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
