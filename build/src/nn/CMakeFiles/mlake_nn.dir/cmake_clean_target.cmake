file(REMOVE_RECURSE
  "libmlake_nn.a"
)
