file(REMOVE_RECURSE
  "CMakeFiles/mlake_nn.dir/dataset.cc.o"
  "CMakeFiles/mlake_nn.dir/dataset.cc.o.d"
  "CMakeFiles/mlake_nn.dir/layers.cc.o"
  "CMakeFiles/mlake_nn.dir/layers.cc.o.d"
  "CMakeFiles/mlake_nn.dir/loss.cc.o"
  "CMakeFiles/mlake_nn.dir/loss.cc.o.d"
  "CMakeFiles/mlake_nn.dir/model.cc.o"
  "CMakeFiles/mlake_nn.dir/model.cc.o.d"
  "CMakeFiles/mlake_nn.dir/optimizer.cc.o"
  "CMakeFiles/mlake_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/mlake_nn.dir/trainer.cc.o"
  "CMakeFiles/mlake_nn.dir/trainer.cc.o.d"
  "CMakeFiles/mlake_nn.dir/transform.cc.o"
  "CMakeFiles/mlake_nn.dir/transform.cc.o.d"
  "libmlake_nn.a"
  "libmlake_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
