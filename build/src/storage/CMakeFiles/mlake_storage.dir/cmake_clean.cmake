file(REMOVE_RECURSE
  "CMakeFiles/mlake_storage.dir/blob_store.cc.o"
  "CMakeFiles/mlake_storage.dir/blob_store.cc.o.d"
  "CMakeFiles/mlake_storage.dir/catalog.cc.o"
  "CMakeFiles/mlake_storage.dir/catalog.cc.o.d"
  "CMakeFiles/mlake_storage.dir/kv_store.cc.o"
  "CMakeFiles/mlake_storage.dir/kv_store.cc.o.d"
  "CMakeFiles/mlake_storage.dir/model_artifact.cc.o"
  "CMakeFiles/mlake_storage.dir/model_artifact.cc.o.d"
  "libmlake_storage.a"
  "libmlake_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
