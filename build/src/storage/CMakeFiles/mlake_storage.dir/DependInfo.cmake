
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blob_store.cc" "src/storage/CMakeFiles/mlake_storage.dir/blob_store.cc.o" "gcc" "src/storage/CMakeFiles/mlake_storage.dir/blob_store.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/mlake_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/mlake_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/storage/CMakeFiles/mlake_storage.dir/kv_store.cc.o" "gcc" "src/storage/CMakeFiles/mlake_storage.dir/kv_store.cc.o.d"
  "/root/repo/src/storage/model_artifact.cc" "src/storage/CMakeFiles/mlake_storage.dir/model_artifact.cc.o" "gcc" "src/storage/CMakeFiles/mlake_storage.dir/model_artifact.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mlake_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mlake_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
