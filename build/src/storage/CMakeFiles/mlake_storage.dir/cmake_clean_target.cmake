file(REMOVE_RECURSE
  "libmlake_storage.a"
)
