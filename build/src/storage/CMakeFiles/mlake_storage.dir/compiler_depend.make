# Empty compiler generated dependencies file for mlake_storage.
# This may be replaced when dependencies are built.
