# Empty compiler generated dependencies file for mlake_lakegen.
# This may be replaced when dependencies are built.
