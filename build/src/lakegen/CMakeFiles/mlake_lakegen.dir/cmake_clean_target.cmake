file(REMOVE_RECURSE
  "libmlake_lakegen.a"
)
