file(REMOVE_RECURSE
  "CMakeFiles/mlake_lakegen.dir/lakegen.cc.o"
  "CMakeFiles/mlake_lakegen.dir/lakegen.cc.o.d"
  "libmlake_lakegen.a"
  "libmlake_lakegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_lakegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
