file(REMOVE_RECURSE
  "CMakeFiles/mlake_tensor.dir/ops.cc.o"
  "CMakeFiles/mlake_tensor.dir/ops.cc.o.d"
  "CMakeFiles/mlake_tensor.dir/serialize.cc.o"
  "CMakeFiles/mlake_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/mlake_tensor.dir/tensor.cc.o"
  "CMakeFiles/mlake_tensor.dir/tensor.cc.o.d"
  "libmlake_tensor.a"
  "libmlake_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
