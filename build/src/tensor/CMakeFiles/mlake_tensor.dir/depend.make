# Empty dependencies file for mlake_tensor.
# This may be replaced when dependencies are built.
