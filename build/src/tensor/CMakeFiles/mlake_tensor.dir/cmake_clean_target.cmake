file(REMOVE_RECURSE
  "libmlake_tensor.a"
)
