
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/brute_force_index.cc" "src/index/CMakeFiles/mlake_index.dir/brute_force_index.cc.o" "gcc" "src/index/CMakeFiles/mlake_index.dir/brute_force_index.cc.o.d"
  "/root/repo/src/index/hnsw_index.cc" "src/index/CMakeFiles/mlake_index.dir/hnsw_index.cc.o" "gcc" "src/index/CMakeFiles/mlake_index.dir/hnsw_index.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/mlake_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/mlake_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/minhash_lsh.cc" "src/index/CMakeFiles/mlake_index.dir/minhash_lsh.cc.o" "gcc" "src/index/CMakeFiles/mlake_index.dir/minhash_lsh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlake_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
