file(REMOVE_RECURSE
  "CMakeFiles/mlake_index.dir/brute_force_index.cc.o"
  "CMakeFiles/mlake_index.dir/brute_force_index.cc.o.d"
  "CMakeFiles/mlake_index.dir/hnsw_index.cc.o"
  "CMakeFiles/mlake_index.dir/hnsw_index.cc.o.d"
  "CMakeFiles/mlake_index.dir/inverted_index.cc.o"
  "CMakeFiles/mlake_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/mlake_index.dir/minhash_lsh.cc.o"
  "CMakeFiles/mlake_index.dir/minhash_lsh.cc.o.d"
  "libmlake_index.a"
  "libmlake_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
