file(REMOVE_RECURSE
  "libmlake_index.a"
)
