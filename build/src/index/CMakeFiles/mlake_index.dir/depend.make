# Empty dependencies file for mlake_index.
# This may be replaced when dependencies are built.
