# Empty compiler generated dependencies file for mlake_core.
# This may be replaced when dependencies are built.
