file(REMOVE_RECURSE
  "libmlake_core.a"
)
