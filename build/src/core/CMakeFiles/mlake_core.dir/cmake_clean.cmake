file(REMOVE_RECURSE
  "CMakeFiles/mlake_core.dir/model_lake.cc.o"
  "CMakeFiles/mlake_core.dir/model_lake.cc.o.d"
  "libmlake_core.a"
  "libmlake_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlake_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
