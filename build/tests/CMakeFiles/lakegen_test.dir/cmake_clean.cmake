file(REMOVE_RECURSE
  "CMakeFiles/lakegen_test.dir/lakegen_test.cc.o"
  "CMakeFiles/lakegen_test.dir/lakegen_test.cc.o.d"
  "lakegen_test"
  "lakegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
