# Empty dependencies file for lakegen_test.
# This may be replaced when dependencies are built.
