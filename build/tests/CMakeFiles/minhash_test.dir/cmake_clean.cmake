file(REMOVE_RECURSE
  "CMakeFiles/minhash_test.dir/minhash_test.cc.o"
  "CMakeFiles/minhash_test.dir/minhash_test.cc.o.d"
  "minhash_test"
  "minhash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minhash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
