# Empty dependencies file for minhash_test.
# This may be replaced when dependencies are built.
