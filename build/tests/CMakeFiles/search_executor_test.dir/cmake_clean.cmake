file(REMOVE_RECURSE
  "CMakeFiles/search_executor_test.dir/search_executor_test.cc.o"
  "CMakeFiles/search_executor_test.dir/search_executor_test.cc.o.d"
  "search_executor_test"
  "search_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
