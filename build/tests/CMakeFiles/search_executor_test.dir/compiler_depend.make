# Empty compiler generated dependencies file for search_executor_test.
# This may be replaced when dependencies are built.
