file(REMOVE_RECURSE
  "CMakeFiles/inverted_index_test.dir/inverted_index_test.cc.o"
  "CMakeFiles/inverted_index_test.dir/inverted_index_test.cc.o.d"
  "inverted_index_test"
  "inverted_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverted_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
