# Empty compiler generated dependencies file for json_property_test.
# This may be replaced when dependencies are built.
