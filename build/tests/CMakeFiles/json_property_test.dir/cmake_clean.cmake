file(REMOVE_RECURSE
  "CMakeFiles/json_property_test.dir/json_property_test.cc.o"
  "CMakeFiles/json_property_test.dir/json_property_test.cc.o.d"
  "json_property_test"
  "json_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
