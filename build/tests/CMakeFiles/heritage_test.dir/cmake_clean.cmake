file(REMOVE_RECURSE
  "CMakeFiles/heritage_test.dir/heritage_test.cc.o"
  "CMakeFiles/heritage_test.dir/heritage_test.cc.o.d"
  "heritage_test"
  "heritage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heritage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
