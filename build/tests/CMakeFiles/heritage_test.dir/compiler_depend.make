# Empty compiler generated dependencies file for heritage_test.
# This may be replaced when dependencies are built.
