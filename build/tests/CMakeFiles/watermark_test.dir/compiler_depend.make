# Empty compiler generated dependencies file for watermark_test.
# This may be replaced when dependencies are built.
