file(REMOVE_RECURSE
  "CMakeFiles/watermark_test.dir/watermark_test.cc.o"
  "CMakeFiles/watermark_test.dir/watermark_test.cc.o.d"
  "watermark_test"
  "watermark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watermark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
