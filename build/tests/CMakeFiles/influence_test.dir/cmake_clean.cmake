file(REMOVE_RECURSE
  "CMakeFiles/influence_test.dir/influence_test.cc.o"
  "CMakeFiles/influence_test.dir/influence_test.cc.o.d"
  "influence_test"
  "influence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
