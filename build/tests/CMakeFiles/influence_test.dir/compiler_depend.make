# Empty compiler generated dependencies file for influence_test.
# This may be replaced when dependencies are built.
