# Empty compiler generated dependencies file for model_lake_test.
# This may be replaced when dependencies are built.
