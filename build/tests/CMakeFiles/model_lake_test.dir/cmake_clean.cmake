file(REMOVE_RECURSE
  "CMakeFiles/model_lake_test.dir/model_lake_test.cc.o"
  "CMakeFiles/model_lake_test.dir/model_lake_test.cc.o.d"
  "model_lake_test"
  "model_lake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_lake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
