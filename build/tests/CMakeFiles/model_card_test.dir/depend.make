# Empty dependencies file for model_card_test.
# This may be replaced when dependencies are built.
