file(REMOVE_RECURSE
  "CMakeFiles/model_card_test.dir/model_card_test.cc.o"
  "CMakeFiles/model_card_test.dir/model_card_test.cc.o.d"
  "model_card_test"
  "model_card_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_card_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
