file(REMOVE_RECURSE
  "CMakeFiles/json_test.dir/json_test.cc.o"
  "CMakeFiles/json_test.dir/json_test.cc.o.d"
  "json_test"
  "json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
