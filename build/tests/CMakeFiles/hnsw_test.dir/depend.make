# Empty dependencies file for hnsw_test.
# This may be replaced when dependencies are built.
