# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hnsw_test.
