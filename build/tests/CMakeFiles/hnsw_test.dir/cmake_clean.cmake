file(REMOVE_RECURSE
  "CMakeFiles/hnsw_test.dir/hnsw_test.cc.o"
  "CMakeFiles/hnsw_test.dir/hnsw_test.cc.o.d"
  "hnsw_test"
  "hnsw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hnsw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
