file(REMOVE_RECURSE
  "CMakeFiles/model_artifact_test.dir/model_artifact_test.cc.o"
  "CMakeFiles/model_artifact_test.dir/model_artifact_test.cc.o.d"
  "model_artifact_test"
  "model_artifact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_artifact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
