# Empty dependencies file for model_artifact_test.
# This may be replaced when dependencies are built.
