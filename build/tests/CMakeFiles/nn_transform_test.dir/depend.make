# Empty dependencies file for nn_transform_test.
# This may be replaced when dependencies are built.
