file(REMOVE_RECURSE
  "CMakeFiles/nn_transform_test.dir/nn_transform_test.cc.o"
  "CMakeFiles/nn_transform_test.dir/nn_transform_test.cc.o.d"
  "nn_transform_test"
  "nn_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
