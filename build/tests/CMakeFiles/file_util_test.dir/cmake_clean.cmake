file(REMOVE_RECURSE
  "CMakeFiles/file_util_test.dir/file_util_test.cc.o"
  "CMakeFiles/file_util_test.dir/file_util_test.cc.o.d"
  "file_util_test"
  "file_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
