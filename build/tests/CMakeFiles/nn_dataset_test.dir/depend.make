# Empty dependencies file for nn_dataset_test.
# This may be replaced when dependencies are built.
