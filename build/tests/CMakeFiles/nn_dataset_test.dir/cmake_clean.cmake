file(REMOVE_RECURSE
  "CMakeFiles/nn_dataset_test.dir/nn_dataset_test.cc.o"
  "CMakeFiles/nn_dataset_test.dir/nn_dataset_test.cc.o.d"
  "nn_dataset_test"
  "nn_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
