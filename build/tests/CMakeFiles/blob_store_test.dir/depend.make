# Empty dependencies file for blob_store_test.
# This may be replaced when dependencies are built.
