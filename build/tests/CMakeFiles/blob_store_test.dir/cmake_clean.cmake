file(REMOVE_RECURSE
  "CMakeFiles/blob_store_test.dir/blob_store_test.cc.o"
  "CMakeFiles/blob_store_test.dir/blob_store_test.cc.o.d"
  "blob_store_test"
  "blob_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
