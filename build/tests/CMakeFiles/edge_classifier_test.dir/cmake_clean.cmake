file(REMOVE_RECURSE
  "CMakeFiles/edge_classifier_test.dir/edge_classifier_test.cc.o"
  "CMakeFiles/edge_classifier_test.dir/edge_classifier_test.cc.o.d"
  "edge_classifier_test"
  "edge_classifier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
