# Empty dependencies file for edge_classifier_test.
# This may be replaced when dependencies are built.
