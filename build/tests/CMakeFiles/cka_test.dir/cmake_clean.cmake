file(REMOVE_RECURSE
  "CMakeFiles/cka_test.dir/cka_test.cc.o"
  "CMakeFiles/cka_test.dir/cka_test.cc.o.d"
  "cka_test"
  "cka_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
