# Empty compiler generated dependencies file for cka_test.
# This may be replaced when dependencies are built.
