# Empty compiler generated dependencies file for search_parser_test.
# This may be replaced when dependencies are built.
