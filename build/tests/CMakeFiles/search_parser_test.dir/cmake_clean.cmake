file(REMOVE_RECURSE
  "CMakeFiles/search_parser_test.dir/search_parser_test.cc.o"
  "CMakeFiles/search_parser_test.dir/search_parser_test.cc.o.d"
  "search_parser_test"
  "search_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
