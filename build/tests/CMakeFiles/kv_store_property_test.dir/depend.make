# Empty dependencies file for kv_store_property_test.
# This may be replaced when dependencies are built.
