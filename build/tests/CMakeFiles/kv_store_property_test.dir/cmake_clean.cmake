file(REMOVE_RECURSE
  "CMakeFiles/kv_store_property_test.dir/kv_store_property_test.cc.o"
  "CMakeFiles/kv_store_property_test.dir/kv_store_property_test.cc.o.d"
  "kv_store_property_test"
  "kv_store_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
