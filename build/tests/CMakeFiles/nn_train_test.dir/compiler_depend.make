# Empty compiler generated dependencies file for nn_train_test.
# This may be replaced when dependencies are built.
