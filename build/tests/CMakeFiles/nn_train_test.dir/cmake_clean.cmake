file(REMOVE_RECURSE
  "CMakeFiles/nn_train_test.dir/nn_train_test.cc.o"
  "CMakeFiles/nn_train_test.dir/nn_train_test.cc.o.d"
  "nn_train_test"
  "nn_train_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
