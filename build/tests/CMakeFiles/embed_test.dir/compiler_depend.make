# Empty compiler generated dependencies file for embed_test.
# This may be replaced when dependencies are built.
