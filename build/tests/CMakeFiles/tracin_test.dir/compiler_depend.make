# Empty compiler generated dependencies file for tracin_test.
# This may be replaced when dependencies are built.
