file(REMOVE_RECURSE
  "CMakeFiles/tracin_test.dir/tracin_test.cc.o"
  "CMakeFiles/tracin_test.dir/tracin_test.cc.o.d"
  "tracin_test"
  "tracin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
