file(REMOVE_RECURSE
  "CMakeFiles/model_graph_test.dir/model_graph_test.cc.o"
  "CMakeFiles/model_graph_test.dir/model_graph_test.cc.o.d"
  "model_graph_test"
  "model_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
