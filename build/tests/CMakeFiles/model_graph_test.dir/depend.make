# Empty dependencies file for model_graph_test.
# This may be replaced when dependencies are built.
