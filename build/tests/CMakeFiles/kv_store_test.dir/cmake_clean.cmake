file(REMOVE_RECURSE
  "CMakeFiles/kv_store_test.dir/kv_store_test.cc.o"
  "CMakeFiles/kv_store_test.dir/kv_store_test.cc.o.d"
  "kv_store_test"
  "kv_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
