file(REMOVE_RECURSE
  "CMakeFiles/membership_test.dir/membership_test.cc.o"
  "CMakeFiles/membership_test.dir/membership_test.cc.o.d"
  "membership_test"
  "membership_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
