# Empty dependencies file for membership_test.
# This may be replaced when dependencies are built.
