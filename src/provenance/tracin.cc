#include "provenance/tracin.h"

#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace mlake::provenance {

namespace {

int FindHead(nn::Model* model) {
  int last = -1;
  for (size_t i = 0; i < model->num_layers(); ++i) {
    if (model->layer(i)->type() == "linear") last = static_cast<int>(i);
  }
  return last;
}

/// Flattened head-gradient of the CE loss for one example.
void HeadGrad(nn::Model* model, int head_idx, const Tensor& x_row,
              int64_t label, std::vector<double>* out) {
  Tensor hidden = model->ForwardUpTo(x_row, static_cast<size_t>(head_idx));
  Tensor logits = model->Forward(x_row, /*training=*/false);
  Tensor probs = RowSoftmax(logits);
  int64_t classes = probs.dim(1);
  int64_t h_dim = hidden.dim(1);
  out->assign(static_cast<size_t>(classes * (h_dim + 1)), 0.0);
  for (int64_t c = 0; c < classes; ++c) {
    double err = probs.At(0, c) - (c == label ? 1.0 : 0.0);
    double* row = out->data() + c * (h_dim + 1);
    for (int64_t j = 0; j < h_dim; ++j) {
      row[j] = err * hidden.At(0, j);
    }
    row[h_dim] = err;
  }
}

}  // namespace

Result<std::vector<double>> ComputeTracIn(
    const std::vector<nn::Model*>& checkpoints, const nn::Dataset& train,
    const Tensor& test_x, int64_t test_label, const TracInConfig& config) {
  if (checkpoints.empty()) {
    return Status::InvalidArgument("ComputeTracIn: no checkpoints");
  }
  if (train.size() == 0) {
    return Status::InvalidArgument("ComputeTracIn: empty training set");
  }
  std::vector<double> scores(train.size(), 0.0);
  std::vector<double> g_test, g_train;
  for (nn::Model* ckpt : checkpoints) {
    int head_idx = FindHead(ckpt);
    if (head_idx < 0) {
      return Status::FailedPrecondition("ComputeTracIn: no linear head");
    }
    HeadGrad(ckpt, head_idx, test_x, test_label, &g_test);
    for (size_t i = 0; i < train.size(); ++i) {
      Tensor row = train.x.Row(static_cast<int64_t>(i))
                       .Reshape({1, train.x.dim(1)});
      HeadGrad(ckpt, head_idx, row, train.labels[i], &g_train);
      if (g_train.size() != g_test.size()) {
        return Status::InvalidArgument(
            "ComputeTracIn: checkpoints have inconsistent head shapes");
      }
      double dot = 0.0;
      for (size_t d = 0; d < g_test.size(); ++d) dot += g_test[d] * g_train[d];
      scores[i] += static_cast<double>(config.lr) * dot;
    }
  }
  return scores;
}

Result<Tensor> InputSensitivity(nn::Model* model, const Tensor& x,
                                int64_t target_class) {
  if (x.rank() != 2 || x.dim(0) != 1) {
    return Status::InvalidArgument("InputSensitivity: x must be [1, d]");
  }
  if (target_class < 0 || target_class >= model->spec().num_classes) {
    return Status::InvalidArgument("InputSensitivity: bad target class");
  }
  model->ZeroGrad();
  Tensor logits = model->Forward(x, /*training=*/true);
  Tensor d_logits(logits.shape());
  d_logits.At(0, target_class) = 1.0f;
  Tensor dx = model->Backward(d_logits);
  model->ZeroGrad();  // discard parameter grads from this probe
  return dx;
}

}  // namespace mlake::provenance
