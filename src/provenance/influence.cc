#include "provenance/influence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace mlake::provenance {

namespace {

/// Index of the final linear layer, or -1.
int FindHead(nn::Model* model) {
  int last = -1;
  for (size_t i = 0; i < model->num_layers(); ++i) {
    if (model->layer(i)->type() == "linear") last = static_cast<int>(i);
  }
  return last;
}

/// In-place Cholesky factorization A = L Lᵀ (lower triangle); returns
/// false if the matrix is not positive definite.
bool CholeskyFactor(std::vector<double>* a, size_t n) {
  std::vector<double>& m = *a;
  for (size_t j = 0; j < n; ++j) {
    double diag = m[j * n + j];
    for (size_t k = 0; k < j; ++k) diag -= m[j * n + k] * m[j * n + k];
    if (diag <= 0.0) return false;
    double l_jj = std::sqrt(diag);
    m[j * n + j] = l_jj;
    for (size_t i = j + 1; i < n; ++i) {
      double v = m[i * n + j];
      for (size_t k = 0; k < j; ++k) v -= m[i * n + k] * m[j * n + k];
      m[i * n + j] = v / l_jj;
    }
  }
  return true;
}

/// Solves L Lᵀ x = b given the Cholesky factor (lower triangle of `l`).
std::vector<double> CholeskySolve(const std::vector<double>& l, size_t n,
                                  const std::vector<double>& b) {
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) v -= l[i * n + k] * y[k];
    y[i] = v / l[i * n + i];
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double v = y[i];
    for (size_t k = i + 1; k < n; ++k) v -= l[k * n + i] * x[k];
    x[i] = v / l[i * n + i];
  }
  return x;
}

/// Per-example head gradient of CE loss, flattened [(C)(H+1)] with the
/// bias folded in as feature H.
void HeadGradient(const Tensor& probs_row, int64_t label,
                  const Tensor& hidden_row, std::vector<double>* grad) {
  int64_t classes = probs_row.NumElements();
  int64_t h_dim = hidden_row.NumElements();
  grad->assign(static_cast<size_t>(classes * (h_dim + 1)), 0.0);
  for (int64_t c = 0; c < classes; ++c) {
    double err = probs_row.At(c) - (c == label ? 1.0 : 0.0);
    double* row = grad->data() + c * (h_dim + 1);
    for (int64_t j = 0; j < h_dim; ++j) {
      row[j] = err * hidden_row.At(j);
    }
    row[h_dim] = err;  // bias
  }
}

}  // namespace

Result<InfluenceReport> ComputeInfluence(nn::Model* model,
                                         const nn::Dataset& train,
                                         const Tensor& test_x,
                                         int64_t test_label,
                                         const InfluenceConfig& config) {
  if (train.size() == 0) {
    return Status::InvalidArgument("ComputeInfluence: empty training set");
  }
  if (test_x.rank() != 2 || test_x.dim(0) != 1) {
    return Status::InvalidArgument("ComputeInfluence: test_x must be [1, d]");
  }
  int head_idx = FindHead(model);
  if (head_idx < 0) {
    return Status::FailedPrecondition("ComputeInfluence: no linear head");
  }
  auto head_layer = static_cast<nn::Linear*>(
      model->layer(static_cast<size_t>(head_idx)));
  int64_t h_dim = head_layer->in_dim();
  int64_t classes = head_layer->out_dim();
  if (test_label < 0 || test_label >= classes) {
    return Status::InvalidArgument("ComputeInfluence: bad test label");
  }
  size_t dim = static_cast<size_t>(classes * (h_dim + 1));

  Tensor hidden = model->ForwardUpTo(train.x, static_cast<size_t>(head_idx));
  Tensor logits = model->Forward(train.x, /*training=*/false);
  Tensor probs = RowSoftmax(logits);

  // Empirical-risk Hessian: mean over examples of
  //   (diag(p) - p pᵀ) ⊗ ĥ ĥᵀ, plus damping.
  std::vector<double> hess(dim * dim, 0.0);
  int64_t n = static_cast<int64_t>(train.size());
  std::vector<double> h_hat(static_cast<size_t>(h_dim + 1));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < h_dim; ++j) {
      h_hat[static_cast<size_t>(j)] = hidden.At(i, j);
    }
    h_hat[static_cast<size_t>(h_dim)] = 1.0;
    for (int64_t c = 0; c < classes; ++c) {
      double pc = probs.At(i, c);
      for (int64_t c2 = c; c2 < classes; ++c2) {
        double coeff = (c == c2) ? pc * (1.0 - pc)
                                 : -pc * static_cast<double>(probs.At(i, c2));
        if (coeff == 0.0) continue;
        for (int64_t j = 0; j <= h_dim; ++j) {
          double hj = h_hat[static_cast<size_t>(j)];
          if (hj == 0.0) continue;
          size_t row = static_cast<size_t>(c * (h_dim + 1) + j);
          double coeff_hj = coeff * hj;
          for (int64_t j2 = 0; j2 <= h_dim; ++j2) {
            size_t col = static_cast<size_t>(c2 * (h_dim + 1) + j2);
            double v = coeff_hj * h_hat[static_cast<size_t>(j2)];
            hess[row * dim + col] += v;
            if (c != c2) hess[col * dim + row] += v;
          }
        }
      }
    }
  }
  double inv_n = 1.0 / static_cast<double>(n);
  for (double& v : hess) v *= inv_n;
  // Symmetrize the same-class blocks (upper was filled, mirror down).
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = r + 1; c < dim; ++c) {
      double v = 0.5 * (hess[r * dim + c] + hess[c * dim + r]);
      hess[r * dim + c] = v;
      hess[c * dim + r] = v;
    }
  }
  for (size_t d = 0; d < dim; ++d) hess[d * dim + d] += config.damping;

  if (!CholeskyFactor(&hess, dim)) {
    return Status::Internal(
        "ComputeInfluence: Hessian not PD (increase damping)");
  }

  // Test gradient and H⁻¹ g_test.
  Tensor test_hidden =
      model->ForwardUpTo(test_x, static_cast<size_t>(head_idx));
  Tensor test_logits = model->Forward(test_x, /*training=*/false);
  Tensor test_probs = RowSoftmax(test_logits);
  std::vector<double> g_test;
  HeadGradient(test_probs.Row(0), test_label, test_hidden.Row(0), &g_test);
  std::vector<double> h_inv_g = CholeskySolve(hess, dim, g_test);

  InfluenceReport report;
  report.scores.resize(train.size());
  std::vector<double> g_train;
  for (int64_t i = 0; i < n; ++i) {
    HeadGradient(probs.Row(i), train.labels[static_cast<size_t>(i)],
                 hidden.Row(i), &g_train);
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += g_train[d] * h_inv_g[d];
    // I = -g_testᵀ H⁻¹ g_train ... scaled by 1/n to match the LOO delta
    // convention (up-weighting one point by 1/n).
    report.scores[static_cast<size_t>(i)] = dot * inv_n;
  }
  report.ranking.resize(train.size());
  std::iota(report.ranking.begin(), report.ranking.end(), 0);
  std::sort(report.ranking.begin(), report.ranking.end(),
            [&](size_t a, size_t b) {
              return report.scores[a] > report.scores[b];
            });
  return report;
}

Result<nn::TrainReport> TrainHeadOnly(nn::Model* model,
                                      const nn::Dataset& data,
                                      const nn::TrainConfig& config) {
  int head_idx = FindHead(model);
  if (head_idx < 0) {
    return Status::FailedPrecondition("TrainHeadOnly: no linear head");
  }
  nn::Layer* head = model->layer(static_cast<size_t>(head_idx));
  std::vector<nn::Param*> head_params = head->Params();
  std::vector<nn::Param*> all = model->Params();
  std::vector<bool> saved_frozen;
  saved_frozen.reserve(all.size());
  for (nn::Param* p : all) {
    saved_frozen.push_back(p->frozen);
    bool is_head = std::find(head_params.begin(), head_params.end(), p) !=
                   head_params.end();
    p->frozen = !is_head;
  }
  auto result = nn::Train(model, data, config);
  for (size_t i = 0; i < all.size(); ++i) all[i]->frozen = saved_frozen[i];
  return result;
}

Result<std::vector<double>> LeaveOneOutDeltas(
    nn::Model* model, const nn::Dataset& train, const Tensor& test_x,
    int64_t test_label, const nn::TrainConfig& retrain_config) {
  if (train.size() == 0) {
    return Status::InvalidArgument("LeaveOneOutDeltas: empty training set");
  }
  auto test_loss = [&](nn::Model* m) {
    Tensor logits = m->Forward(test_x, /*training=*/false);
    return nn::PerExampleNll(logits, {test_label})[0];
  };

  // Baseline: head retrained on the full set from the current weights.
  std::unique_ptr<nn::Model> base = model->Clone();
  MLAKE_RETURN_NOT_OK(
      TrainHeadOnly(base.get(), train, retrain_config).status());
  double base_loss = test_loss(base.get());

  std::vector<double> deltas(train.size());
  for (size_t i = 0; i < train.size(); ++i) {
    std::unique_ptr<nn::Model> loo = model->Clone();
    nn::Dataset without = train.Without(i);
    MLAKE_RETURN_NOT_OK(
        TrainHeadOnly(loo.get(), without, retrain_config).status());
    deltas[i] = test_loss(loo.get()) - base_loss;
  }
  return deltas;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  MLAKE_CHECK(a.size() == b.size() && !a.empty()) << "Pearson sizes";
  double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

namespace {
std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(v.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    double avg_rank = 0.5 * static_cast<double>(i + j);
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

double TopKOverlap(const std::vector<double>& a, const std::vector<double>& b,
                   size_t k) {
  MLAKE_CHECK(a.size() == b.size()) << "TopKOverlap sizes";
  k = std::min(k, a.size());
  if (k == 0) return 1.0;
  auto top_indices = [k](const std::vector<double>& v) {
    std::vector<size_t> order(v.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(k),
                      order.end(),
                      [&](size_t x, size_t y) { return v[x] > v[y]; });
    order.resize(k);
    std::sort(order.begin(), order.end());
    return order;
  };
  std::vector<size_t> ta = top_indices(a);
  std::vector<size_t> tb = top_indices(b);
  std::vector<size_t> common;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace mlake::provenance
