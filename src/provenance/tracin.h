#ifndef MLAKE_PROVENANCE_TRACIN_H_
#define MLAKE_PROVENANCE_TRACIN_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "nn/dataset.h"
#include "nn/model.h"

namespace mlake::provenance {

/// TracIn-style training-data attribution: the influence of a training
/// point is approximated by the sum over saved checkpoints of the dot
/// product of its loss gradient with the test point's loss gradient,
/// scaled by the learning rate (Pruthi et al.; cited in the paper's
/// attribution discussion [52, 70, 153] family of estimators).
///
/// Gradients are taken w.r.t. the classifier head only, matching the
/// influence-function regime so the two estimators are comparable.
struct TracInConfig {
  float lr = 1e-2f;  // learning-rate weight per checkpoint
};

/// `checkpoints` are model snapshots saved during training (e.g. one
/// clone per epoch). Returns one score per training row; positive =
/// helpful for the test example.
Result<std::vector<double>> ComputeTracIn(
    const std::vector<nn::Model*>& checkpoints, const nn::Dataset& train,
    const Tensor& test_x, int64_t test_label,
    const TracInConfig& config = {});

/// Extrinsic attribution (sensitivity analysis, paper §3): gradient of
/// the target-class logit w.r.t. the input — "which aspects of the
/// inputs are most important in the model's prediction". Returns a
/// [1, input_dim] saliency tensor.
Result<Tensor> InputSensitivity(nn::Model* model, const Tensor& x,
                                int64_t target_class);

}  // namespace mlake::provenance

#endif  // MLAKE_PROVENANCE_TRACIN_H_
