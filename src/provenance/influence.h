#ifndef MLAKE_PROVENANCE_INFLUENCE_H_
#define MLAKE_PROVENANCE_INFLUENCE_H_

#include <vector>

#include "common/result.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace mlake::provenance {

/// Training-data attribution via influence functions (Koh & Liang [70]),
/// computed exactly on the classifier head.
///
/// The lake treats the body of the network as a fixed feature extractor
/// φ(x) (the standard "influence on the top layer" regime): the head is
/// multinomial logistic regression over h = φ(x), whose loss Hessian is
/// available in closed form, so
///   I(z_train, z_test) = -∇L(z_test)ᵀ H⁻¹ ∇L(z_train)
/// is computed with one damped Cholesky solve per test point. A positive
/// score means the training point is *helpful* (removing it would raise
/// the test loss).
struct InfluenceConfig {
  /// Tikhonov damping added to the Hessian diagonal.
  double damping = 1e-3;
};

/// Influence scores of every training point on one test example.
struct InfluenceReport {
  /// One score per training row (same order as `train`).
  std::vector<double> scores;
  /// Indices of training rows sorted by descending helpfulness.
  std::vector<size_t> ranking;
};

Result<InfluenceReport> ComputeInfluence(nn::Model* model,
                                         const nn::Dataset& train,
                                         const Tensor& test_x,
                                         int64_t test_label,
                                         const InfluenceConfig& config = {});

/// Trains only the final linear layer (all other params frozen); used to
/// fit the head on features and by the leave-one-out ground truth.
Result<nn::TrainReport> TrainHeadOnly(nn::Model* model,
                                      const nn::Dataset& data,
                                      const nn::TrainConfig& config);

/// Leave-one-out ground truth: for each training row i, retrains the
/// head from the current weights without row i and records the change in
/// test loss (loss_without_i - loss_full). Positive delta = the point
/// was helpful. O(n * retrain) — only feasible for benchmark-scale n,
/// which is exactly its role: validating the influence estimates.
Result<std::vector<double>> LeaveOneOutDeltas(
    nn::Model* model, const nn::Dataset& train, const Tensor& test_x,
    int64_t test_label, const nn::TrainConfig& retrain_config);

/// Pearson correlation of two equal-length score vectors.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// |top-k(a) ∩ top-k(b)| / k for descending-score rankings.
double TopKOverlap(const std::vector<double>& a, const std::vector<double>& b,
                   size_t k);

}  // namespace mlake::provenance

#endif  // MLAKE_PROVENANCE_INFLUENCE_H_
