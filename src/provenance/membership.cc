#include "provenance/membership.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"

namespace mlake::provenance {

double ComputeAuc(const std::vector<double>& positive_scores,
                  const std::vector<double>& negative_scores) {
  if (positive_scores.empty() || negative_scores.empty()) return 0.5;
  // Mann-Whitney U statistic.
  double wins = 0.0;
  for (double p : positive_scores) {
    for (double n : negative_scores) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(negative_scores.size()));
}

Result<MembershipReport> LossMembershipAttack(nn::Model* model,
                                              const nn::Dataset& members,
                                              const nn::Dataset& nonmembers) {
  if (members.size() == 0 || nonmembers.size() == 0) {
    return Status::InvalidArgument("LossMembershipAttack: empty inputs");
  }
  Tensor member_logits = model->Forward(members.x, /*training=*/false);
  Tensor nonmember_logits = model->Forward(nonmembers.x, /*training=*/false);
  std::vector<double> member_nll =
      nn::PerExampleNll(member_logits, members.labels);
  std::vector<double> nonmember_nll =
      nn::PerExampleNll(nonmember_logits, nonmembers.labels);

  // Attack score = -loss (members expected to have lower loss).
  std::vector<double> pos(member_nll.size()), neg(nonmember_nll.size());
  for (size_t i = 0; i < member_nll.size(); ++i) pos[i] = -member_nll[i];
  for (size_t i = 0; i < nonmember_nll.size(); ++i) {
    neg[i] = -nonmember_nll[i];
  }

  MembershipReport report;
  report.auc = ComputeAuc(pos, neg);
  report.member_loss =
      std::accumulate(member_nll.begin(), member_nll.end(), 0.0) /
      static_cast<double>(member_nll.size());
  report.nonmember_loss =
      std::accumulate(nonmember_nll.begin(), nonmember_nll.end(), 0.0) /
      static_cast<double>(nonmember_nll.size());

  // Best single-threshold *balanced* accuracy: sweep every candidate
  // threshold, scoring (TPR + TNR) / 2 so class skew cannot inflate it.
  std::vector<std::pair<double, int>> all;  // (score, is_member)
  all.reserve(pos.size() + neg.size());
  for (double s : pos) all.emplace_back(s, 1);
  for (double s : neg) all.emplace_back(s, 0);
  std::sort(all.begin(), all.end());
  // Predicting "member" for score > threshold; walk thresholds between
  // sorted points.
  size_t members_above = pos.size();
  size_t nonmembers_above = neg.size();
  double best = 0.5;  // degenerate thresholds score exactly 0.5
  for (const auto& [score, is_member] : all) {
    if (is_member == 1) {
      --members_above;
    } else {
      --nonmembers_above;
    }
    double tpr = static_cast<double>(members_above) /
                 static_cast<double>(pos.size());
    double tnr = static_cast<double>(neg.size() - nonmembers_above) /
                 static_cast<double>(neg.size());
    best = std::max(best, 0.5 * (tpr + tnr));
  }
  report.best_accuracy = best;
  return report;
}

}  // namespace mlake::provenance
