#ifndef MLAKE_PROVENANCE_MEMBERSHIP_H_
#define MLAKE_PROVENANCE_MEMBERSHIP_H_

#include <vector>

#include "common/result.h"
#include "nn/dataset.h"
#include "nn/model.h"

namespace mlake::provenance {

/// Result of a loss-threshold membership inference attack (Shokri et
/// al. [135]; Shi et al. [134]): the attacker scores each example by
/// -loss and predicts "member" for low-loss examples.
struct MembershipReport {
  /// AUC of the -loss score separating members from non-members.
  /// 0.5 = no leakage; 1.0 = perfect membership disclosure.
  double auc = 0.0;
  /// Balanced attack accuracy (mean of member and non-member recall) at
  /// the best single threshold; 0.5 = chance regardless of class skew.
  double best_accuracy = 0.0;
  /// Mean loss on members / non-members (the generalization gap that
  /// powers the attack).
  double member_loss = 0.0;
  double nonmember_loss = 0.0;
};

/// Runs the attack: `members` were in the model's training set,
/// `nonmembers` were not (same distribution).
Result<MembershipReport> LossMembershipAttack(nn::Model* model,
                                              const nn::Dataset& members,
                                              const nn::Dataset& nonmembers);

/// Area under the ROC curve for scores where positives should score
/// higher; ties count half (Mann-Whitney U).
double ComputeAuc(const std::vector<double>& positive_scores,
                  const std::vector<double>& negative_scores);

}  // namespace mlake::provenance

#endif  // MLAKE_PROVENANCE_MEMBERSHIP_H_
