#ifndef MLAKE_PROVENANCE_WATERMARK_H_
#define MLAKE_PROVENANCE_WATERMARK_H_

#include <string>

#include "common/result.h"
#include "nn/model.h"

namespace mlake::provenance {

/// White-box weight watermarking (paper §6 "Data and Model Citation":
/// "One proposed solution to identify generated output is the use of
/// watermarks [69]"). A keyed pseudo-random subset of linear-weight
/// coordinates is nudged by +/- strength with a keyed sign pattern;
/// detection computes the z-score of the signed sum at those
/// coordinates. Without the key the perturbation is statistically
/// invisible; with it, detection is a one-sided z-test.
struct WatermarkConfig {
  /// How many weight coordinates carry the mark.
  size_t num_positions = 512;
  /// Additive perturbation per coordinate as a fraction of the model's
  /// global weight stddev. The detection z-score scales as
  /// relative_strength * sqrt(num_positions), so the defaults give
  /// z ~ 7-8 on a clean mark while each touched weight moves by only a
  /// third of a typical weight.
  float relative_strength = 0.35f;
  /// Detection threshold on the z-score. 4.0 ≈ 3e-5 false-positive rate.
  double z_threshold = 4.0;
};

struct WatermarkDetection {
  /// z-score of sum(sign_i * w_i) against the null (no watermark).
  double z_score = 0.0;
  bool detected = false;
  /// Estimated embedded strength (mean signed residual).
  double strength_estimate = 0.0;
};

/// Embeds the watermark keyed by `key` into the model's linear weights.
/// Fails if the model has fewer weight coordinates than num_positions.
Status EmbedWatermark(nn::Model* model, const std::string& key,
                      const WatermarkConfig& config = {});

/// Tests for the watermark keyed by `key`.
Result<WatermarkDetection> DetectWatermark(nn::Model* model,
                                           const std::string& key,
                                           const WatermarkConfig& config = {});

}  // namespace mlake::provenance

#endif  // MLAKE_PROVENANCE_WATERMARK_H_
