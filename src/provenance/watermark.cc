#include "provenance/watermark.h"

#include <cmath>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "nn/layers.h"

namespace mlake::provenance {

namespace {

/// Collects pointers to every linear *weight* coordinate in the model
/// (biases excluded: they are few and often exactly zero).
std::vector<float*> WeightCoordinates(nn::Model* model) {
  std::vector<float*> out;
  for (size_t i = 0; i < model->num_layers(); ++i) {
    if (model->layer(i)->type() != "linear") continue;
    auto* lin = static_cast<nn::Linear*>(model->layer(i));
    for (float& v : lin->weight().value.storage()) out.push_back(&v);
  }
  return out;
}

/// The keyed mark: distinct coordinate indices plus a +/-1 sign each.
struct Mark {
  std::vector<size_t> positions;
  std::vector<float> signs;
};

Mark DeriveMark(const std::string& key, size_t total, size_t k) {
  Rng rng(Fnv1a64(key) ^ 0x3A7E12B4C9D0FFEEULL);
  Mark mark;
  mark.positions = rng.SampleWithoutReplacement(total, k);
  mark.signs.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    mark.signs.push_back(rng.Bernoulli(0.5) ? 1.0f : -1.0f);
  }
  return mark;
}

}  // namespace

Status EmbedWatermark(nn::Model* model, const std::string& key,
                      const WatermarkConfig& config) {
  if (key.empty()) return Status::InvalidArgument("watermark key is empty");
  if (config.num_positions == 0 || config.relative_strength <= 0.0f) {
    return Status::InvalidArgument("watermark config invalid");
  }
  std::vector<float*> coords = WeightCoordinates(model);
  if (coords.size() < config.num_positions) {
    return Status::FailedPrecondition(
        "model has fewer weight coordinates than watermark positions");
  }
  // Strength is calibrated to the model's own weight scale.
  double mean = 0.0;
  for (float* w : coords) mean += *w;
  mean /= static_cast<double>(coords.size());
  double variance = 0.0;
  for (float* w : coords) {
    double d = *w - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(coords.size());
  float strength = config.relative_strength *
                   static_cast<float>(std::sqrt(variance) + 1e-12);
  Mark mark = DeriveMark(key, coords.size(), config.num_positions);
  for (size_t i = 0; i < mark.positions.size(); ++i) {
    *coords[mark.positions[i]] += strength * mark.signs[i];
  }
  return Status::OK();
}

Result<WatermarkDetection> DetectWatermark(nn::Model* model,
                                           const std::string& key,
                                           const WatermarkConfig& config) {
  if (key.empty()) return Status::InvalidArgument("watermark key is empty");
  std::vector<float*> coords = WeightCoordinates(model);
  if (coords.size() < config.num_positions) {
    return Status::FailedPrecondition(
        "model has fewer weight coordinates than watermark positions");
  }
  Mark mark = DeriveMark(key, coords.size(), config.num_positions);

  // Null hypothesis: weights at the keyed positions are draws from the
  // model's overall weight distribution with zero signed mean. Estimate
  // the coordinate variance from all weights.
  double global_mean = 0.0;
  for (float* w : coords) global_mean += *w;
  global_mean /= static_cast<double>(coords.size());
  double variance = 0.0;
  for (float* w : coords) {
    double d = *w - global_mean;
    variance += d * d;
  }
  variance /= static_cast<double>(coords.size());
  double stddev = std::sqrt(variance) + 1e-12;

  double signed_sum = 0.0;
  for (size_t i = 0; i < mark.positions.size(); ++i) {
    signed_sum += mark.signs[i] * (*coords[mark.positions[i]] - global_mean);
  }
  double k = static_cast<double>(mark.positions.size());
  WatermarkDetection detection;
  detection.z_score = signed_sum / (stddev * std::sqrt(k));
  detection.strength_estimate = signed_sum / k;
  detection.detected = detection.z_score >= config.z_threshold;
  return detection;
}

}  // namespace mlake::provenance
