#ifndef MLAKE_INDEX_VECTOR_INDEX_H_
#define MLAKE_INDEX_VECTOR_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mlake::index {

/// Distance metric for dense-vector search.
enum class Metric {
  kL2,      // squared euclidean
  kCosine,  // 1 - cosine similarity
};

/// A search hit: external id plus distance (smaller = closer).
struct Neighbor {
  int64_t id = 0;
  float distance = 0.0f;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.id < b.id);
  }
};

/// Common interface of the exact and approximate indices so experiments
/// can swap them.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds a vector under an external id (ids must be unique).
  virtual Status Add(int64_t id, const std::vector<float>& vec) = 0;

  /// k nearest neighbors of `query` (ascending distance).
  virtual Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                               size_t k) const = 0;

  virtual size_t Size() const = 0;
  virtual int64_t dim() const = 0;
};

// Distance(Metric, ...) lives in index/metric.h (inline, backed by the
// kernels layer) so the two index implementations share one definition.

/// Recall@k of `approx` against ground-truth `exact` (fraction of exact
/// ids present in approx, both truncated to k).
double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx, size_t k);

}  // namespace mlake::index

#endif  // MLAKE_INDEX_VECTOR_INDEX_H_
