#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "common/kernels.h"
#include "common/string_util.h"
#include "index/metric.h"

namespace mlake::index {

namespace {

/// Min-heap by distance.
struct Closer {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first > b.first;
  }
};

/// Max-heap by distance.
struct Farther {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first < b.first;
  }
};

}  // namespace

HnswIndex::HnswIndex(int64_t dim, HnswConfig config)
    : dim_(dim),
      config_(config),
      rng_(config.seed),
      level_lambda_(1.0 / std::log(std::max(2, config.m))) {}

float HnswIndex::DistanceTo(const float* query, uint32_t node) const {
  const float* v = data_.data() + static_cast<int64_t>(node) * dim_;
  if (config_.metric == Metric::kCosine) {
    // Stored vectors (and the query, normalized at Search entry) are
    // unit-length, so cosine distance collapses to 1 - dot.
    return 1.0f - kernels::Dot(query, v, dim_);
  }
  return kernels::L2Sq(query, v, dim_);
}

void HnswIndex::DistanceToBatch(const float* query, const uint32_t* nodes,
                                size_t count, float* out) const {
  // Prefetch every candidate vector before touching the first one; the
  // adjacency list is a random walk through data_, so the loads are the
  // latency bottleneck, not the arithmetic.
  for (size_t i = 0; i < count; ++i) {
    const float* v = data_.data() + static_cast<int64_t>(nodes[i]) * dim_;
    __builtin_prefetch(v);
    __builtin_prefetch(v + 16);
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = DistanceTo(query, nodes[i]);
  }
}

void HnswIndex::NormalizeRow(float* row) const {
  float norm = std::sqrt(kernels::Dot(row, row, dim_));
  if (norm > 0.0f) kernels::ScaleInPlace(row, 1.0f / norm, dim_);
}

int HnswIndex::RandomLevel() {
  double u = rng_.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<int>(-std::log(u) * level_lambda_);
}

uint32_t HnswIndex::GreedyClosest(const float* query, uint32_t entry,
                                  int level) const {
  uint32_t current = entry;
  float best = DistanceTo(query, current);
  std::vector<float> dists;
  bool improved = true;
  while (improved) {
    improved = false;
    const std::vector<uint32_t>& neighbors =
        links_[current][static_cast<size_t>(level)];
    dists.resize(neighbors.size());
    DistanceToBatch(query, neighbors.data(), neighbors.size(), dists.data());
    for (size_t i = 0; i < neighbors.size(); ++i) {
      if (dists[i] < best) {
        best = dists[i];
        current = neighbors[i];
        improved = true;
      }
    }
  }
  return current;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(
    const float* query, uint32_t entry, int ef, int level,
    VisitedScratch* visited) const {
  visited->NextEpoch(external_ids_.size());

  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, Closer>
      frontier;
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, Farther>
      best;

  float d0 = DistanceTo(query, entry);
  frontier.emplace(d0, entry);
  best.emplace(d0, entry);
  visited->Visit(entry);

  // Scratch for the batched adjacency-list expansion, reused across
  // frontier pops (bounded by the layer's max degree).
  std::vector<uint32_t> fresh;
  std::vector<float> dists;

  while (!frontier.empty()) {
    auto [dist, node] = frontier.top();
    if (dist > best.top().first && best.size() >= static_cast<size_t>(ef)) {
      break;
    }
    frontier.pop();
    fresh.clear();
    for (uint32_t neighbor : links_[node][static_cast<size_t>(level)]) {
      if (visited->Visit(neighbor)) fresh.push_back(neighbor);
    }
    dists.resize(fresh.size());
    DistanceToBatch(query, fresh.data(), fresh.size(), dists.data());
    for (size_t i = 0; i < fresh.size(); ++i) {
      float d = dists[i];
      if (best.size() < static_cast<size_t>(ef) || d < best.top().first) {
        frontier.emplace(d, fresh[i]);
        best.emplace(d, fresh[i]);
        if (best.size() > static_cast<size_t>(ef)) best.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(Candidate{best.top().first, best.top().second});
    best.pop();
  }
  return out;
}

void HnswIndex::ShrinkNeighbors(uint32_t node, int level, int max_degree) {
  std::vector<uint32_t>& neighbors = links_[node][static_cast<size_t>(level)];
  if (neighbors.size() <= static_cast<size_t>(max_degree)) return;
  const float* base = data_.data() + static_cast<int64_t>(node) * dim_;
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(neighbors.size());
  for (uint32_t n : neighbors) {
    scored.emplace_back(DistanceTo(base, n), n);
  }
  std::partial_sort(scored.begin(), scored.begin() + max_degree,
                    scored.end());
  neighbors.clear();
  for (int i = 0; i < max_degree; ++i) neighbors.push_back(scored[i].second);
}

uint32_t HnswIndex::AppendNode(int64_t id, const std::vector<float>& vec) {
  uint32_t node = static_cast<uint32_t>(external_ids_.size());
  external_ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
  if (config_.metric == Metric::kCosine) {
    // Normalize-at-Add: unit-length storage turns every cosine distance
    // during construction and search into a bare dot product. A zero
    // vector stays zero (distance 1.0 to everything, as before).
    NormalizeRow(data_.data() + static_cast<int64_t>(node) * dim_);
  }
  int level = RandomLevel();
  levels_.push_back(level);
  links_.emplace_back(static_cast<size_t>(level) + 1);
  return node;
}

HnswIndex::PlannedLinks HnswIndex::FindCandidates(
    uint32_t node, VisitedScratch* visited) const {
  PlannedLinks plan;
  int level = levels_[node];
  plan.candidates.resize(static_cast<size_t>(level) + 1);
  const float* query = data_.data() + static_cast<int64_t>(node) * dim_;

  uint32_t current = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    current = GreedyClosest(query, current, l);
  }
  int top = std::min(level, max_level_);
  for (int l = top; l >= 0; --l) {
    std::vector<Candidate> candidates =
        SearchLayer(query, current, config_.ef_construction, l, visited);
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.node < b.node);
              });
    if (!candidates.empty()) current = candidates.front().node;
    plan.candidates[static_cast<size_t>(l)] = std::move(candidates);
  }
  return plan;
}

void HnswIndex::ApplyLinks(uint32_t node, const PlannedLinks& plan) {
  int level = levels_[node];
  int top = std::min(level, max_level_);
  for (int l = top; l >= 0; --l) {
    const std::vector<Candidate>& candidates =
        plan.candidates[static_cast<size_t>(l)];
    int max_degree = (l == 0) ? 2 * config_.m : config_.m;
    size_t take =
        std::min(candidates.size(), static_cast<size_t>(config_.m));
    for (size_t i = 0; i < take; ++i) {
      uint32_t neighbor = candidates[i].node;
      links_[node][static_cast<size_t>(l)].push_back(neighbor);
      links_[neighbor][static_cast<size_t>(l)].push_back(node);
      ShrinkNeighbors(neighbor, l, max_degree);
    }
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

Status HnswIndex::Add(int64_t id, const std::vector<float>& vec) {
  if (static_cast<int64_t>(vec.size()) != dim_) {
    return Status::InvalidArgument("HnswIndex: vector dim mismatch");
  }
  for (int64_t existing : external_ids_) {
    if (existing == id) {
      return Status::AlreadyExists(
          StrFormat("id %lld already indexed", static_cast<long long>(id)));
    }
  }

  uint32_t node = AppendNode(id, vec);
  if (node == 0) {
    max_level_ = levels_[0];
    entry_point_ = 0;
    return Status::OK();
  }
  VisitedScratch visited;
  ApplyLinks(node, FindCandidates(node, &visited));
  return Status::OK();
}

Status HnswIndex::Build(const std::vector<int64_t>& ids,
                        const std::vector<std::vector<float>>& vecs,
                        const ExecutionContext& exec) {
  if (ids.size() != vecs.size()) {
    return Status::InvalidArgument("HnswIndex::Build: ids/vecs size mismatch");
  }
  std::unordered_set<int64_t> seen(external_ids_.begin(),
                                   external_ids_.end());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (static_cast<int64_t>(vecs[i].size()) != dim_) {
      return Status::InvalidArgument("HnswIndex::Build: vector dim mismatch");
    }
    if (!seen.insert(ids[i]).second) {
      return Status::AlreadyExists(
          StrFormat("id %lld already indexed",
                    static_cast<long long>(ids[i])));
    }
  }

  // Append storage and draw levels up front, in input order — the same
  // rng consumption as sequential Adds.
  uint32_t first = static_cast<uint32_t>(external_ids_.size());
  for (size_t i = 0; i < ids.size(); ++i) AppendNode(ids[i], vecs[i]);
  uint32_t total = static_cast<uint32_t>(external_ids_.size());

  uint32_t next = first;
  if (next == 0 && next < total) {
    // Seed the graph: the first element has nothing to link against.
    max_level_ = levels_[0];
    entry_point_ = 0;
    ++next;
  }

  // Size-doubling waves: wave w inserts min(remaining, linked-so-far)
  // nodes (at least 1). Candidates are searched against the graph as
  // of the wave start, so the search phase is read-only and
  // embarrassingly parallel; links are then applied in index order.
  // The schedule depends only on node counts — not on `exec` — which
  // is what makes Build output thread-count-invariant.
  while (next < total) {
    uint32_t wave = std::max(1u, next);  // = nodes already linked
    wave = std::min(wave, total - next);
    std::vector<PlannedLinks> plans(wave);
    MLAKE_RETURN_NOT_OK(ParallelFor(exec, 0, wave, [&](size_t i) {
      VisitedScratch visited;
      plans[i] = FindCandidates(next + static_cast<uint32_t>(i), &visited);
    }));
    for (uint32_t i = 0; i < wave; ++i) {
      ApplyLinks(next + i, plans[i]);
    }
    next += wave;
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> HnswIndex::Search(
    const std::vector<float>& query, size_t k) const {
  if (static_cast<int64_t>(query.size()) != dim_) {
    return Status::InvalidArgument("HnswIndex: query dim mismatch");
  }
  std::vector<Neighbor> out;
  if (external_ids_.empty()) return out;

  const float* q = query.data();
  std::vector<float> normalized;
  if (config_.metric == Metric::kCosine) {
    // Stored vectors are unit-length (normalize-at-Add), so the query
    // must be too for 1 - dot to equal the cosine distance.
    normalized = query;
    NormalizeRow(normalized.data());
    q = normalized.data();
  }

  uint32_t current = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    current = GreedyClosest(q, current, l);
  }
  int ef = std::max(config_.ef_search, static_cast<int>(k));
  VisitedScratch visited;
  std::vector<Candidate> candidates = SearchLayer(q, current, ef, 0, &visited);
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.node < b.node);
            });
  size_t take = std::min(k, candidates.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(
        Neighbor{external_ids_[candidates[i].node], candidates[i].distance});
  }
  return out;
}

}  // namespace mlake::index
