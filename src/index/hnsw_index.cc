#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string_view>
#include <unordered_set>

#include "common/kernels.h"
#include "common/string_util.h"
#include "index/metric.h"

namespace mlake::index {

namespace {

/// Min-heap by distance.
struct Closer {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first > b.first;
  }
};

/// Max-heap by distance.
struct Farther {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first < b.first;
  }
};

/// Offset arrays in a snapshot must be non-decreasing and end exactly
/// at `limit` for the CSR accessors to be in-bounds by construction.
bool OffsetsWellFormed(const uint64_t* off, size_t count, uint64_t limit) {
  if (count == 0 || off[0] != 0 || off[count - 1] != limit) return false;
  for (size_t i = 1; i < count; ++i) {
    if (off[i] < off[i - 1]) return false;
  }
  return true;
}

}  // namespace

HnswIndex::HnswIndex(int64_t dim, HnswConfig config)
    : dim_(dim),
      config_(config),
      rng_(config.seed),
      level_lambda_(1.0 / std::log(std::max(2, config.m))) {}

void HnswIndex::SegRef::neighbors(uint32_t node, int level,
                                  const uint32_t** out, size_t* len) const {
  if (!base) {
    const std::vector<uint32_t>& list =
        idx->links_[node][static_cast<size_t>(level)];
    *out = list.data();
    *len = list.size();
    return;
  }
  if (level > idx->base_levels_[node]) {
    *out = nullptr;
    *len = 0;
    return;
  }
  uint64_t slot = idx->base_slot_off_[node] + static_cast<uint64_t>(level);
  uint64_t begin = idx->base_link_off_[slot];
  uint64_t end = idx->base_link_off_[slot + 1];
  *out = idx->base_links_ + begin;
  *len = static_cast<size_t>(end - begin);
}

float HnswIndex::DistanceTo(const SegRef& seg, const float* query,
                            uint32_t node) const {
  const float* v = seg.row(node);
  if (config_.metric == Metric::kCosine) {
    // Stored vectors (and the query, normalized at Search entry) are
    // unit-length, so cosine distance collapses to 1 - dot.
    return 1.0f - kernels::Dot(query, v, dim_);
  }
  return kernels::L2Sq(query, v, dim_);
}

void HnswIndex::DistanceToBatch(const SegRef& seg, const float* query,
                                const uint32_t* nodes, size_t count,
                                float* out) const {
  // Prefetch every candidate vector before touching the first one; the
  // adjacency list is a random walk through the vector rows, so the
  // loads are the latency bottleneck, not the arithmetic.
  for (size_t i = 0; i < count; ++i) {
    const float* v = seg.row(nodes[i]);
    __builtin_prefetch(v);
    __builtin_prefetch(v + 16);
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = DistanceTo(seg, query, nodes[i]);
  }
}

void HnswIndex::NormalizeRow(float* row) const {
  float norm = std::sqrt(kernels::Dot(row, row, dim_));
  if (norm > 0.0f) kernels::ScaleInPlace(row, 1.0f / norm, dim_);
}

int HnswIndex::RandomLevel() {
  double u = rng_.NextDouble();
  if (u < 1e-12) u = 1e-12;
  return static_cast<int>(-std::log(u) * level_lambda_);
}

uint32_t HnswIndex::GreedyClosest(const SegRef& seg, const float* query,
                                  uint32_t entry, int level) const {
  uint32_t current = entry;
  uint32_t n = static_cast<uint32_t>(seg.n());
  float best = DistanceTo(seg, query, current);
  std::vector<uint32_t> fresh;
  std::vector<float> dists;
  bool improved = true;
  while (improved) {
    improved = false;
    const uint32_t* neighbors = nullptr;
    size_t count = 0;
    seg.neighbors(current, level, &neighbors, &count);
    fresh.clear();
    for (size_t i = 0; i < count; ++i) {
      if (neighbors[i] < n) fresh.push_back(neighbors[i]);
    }
    dists.resize(fresh.size());
    DistanceToBatch(seg, query, fresh.data(), fresh.size(), dists.data());
    for (size_t i = 0; i < fresh.size(); ++i) {
      if (dists[i] < best) {
        best = dists[i];
        current = fresh[i];
        improved = true;
      }
    }
  }
  return current;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(
    const SegRef& seg, const float* query, uint32_t entry, int ef, int level,
    VisitedScratch* visited) const {
  uint32_t n = static_cast<uint32_t>(seg.n());
  visited->NextEpoch(n);

  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, Closer>
      frontier;
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, Farther>
      best;

  float d0 = DistanceTo(seg, query, entry);
  frontier.emplace(d0, entry);
  best.emplace(d0, entry);
  visited->Visit(entry);

  // Scratch for the batched adjacency-list expansion, reused across
  // frontier pops (bounded by the layer's max degree).
  std::vector<uint32_t> fresh;
  std::vector<float> dists;

  while (!frontier.empty()) {
    auto [dist, node] = frontier.top();
    if (dist > best.top().first && best.size() >= static_cast<size_t>(ef)) {
      break;
    }
    frontier.pop();
    fresh.clear();
    const uint32_t* neighbors = nullptr;
    size_t count = 0;
    seg.neighbors(node, level, &neighbors, &count);
    for (size_t i = 0; i < count; ++i) {
      uint32_t neighbor = neighbors[i];
      if (neighbor >= n) continue;  // corrupt link: skip, never UB
      if (visited->Visit(neighbor)) fresh.push_back(neighbor);
    }
    dists.resize(fresh.size());
    DistanceToBatch(seg, query, fresh.data(), fresh.size(), dists.data());
    for (size_t i = 0; i < fresh.size(); ++i) {
      float d = dists[i];
      if (best.size() < static_cast<size_t>(ef) || d < best.top().first) {
        frontier.emplace(d, fresh[i]);
        best.emplace(d, fresh[i]);
        if (best.size() > static_cast<size_t>(ef)) best.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(Candidate{best.top().first, best.top().second});
    best.pop();
  }
  return out;
}

void HnswIndex::ShrinkNeighbors(uint32_t node, int level, int max_degree) {
  std::vector<uint32_t>& neighbors = links_[node][static_cast<size_t>(level)];
  if (neighbors.size() <= static_cast<size_t>(max_degree)) return;
  SegRef seg{this, false};
  const float* base = seg.row(node);
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(neighbors.size());
  for (uint32_t n : neighbors) {
    scored.emplace_back(DistanceTo(seg, base, n), n);
  }
  std::partial_sort(scored.begin(), scored.begin() + max_degree,
                    scored.end());
  neighbors.clear();
  for (int i = 0; i < max_degree; ++i) neighbors.push_back(scored[i].second);
}

uint32_t HnswIndex::AppendNode(int64_t id, const std::vector<float>& vec) {
  uint32_t node = static_cast<uint32_t>(external_ids_.size());
  external_ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
  if (config_.metric == Metric::kCosine) {
    // Normalize-at-Add: unit-length storage turns every cosine distance
    // during construction and search into a bare dot product. A zero
    // vector stays zero (distance 1.0 to everything, as before).
    NormalizeRow(data_.data() + static_cast<int64_t>(node) * dim_);
  }
  int level = RandomLevel();
  levels_.push_back(level);
  links_.emplace_back(static_cast<size_t>(level) + 1);
  dead_.push_back(0);
  if (id_map_valid_) id_map_[id] = base_n_ + node;
  return node;
}

HnswIndex::PlannedLinks HnswIndex::FindCandidates(
    uint32_t node, VisitedScratch* visited) const {
  PlannedLinks plan;
  SegRef seg{this, false};
  int level = levels_[node];
  plan.candidates.resize(static_cast<size_t>(level) + 1);
  const float* query = seg.row(node);

  uint32_t current = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    current = GreedyClosest(seg, query, current, l);
  }
  int top = std::min(level, max_level_);
  for (int l = top; l >= 0; --l) {
    std::vector<Candidate> candidates =
        SearchLayer(seg, query, current, config_.ef_construction, l, visited);
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.node < b.node);
              });
    if (!candidates.empty()) current = candidates.front().node;
    plan.candidates[static_cast<size_t>(l)] = std::move(candidates);
  }
  return plan;
}

void HnswIndex::ApplyLinks(uint32_t node, const PlannedLinks& plan) {
  int level = levels_[node];
  int top = std::min(level, max_level_);
  for (int l = top; l >= 0; --l) {
    const std::vector<Candidate>& candidates =
        plan.candidates[static_cast<size_t>(l)];
    int max_degree = (l == 0) ? 2 * config_.m : config_.m;
    size_t take =
        std::min(candidates.size(), static_cast<size_t>(config_.m));
    for (size_t i = 0; i < take; ++i) {
      uint32_t neighbor = candidates[i].node;
      links_[node][static_cast<size_t>(l)].push_back(neighbor);
      links_[neighbor][static_cast<size_t>(l)].push_back(node);
      ShrinkNeighbors(neighbor, l, max_degree);
    }
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

void HnswIndex::EnsureIdMap() const {
  if (id_map_valid_) return;
  id_map_.clear();
  id_map_.reserve(base_n_ + external_ids_.size());
  for (size_t i = 0; i < base_n_; ++i) {
    id_map_[base_ids_[i]] = i;
  }
  // Delta entries override base ones: a re-added id resolves to its
  // live delta node, the tombstoned base copy stays shadowed.
  for (size_t j = 0; j < external_ids_.size(); ++j) {
    id_map_[external_ids_[j]] = base_n_ + j;
  }
  id_map_valid_ = true;
}

Status HnswIndex::Add(int64_t id, const std::vector<float>& vec) {
  if (static_cast<int64_t>(vec.size()) != dim_) {
    return Status::InvalidArgument("HnswIndex: vector dim mismatch");
  }
  EnsureIdMap();
  auto it = id_map_.find(id);
  if (it != id_map_.end()) {
    uint64_t h = it->second;
    bool live = h < base_n_
                    ? (base_dead_.empty() || !base_dead_[h])
                    : !dead_[h - base_n_];
    if (live) {
      return Status::AlreadyExists(
          StrFormat("id %lld already indexed", static_cast<long long>(id)));
    }
    // Tombstoned: re-add as a fresh delta node shadowing the old one.
  }

  uint32_t node = AppendNode(id, vec);
  if (node == 0) {
    max_level_ = levels_[0];
    entry_point_ = 0;
    return Status::OK();
  }
  VisitedScratch visited;
  ApplyLinks(node, FindCandidates(node, &visited));
  return Status::OK();
}

Status HnswIndex::Remove(int64_t id) {
  EnsureIdMap();
  auto it = id_map_.find(id);
  if (it == id_map_.end()) {
    return Status::NotFound(
        StrFormat("id %lld not indexed", static_cast<long long>(id)));
  }
  uint64_t h = it->second;
  if (h < base_n_) {
    if (base_dead_.empty()) base_dead_.assign(base_n_, 0);
    if (!base_dead_[h]) {
      base_dead_[h] = 1;
      ++base_dead_count_;
    }
  } else {
    size_t j = static_cast<size_t>(h - base_n_);
    if (!dead_[j]) {
      dead_[j] = 1;
      ++delta_dead_count_;
    }
  }
  return Status::OK();
}

Status HnswIndex::TruncateTail(size_t count) {
  if (count == 0) return Status::OK();
  if (count > external_ids_.size()) {
    return Status::InvalidArgument("HnswIndex: TruncateTail beyond delta");
  }
  size_t new_n = external_ids_.size() - count;
  // Handles shift semantics are subtle under shadowing, so rebuild the
  // map lazily instead of patching it.
  id_map_valid_ = false;
  id_map_.clear();
  for (size_t j = new_n; j < dead_.size(); ++j) {
    if (dead_[j]) --delta_dead_count_;
  }
  external_ids_.resize(new_n);
  levels_.resize(new_n);
  links_.resize(new_n);
  dead_.resize(new_n);
  data_.resize(new_n * static_cast<size_t>(dim_));
  uint32_t cutoff = static_cast<uint32_t>(new_n);
  for (auto& per_node : links_) {
    for (auto& level_links : per_node) {
      level_links.erase(std::remove_if(level_links.begin(), level_links.end(),
                                       [cutoff](uint32_t v) {
                                         return v >= cutoff;
                                       }),
                        level_links.end());
    }
  }
  // Recompute the delta entry point: the first surviving node at the
  // highest level, which is exactly what incremental insertion would
  // have left in place.
  max_level_ = -1;
  entry_point_ = 0;
  for (uint32_t i = 0; i < cutoff; ++i) {
    if (levels_[i] > max_level_) {
      max_level_ = levels_[i];
      entry_point_ = i;
    }
  }
  return Status::OK();
}

Status HnswIndex::Build(const std::vector<int64_t>& ids,
                        const std::vector<std::vector<float>>& vecs,
                        const ExecutionContext& exec) {
  if (ids.size() != vecs.size()) {
    return Status::InvalidArgument("HnswIndex::Build: ids/vecs size mismatch");
  }
  EnsureIdMap();
  std::unordered_set<int64_t> batch_seen;
  batch_seen.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (static_cast<int64_t>(vecs[i].size()) != dim_) {
      return Status::InvalidArgument("HnswIndex::Build: vector dim mismatch");
    }
    bool duplicate = !batch_seen.insert(ids[i]).second;
    if (!duplicate) {
      auto it = id_map_.find(ids[i]);
      if (it != id_map_.end()) {
        uint64_t h = it->second;
        duplicate = h < base_n_
                        ? (base_dead_.empty() || !base_dead_[h])
                        : !dead_[h - base_n_];
      }
    }
    if (duplicate) {
      return Status::AlreadyExists(
          StrFormat("id %lld already indexed",
                    static_cast<long long>(ids[i])));
    }
  }

  // Append storage and draw levels up front, in input order — the same
  // rng consumption as sequential Adds.
  uint32_t first = static_cast<uint32_t>(external_ids_.size());
  for (size_t i = 0; i < ids.size(); ++i) AppendNode(ids[i], vecs[i]);
  uint32_t total = static_cast<uint32_t>(external_ids_.size());

  uint32_t next = first;
  if (next == 0 && next < total) {
    // Seed the graph: the first element has nothing to link against.
    max_level_ = levels_[0];
    entry_point_ = 0;
    ++next;
  }

  // Size-doubling waves: wave w inserts min(remaining, linked-so-far)
  // nodes (at least 1). Candidates are searched against the graph as
  // of the wave start, so the search phase is read-only and
  // embarrassingly parallel; links are then applied in index order.
  // The schedule depends only on node counts — not on `exec` — which
  // is what makes Build output thread-count-invariant.
  while (next < total) {
    uint32_t wave = std::max(1u, next);  // = nodes already linked
    wave = std::min(wave, total - next);
    std::vector<PlannedLinks> plans(wave);
    MLAKE_RETURN_NOT_OK(ParallelFor(exec, 0, wave, [&](size_t i) {
      VisitedScratch visited;
      plans[i] = FindCandidates(next + static_cast<uint32_t>(i), &visited);
    }));
    for (uint32_t i = 0; i < wave; ++i) {
      ApplyLinks(next + i, plans[i]);
    }
    next += wave;
  }
  return Status::OK();
}

void HnswIndex::CollectFrom(const SegRef& seg, const float* query, size_t k,
                            VisitedScratch* visited,
                            std::vector<Neighbor>* out) const {
  size_t n = seg.n();
  size_t dead_count = seg.base ? base_dead_count_ : delta_dead_count_;
  if (n == 0 || dead_count >= n) return;

  uint32_t current = seg.entry();
  for (int l = seg.top_level(); l > 0; --l) {
    current = GreedyClosest(seg, query, current, l);
  }
  // Over-fetch by the tombstone count so k live hits survive the
  // filter below.
  size_t ef = std::max(static_cast<size_t>(std::max(config_.ef_search, 1)),
                       k) +
              dead_count;
  std::vector<Candidate> candidates =
      SearchLayer(seg, query, current, static_cast<int>(ef), 0, visited);
  const std::vector<uint8_t>& dead = seg.base ? base_dead_ : dead_;
  for (const Candidate& c : candidates) {
    if (!dead.empty() && dead[c.node]) continue;
    int64_t id = seg.base ? base_ids_[c.node]
                          : external_ids_[c.node];
    out->push_back(Neighbor{id, c.distance});
  }
}

void HnswIndex::CollectDense(const SegRef& seg, const float* queries,
                             size_t m,
                             std::vector<std::vector<Neighbor>>* outs) const {
  size_t n = seg.n();
  // Pack the segment's rows column-major once — a dim x n B operand
  // shared by every query in the batch.
  std::vector<float> packed(static_cast<size_t>(dim_) * n);
  for (uint32_t node = 0; node < n; ++node) {
    const float* row = seg.row(node);
    for (int64_t d = 0; d < dim_; ++d) {
      packed[static_cast<size_t>(d) * n + node] = row[d];
    }
  }
  std::vector<float> dots(m * n);
  kernels::Gemm(m, n, static_cast<size_t>(dim_), queries, packed.data(),
                dots.data());
  const std::vector<uint8_t>& dead = seg.base ? base_dead_ : dead_;
  for (size_t i = 0; i < m; ++i) {
    const float* dot_row = dots.data() + i * n;
    std::vector<Neighbor>& out = (*outs)[i];
    out.reserve(out.size() + n);
    for (uint32_t node = 0; node < n; ++node) {
      if (!dead.empty() && dead[node]) continue;
      int64_t id = seg.base ? base_ids_[node] : external_ids_[node];
      out.push_back(Neighbor{id, 1.0f - dot_row[node]});
    }
  }
}

Result<std::vector<Neighbor>> HnswIndex::Search(
    const std::vector<float>& query, size_t k) const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::vector<Neighbor>> batch,
                         SearchBatch({query}, k));
  return std::move(batch[0]);
}

Result<std::vector<std::vector<Neighbor>>> HnswIndex::SearchBatch(
    const std::vector<std::vector<float>>& queries, size_t k) const {
  for (const std::vector<float>& query : queries) {
    if (static_cast<int64_t>(query.size()) != dim_) {
      return Status::InvalidArgument("HnswIndex: query dim mismatch");
    }
  }
  std::vector<std::vector<Neighbor>> results(queries.size());
  if (queries.empty() || Size() == 0) return results;

  // Prepare every query once into one contiguous block (normalized
  // under cosine so 1 - dot is the cosine distance), then collapse
  // duplicates: identical prepared vectors share one probe.
  size_t m = queries.size();
  size_t row_bytes = sizeof(float) * static_cast<size_t>(dim_);
  std::vector<float> prepared(m * static_cast<size_t>(dim_));
  for (size_t i = 0; i < m; ++i) {
    float* row = prepared.data() + i * static_cast<size_t>(dim_);
    std::copy(queries[i].begin(), queries[i].end(), row);
    if (config_.metric == Metric::kCosine) NormalizeRow(row);
  }
  std::vector<uint32_t> slot_of(m);  // query index -> probe slot
  std::vector<uint32_t> first_of;    // probe slot -> first query index
  {
    std::unordered_map<std::string_view, uint32_t> seen;
    seen.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      std::string_view bytes(
          reinterpret_cast<const char*>(prepared.data() +
                                        i * static_cast<size_t>(dim_)),
          row_bytes);
      auto [it, inserted] =
          seen.emplace(bytes, static_cast<uint32_t>(first_of.size()));
      if (inserted) first_of.push_back(static_cast<uint32_t>(i));
      slot_of[i] = it->second;
    }
  }
  size_t u = first_of.size();
  std::vector<float> probes(u * static_cast<size_t>(dim_));
  for (size_t s = 0; s < u; ++s) {
    const float* src =
        prepared.data() + first_of[s] * static_cast<size_t>(dim_);
    std::copy(src, src + dim_, probes.data() + s * static_cast<size_t>(dim_));
  }

  // Segment-major probe: each segment is visited once for the whole
  // batch — the dense path amortizes its row packing across queries,
  // the beam path at least reuses the visited-set allocation.
  std::vector<std::vector<Neighbor>> merged(u);
  VisitedScratch visited;
  const bool segments[] = {true, false};
  for (bool is_base : segments) {
    SegRef seg{this, is_base};
    size_t n = seg.n();
    size_t dead_count = is_base ? base_dead_count_ : delta_dead_count_;
    if (n == 0 || dead_count >= n) continue;
    if (config_.metric == Metric::kCosine && n <= kDenseSegmentMax) {
      CollectDense(seg, probes.data(), u, &merged);
    } else {
      for (size_t s = 0; s < u; ++s) {
        CollectFrom(seg, probes.data() + s * static_cast<size_t>(dim_), k,
                    &visited, &merged[s]);
      }
    }
  }
  for (size_t s = 0; s < u; ++s) {
    std::sort(merged[s].begin(), merged[s].end());  // (distance, id)
    if (merged[s].size() > k) merged[s].resize(k);
  }
  for (size_t i = 0; i < m; ++i) results[i] = merged[slot_of[i]];
  return results;
}

Status HnswIndex::SaveSnapshot(Fs* fs, const std::string& path,
                               uint64_t generation) const {
  if (base_n_ > 0 && !external_ids_.empty()) {
    return Status::FailedPrecondition(
        "HnswIndex: cannot snapshot a two-segment index; compact first");
  }
  const bool from_base = base_n_ > 0;
  SegRef seg{this, from_base};
  size_t raw_n = seg.n();
  const std::vector<uint8_t>& seg_dead = from_base ? base_dead_ : dead_;

  // Gather live nodes in node order, renumbering via `remap` so the
  // written graph carries no tombstones.
  std::vector<uint32_t> remap(raw_n, UINT32_MAX);
  std::vector<int64_t> ids;
  std::vector<float> data;
  std::vector<int32_t> levels;
  for (uint32_t node = 0; node < raw_n; ++node) {
    if (!seg_dead.empty() && seg_dead[node]) continue;
    remap[node] = static_cast<uint32_t>(ids.size());
    ids.push_back(from_base ? base_ids_[node] : external_ids_[node]);
    const float* row = seg.row(node);
    data.insert(data.end(), row, row + dim_);
    levels.push_back(from_base ? base_levels_[node]
                               : static_cast<int32_t>(levels_[node]));
  }
  size_t n = ids.size();

  std::vector<uint64_t> slot_off(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    slot_off[i + 1] = slot_off[i] + static_cast<uint64_t>(levels[i]) + 1;
  }
  std::vector<uint64_t> link_off;
  link_off.reserve(slot_off[n] + 1);
  link_off.push_back(0);
  std::vector<uint32_t> flat;
  for (uint32_t node = 0; node < raw_n; ++node) {
    if (remap[node] == UINT32_MAX) continue;
    int level = from_base ? base_levels_[node] : levels_[node];
    for (int l = 0; l <= level; ++l) {
      const uint32_t* neighbors = nullptr;
      size_t count = 0;
      seg.neighbors(node, l, &neighbors, &count);
      for (size_t i = 0; i < count; ++i) {
        if (neighbors[i] < raw_n && remap[neighbors[i]] != UINT32_MAX) {
          flat.push_back(remap[neighbors[i]]);
        }
      }
      link_off.push_back(flat.size());
    }
  }

  // Entry point: first live node at the highest level — what
  // incremental insertion over the live set would have produced.
  int32_t max_level = -1;
  uint32_t entry = 0;
  for (size_t i = 0; i < n; ++i) {
    if (levels[i] > max_level) {
      max_level = levels[i];
      entry = static_cast<uint32_t>(i);
    }
  }

  std::vector<uint64_t> meta = {
      static_cast<uint64_t>(dim_),
      static_cast<uint64_t>(config_.metric),
      static_cast<uint64_t>(config_.m),
      static_cast<uint64_t>(n),
      static_cast<uint64_t>(entry),
      static_cast<uint64_t>(max_level + 1),
      slot_off[n],
      static_cast<uint64_t>(flat.size()),
  };
  SnapshotWriter writer(SnapshotKind::kHnsw, generation);
  writer.AddArray("meta", meta);
  writer.AddArray("ids", ids);
  writer.AddArray("data", data);
  writer.AddArray("levels", levels);
  writer.AddArray("slot_off", slot_off);
  writer.AddArray("link_off", link_off);
  writer.AddArray("links", flat);
  return writer.WriteTo(fs, path);
}

Status HnswIndex::LoadSnapshot(Fs* fs, const std::string& path) {
  if (base_n_ > 0 || !external_ids_.empty()) {
    return Status::FailedPrecondition(
        "HnswIndex: LoadSnapshot requires an empty index");
  }
  MLAKE_ASSIGN_OR_RETURN(
      SnapshotReader snap,
      SnapshotReader::Open(fs, path, SnapshotKind::kHnsw));
  MLAKE_ASSIGN_OR_RETURN(auto meta, snap.Array<uint64_t>("meta"));
  if (meta.second != 8) {
    return Status::Corruption("hnsw snapshot meta malformed: " + path);
  }
  const uint64_t* m = meta.first;
  if (m[0] != static_cast<uint64_t>(dim_) ||
      m[1] != static_cast<uint64_t>(config_.metric) ||
      m[2] != static_cast<uint64_t>(config_.m)) {
    return Status::FailedPrecondition(
        "hnsw snapshot config mismatch (dim/metric/M): " + path);
  }
  uint64_t n = m[3];
  uint64_t entry = m[4];
  uint64_t max_level_plus1 = m[5];
  uint64_t slots = m[6];
  uint64_t total_links = m[7];

  MLAKE_ASSIGN_OR_RETURN(auto ids, snap.Array<int64_t>("ids"));
  MLAKE_ASSIGN_OR_RETURN(auto data, snap.Array<float>("data"));
  MLAKE_ASSIGN_OR_RETURN(auto levels, snap.Array<int32_t>("levels"));
  MLAKE_ASSIGN_OR_RETURN(auto slot_off, snap.Array<uint64_t>("slot_off"));
  MLAKE_ASSIGN_OR_RETURN(auto link_off, snap.Array<uint64_t>("link_off"));
  MLAKE_ASSIGN_OR_RETURN(auto links, snap.Array<uint32_t>("links"));
  if (ids.second != n || data.second != n * static_cast<uint64_t>(dim_) ||
      levels.second != n || slot_off.second != n + 1 ||
      link_off.second != slots + 1 || links.second != total_links ||
      (n > 0 && (entry >= n || max_level_plus1 == 0))) {
    return Status::Corruption("hnsw snapshot sections malformed: " + path);
  }
  // Offset arrays are fully validated up front (O(n), touches only the
  // small offset sections); link targets are bounds-checked lazily at
  // search time so the big arrays stay untouched until queried.
  if (!OffsetsWellFormed(slot_off.first, n + 1, slots) ||
      !OffsetsWellFormed(link_off.first, slots + 1, total_links)) {
    return Status::Corruption("hnsw snapshot offsets malformed: " + path);
  }

  base_snap_ = std::move(snap);
  base_generation_ = base_snap_.generation();
  base_n_ = static_cast<size_t>(n);
  base_ids_ = ids.first;
  base_data_ = data.first;
  base_levels_ = levels.first;
  base_slot_off_ = slot_off.first;
  base_link_off_ = link_off.first;
  base_links_ = links.first;
  base_entry_ = static_cast<uint32_t>(entry);
  base_max_level_ = static_cast<int>(max_level_plus1) - 1;
  base_dead_.clear();
  base_dead_count_ = 0;
  id_map_valid_ = false;
  id_map_.clear();
  return Status::OK();
}

}  // namespace mlake::index
