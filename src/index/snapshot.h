#ifndef MLAKE_INDEX_SNAPSHOT_H_
#define MLAKE_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/fs.h"
#include "common/mmap_file.h"
#include "common/result.h"

namespace mlake::index {

/// Versioned on-disk container for index snapshots.
///
/// Layout (little-endian, all sections 8-byte aligned):
///
///   [ 0..8)   magic "MLSNAP01"
///   [ 8..12)  u32 format version (kFormatVersion)
///   [12..16)  u32 kind (which index wrote it — SnapshotKind)
///   [16..24)  u64 generation (the lake's compaction counter)
///   [24..32)  u64 total file size (truncation check)
///   [32..40)  u64 section count
///   [40..44)  u32 CRC-32 of the TOC block
///   [44..48)  u32 reserved (0)
///   then TOC: count * { char name[16]; u64 offset; u64 size; }
///   then payload sections, 8-byte aligned, zero padded between.
///
/// Load is mmap + header/TOC validation only — payload bytes are served
/// straight from the mapping and never copied or checksummed up front
/// (the mapping is page-cache backed; a snapshot is a pure cache of the
/// catalog, so a corrupt payload can at worst degrade search until the
/// next compaction, never lose data). When the Fs seam refuses mmap
/// (fault injection does), the reader falls back to a copying read into
/// an aligned owned buffer so injected faults stay observable.
enum class SnapshotKind : uint32_t {
  kHnsw = 1,
  kInverted = 2,
  kMinHashLsh = 3,
  kLakeIds = 4,
  /// Replication re-seed manifest (one "manifest" JSON section) shipped
  /// leader → replica for divergence repair; generation = the leader's
  /// log seq the seed was cut at.
  kReplicationSeed = 5,
};

inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Accumulates named byte sections and writes the container atomically.
class SnapshotWriter {
 public:
  SnapshotWriter(SnapshotKind kind, uint64_t generation)
      : kind_(kind), generation_(generation) {}

  /// Adds a section. Names are at most 15 bytes and must be unique;
  /// violations fail at WriteTo/Serialize time.
  void AddSection(std::string_view name, const void* data, size_t bytes);

  template <typename T>
  void AddArray(std::string_view name, const std::vector<T>& v) {
    AddSection(name, v.data(), v.size() * sizeof(T));
  }

  /// Serializes header + TOC + payload into one buffer.
  Result<std::string> Serialize() const;

  /// Serializes and writes via WriteFileAtomic (temp + fsync + rename).
  Status WriteTo(Fs* fs, const std::string& path) const;

 private:
  SnapshotKind kind_;
  uint64_t generation_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Validated view over a snapshot file. Movable; owns the mapping (or
/// the fallback buffer), so sections stay valid for its lifetime.
class SnapshotReader {
 public:
  /// Opens and validates `path`. Tries fs->Mmap first, falls back to
  /// ReadFile. Bad magic, version/kind mismatch, truncation, a TOC CRC
  /// mismatch or out-of-bounds section extents all yield a clean
  /// Corruption/InvalidArgument error — never UB.
  static Result<SnapshotReader> Open(Fs* fs, const std::string& path,
                                     SnapshotKind expected_kind);

  SnapshotReader() = default;
  SnapshotReader(SnapshotReader&&) = default;
  SnapshotReader& operator=(SnapshotReader&&) = default;

  uint64_t generation() const { return generation_; }
  /// True when the payload is served zero-copy from an mmap.
  bool mapped() const { return map_.valid(); }

  bool HasSection(std::string_view name) const;

  /// Raw bytes of a named section.
  Result<std::string_view> Section(std::string_view name) const;

  /// Typed array view of a section; the size must divide evenly.
  template <typename T>
  Result<std::pair<const T*, size_t>> Array(std::string_view name) const {
    MLAKE_ASSIGN_OR_RETURN(std::string_view bytes, Section(name));
    if (bytes.size() % sizeof(T) != 0) {
      return Status::Corruption("snapshot section '" + std::string(name) +
                                "' size not a multiple of element size");
    }
    return std::make_pair(reinterpret_cast<const T*>(bytes.data()),
                          bytes.size() / sizeof(T));
  }

 private:
  struct Entry {
    std::string name;
    uint64_t offset;
    uint64_t size;
  };

  Status Validate(SnapshotKind expected_kind, const std::string& path);

  MmapFile map_;
  // Fallback buffer (u64-aligned so typed section views are aligned).
  std::vector<uint64_t> owned_;
  std::string_view bytes_;
  uint64_t generation_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_SNAPSHOT_H_
