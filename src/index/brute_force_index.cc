#include "index/brute_force_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/kernels.h"
#include "common/string_util.h"
#include "index/metric.h"

namespace mlake::index {

double RecallAtK(const std::vector<Neighbor>& exact,
                 const std::vector<Neighbor>& approx, size_t k) {
  size_t limit = std::min(k, exact.size());
  if (limit == 0) return 1.0;
  std::unordered_set<int64_t> truth;
  for (size_t i = 0; i < limit; ++i) truth.insert(exact[i].id);
  size_t hit = 0;
  for (size_t i = 0; i < approx.size() && i < k; ++i) {
    if (truth.count(approx[i].id) > 0) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(limit);
}

Status BruteForceIndex::Add(int64_t id, const std::vector<float>& vec) {
  if (static_cast<int64_t>(vec.size()) != dim_) {
    return Status::InvalidArgument(
        StrFormat("BruteForceIndex: vector dim %zu != %lld", vec.size(),
                  static_cast<long long>(dim_)));
  }
  for (int64_t existing : ids_) {
    if (existing == id) {
      return Status::AlreadyExists(
          StrFormat("id %lld already indexed", static_cast<long long>(id)));
    }
  }
  ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
  // Row norm cached once here so cosine queries touch each row exactly
  // once (a dot product), instead of recomputing both norms per pair.
  norms_.push_back(std::sqrt(kernels::Dot(vec.data(), vec.data(), dim_)));
  return Status::OK();
}

Result<std::vector<Neighbor>> BruteForceIndex::Search(
    const std::vector<float>& query, size_t k) const {
  if (static_cast<int64_t>(query.size()) != dim_) {
    return Status::InvalidArgument("BruteForceIndex: query dim mismatch");
  }
  std::vector<Neighbor> all;
  all.reserve(ids_.size());
  const float* q = query.data();
  if (metric_ == Metric::kCosine) {
    float qnorm = std::sqrt(kernels::Dot(q, q, dim_));
    for (size_t i = 0; i < ids_.size(); ++i) {
      float denom = qnorm * norms_[i];
      float d = denom == 0.0f
                    ? 1.0f
                    : 1.0f - kernels::Dot(q,
                                          data_.data() +
                                              static_cast<int64_t>(i) * dim_,
                                          dim_) /
                                 denom;
      all.push_back(Neighbor{ids_[i], d});
    }
  } else {
    for (size_t i = 0; i < ids_.size(); ++i) {
      float d = Distance(metric_, q,
                         data_.data() + static_cast<int64_t>(i) * dim_, dim_);
      all.push_back(Neighbor{ids_[i], d});
    }
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end());
  all.resize(take);
  return all;
}

}  // namespace mlake::index
