#ifndef MLAKE_INDEX_BRUTE_FORCE_INDEX_H_
#define MLAKE_INDEX_BRUTE_FORCE_INDEX_H_

#include <vector>

#include "index/vector_index.h"

namespace mlake::index {

/// Exact linear-scan nearest-neighbor index — the correctness baseline
/// for HNSW and the default for small lakes where O(n) per query is
/// fine.
class BruteForceIndex : public VectorIndex {
 public:
  BruteForceIndex(int64_t dim, Metric metric) : dim_(dim), metric_(metric) {}

  Status Add(int64_t id, const std::vector<float>& vec) override;
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       size_t k) const override;
  size_t Size() const override { return ids_.size(); }
  int64_t dim() const override { return dim_; }

 private:
  int64_t dim_;
  Metric metric_;
  std::vector<int64_t> ids_;
  std::vector<float> data_;   // flattened row-major
  std::vector<float> norms_;  // per-row L2 norm, cached at Add (cosine)
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_BRUTE_FORCE_INDEX_H_
