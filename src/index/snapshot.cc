#include "index/snapshot.h"

#include <cstring>

#include "common/hash.h"

namespace mlake::index {

namespace {

constexpr char kMagic[8] = {'M', 'L', 'S', 'N', 'A', 'P', '0', '1'};
constexpr size_t kHeaderBytes = 48;
constexpr size_t kNameBytes = 16;
constexpr size_t kTocEntryBytes = kNameBytes + 8 + 8;

size_t AlignUp8(size_t n) { return (n + 7) & ~size_t{7}; }

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void SnapshotWriter::AddSection(std::string_view name, const void* data,
                                size_t bytes) {
  sections_.emplace_back(
      std::string(name),
      std::string(static_cast<const char*>(data), bytes));
}

Result<std::string> SnapshotWriter::Serialize() const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].first.empty() ||
        sections_[i].first.size() >= kNameBytes) {
      return Status::InvalidArgument("snapshot section name length");
    }
    for (size_t j = i + 1; j < sections_.size(); ++j) {
      if (sections_[i].first == sections_[j].first) {
        return Status::InvalidArgument("duplicate snapshot section: " +
                                       sections_[i].first);
      }
    }
  }

  size_t toc_bytes = sections_.size() * kTocEntryBytes;
  size_t payload_start = AlignUp8(kHeaderBytes + toc_bytes);

  // Lay out sections first so the TOC can record final offsets.
  std::string toc;
  toc.reserve(toc_bytes);
  size_t cursor = payload_start;
  for (const auto& [name, data] : sections_) {
    char name_buf[kNameBytes] = {0};
    std::memcpy(name_buf, name.data(), name.size());
    toc.append(name_buf, kNameBytes);
    PutU64(&toc, cursor);
    PutU64(&toc, data.size());
    cursor = AlignUp8(cursor + data.size());
  }
  uint64_t total = cursor;

  std::string out;
  out.reserve(total);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kSnapshotFormatVersion);
  PutU32(&out, static_cast<uint32_t>(kind_));
  PutU64(&out, generation_);
  PutU64(&out, total);
  PutU64(&out, sections_.size());
  PutU32(&out, Crc32(toc));
  PutU32(&out, 0);  // reserved
  out.append(toc);
  out.resize(payload_start, '\0');
  for (const auto& [name, data] : sections_) {
    out.append(data);
    out.resize(AlignUp8(out.size()), '\0');
  }
  if (out.size() != total) {
    return Status::Internal("snapshot serialize size mismatch");
  }
  return out;
}

Status SnapshotWriter::WriteTo(Fs* fs, const std::string& path) const {
  MLAKE_ASSIGN_OR_RETURN(std::string bytes, Serialize());
  return WriteFileAtomic(fs, path, bytes);
}

Status SnapshotReader::Validate(SnapshotKind expected_kind,
                                const std::string& path) {
  const char* p = bytes_.data();
  if (bytes_.size() < kHeaderBytes) {
    return Status::Corruption("snapshot too small: " + path);
  }
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot bad magic: " + path);
  }
  uint32_t version = GetU32(p + 8);
  if (version != kSnapshotFormatVersion) {
    return Status::Corruption("snapshot unsupported version " +
                              std::to_string(version) + ": " + path);
  }
  uint32_t kind = GetU32(p + 12);
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::Corruption("snapshot kind mismatch: " + path);
  }
  generation_ = GetU64(p + 16);
  uint64_t total = GetU64(p + 24);
  uint64_t count = GetU64(p + 32);
  uint32_t toc_crc = GetU32(p + 40);
  if (total != bytes_.size()) {
    return Status::Corruption("snapshot truncated or padded: " + path);
  }
  if (count > (bytes_.size() - kHeaderBytes) / kTocEntryBytes) {
    return Status::Corruption("snapshot TOC count out of bounds: " + path);
  }
  const char* toc = p + kHeaderBytes;
  size_t toc_bytes = static_cast<size_t>(count) * kTocEntryBytes;
  if (Crc32(toc, toc_bytes) != toc_crc) {
    return Status::Corruption("snapshot TOC checksum mismatch: " + path);
  }
  entries_.clear();
  entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const char* e = toc + i * kTocEntryBytes;
    size_t name_len = strnlen(e, kNameBytes);
    Entry entry;
    entry.name.assign(e, name_len);
    entry.offset = GetU64(e + kNameBytes);
    entry.size = GetU64(e + kNameBytes + 8);
    if (entry.offset % 8 != 0 || entry.offset > bytes_.size() ||
        entry.size > bytes_.size() - entry.offset) {
      return Status::Corruption("snapshot section out of bounds: " + path);
    }
    entries_.push_back(std::move(entry));
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Open(Fs* fs, const std::string& path,
                                            SnapshotKind expected_kind) {
  if (fs == nullptr) fs = RealFs();
  SnapshotReader reader;
  auto mapped = fs->Mmap(path);
  if (mapped.ok()) {
    reader.map_ = mapped.MoveValueUnsafe();
    reader.bytes_ = reader.map_.bytes();
  } else {
    // Fault-injecting and exotic filesystems refuse mmap; fall back to
    // a copying read into an 8-byte-aligned buffer.
    MLAKE_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
    reader.owned_.resize((data.size() + 7) / 8);
    std::memcpy(reader.owned_.data(), data.data(), data.size());
    reader.bytes_ = std::string_view(
        reinterpret_cast<const char*>(reader.owned_.data()), data.size());
  }
  MLAKE_RETURN_NOT_OK(reader.Validate(expected_kind, path));
  return reader;
}

bool SnapshotReader::HasSection(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

Result<std::string_view> SnapshotReader::Section(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return std::string_view(bytes_.data() + e.offset, e.size);
    }
  }
  return Status::NotFound("snapshot section not found: " + std::string(name));
}

}  // namespace mlake::index
