#ifndef MLAKE_INDEX_INVERTED_INDEX_H_
#define MLAKE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/fs.h"
#include "common/result.h"
#include "index/snapshot.h"

namespace mlake::index {

/// A keyword-search hit.
struct TextHit {
  std::string doc_id;
  double score = 0.0;
};

/// Integer corpus statistics for one query's terms — exactly the
/// inputs BM25 derives from the corpus (live document count, total
/// live tokens, per-term document frequency). Deliberately integers:
/// per-shard contributions sum exactly, so a router can add N shards'
/// stats and hand the global totals back to `SearchWithStats`, which
/// then scores bit-identically to one merged index holding all shards'
/// documents.
struct Bm25Stats {
  uint64_t live_docs = 0;
  uint64_t total_tokens = 0;
  std::unordered_map<std::string, uint64_t> df;  // term -> live doc freq

  void Merge(const Bm25Stats& other);
};

/// Inverted index with BM25 ranking over model-card text — the
/// metadata-search baseline the paper says today's model hubs rely on
/// (name/documentation keyword relevance, "not a semantic notion based
/// on the model itself").
///
/// Two-segment layout: a frozen *base* segment served zero-copy from an
/// mmap-backed snapshot (string tables + CSR postings, binary-searched)
/// plus the in-memory *delta* holding documents added since. Removing a
/// base document tombstones it; scoring computes document frequencies
/// over live documents only, so merged scores are bit-identical to a
/// from-scratch rebuild over the same live set.
class InvertedIndex {
 public:
  /// BM25 parameters (standard defaults).
  explicit InvertedIndex(double k1 = 1.2, double b = 0.75)
      : k1_(k1), b_(b) {}

  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Indexes a document; text is tokenized to lowercase alphanumerics.
  /// Re-adding an id replaces the previous document (a base copy is
  /// tombstoned and shadowed by the new delta copy).
  void Add(const std::string& doc_id, std::string_view text);

  /// Removes a document from either segment (no-op if absent).
  void Remove(const std::string& doc_id);

  /// BM25 top-k for a free-text query. Documents matching zero terms
  /// are not returned.
  std::vector<TextHit> Search(std::string_view query, size_t k) const;

  /// Batched BM25: results[i] is bit-identical to `Search(queries[i],
  /// k)` — which in fact delegates here with a batch of one. Work
  /// shared across the batch: each distinct term's base-table binary
  /// search, live-posting gather, document frequency and idf are
  /// computed once; identical query strings are scored once.
  /// Per-document accumulation stays in query-term order, which is
  /// what keeps each result bit-identical to a solo search.
  std::vector<std::vector<TextHit>> SearchBatch(
      const std::vector<std::string>& queries, size_t k) const;

  /// This index's contribution to `query`'s corpus statistics: df per
  /// distinct query term plus the live-doc/token counters.
  Bm25Stats CollectStats(std::string_view query) const;

  /// BM25 top-k with externally supplied (global) corpus statistics.
  /// With `stats == CollectStats(query)` the result is bit-identical
  /// to `Search(query, k)`; with summed cross-shard stats each local
  /// document scores exactly as it would in the merged corpus.
  std::vector<TextHit> SearchWithStats(std::string_view query, size_t k,
                                       const Bm25Stats& stats) const;

  /// Live documents across both segments.
  size_t NumDocs() const { return live_docs_ + base_live_; }
  /// Distinct terms (delta terms plus base terms; a term present in
  /// both is counted twice — stats only).
  size_t NumTerms() const { return postings_.size() + base_terms_; }

  /// Raw per-segment counts (stats surface).
  size_t BaseSize() const { return base_docs_; }
  size_t DeltaSize() const { return doc_ids_.size(); }
  size_t Tombstones() const {
    return base_dead_count_ + (doc_ids_.size() - live_docs_);
  }
  uint64_t snapshot_generation() const { return base_generation_; }

  /// Writes a generation-`generation` snapshot via WriteFileAtomic.
  /// Only a single-segment index can be saved (all delta or all base);
  /// tombstoned documents are dropped, so a loaded snapshot never
  /// carries tombstones.
  Status SaveSnapshot(Fs* fs, const std::string& path,
                      uint64_t generation) const;

  /// Points the base segment at a snapshot: mmap + header validation,
  /// no postings deserialization. The index must be empty.
  Status LoadSnapshot(Fs* fs, const std::string& path);

 private:
  struct Posting {
    uint32_t doc;  // internal doc index
    uint32_t term_frequency;
  };

  /// Index of `doc_id` in the base segment's sorted doc table, or -1.
  int64_t BaseDocIndex(std::string_view doc_id) const;
  /// Index of `term` in the base segment's sorted term table, or -1.
  int64_t BaseTermIndex(std::string_view term) const;
  std::string_view BaseDocId(size_t i) const;
  bool BaseDocDead(size_t i) const {
    return !base_dead_.empty() && base_dead_[i] != 0;
  }

  double k1_;
  double b_;

  // ---- delta segment (in-memory, mutable) ----
  std::vector<std::string> doc_ids_;           // internal -> external
  std::unordered_map<std::string, uint32_t> doc_index_;  // external -> internal
  std::vector<uint32_t> doc_lengths_;          // tokens per live doc (0 = removed)
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  uint64_t total_tokens_ = 0;
  size_t live_docs_ = 0;

  // ---- base segment (frozen, mmap-backed) ----
  SnapshotReader base_snap_;
  uint64_t base_generation_ = 0;
  size_t base_docs_ = 0;
  size_t base_terms_ = 0;
  const uint64_t* bdoc_off_ = nullptr;   // base_docs_+1 into bdoc_bytes_
  const char* bdoc_bytes_ = nullptr;
  const uint32_t* bdoc_len_ = nullptr;   // tokens per base doc
  const uint64_t* bterm_off_ = nullptr;  // base_terms_+1 into bterm_bytes_
  const char* bterm_bytes_ = nullptr;
  const uint64_t* bpost_off_ = nullptr;  // base_terms_+1 posting extents
  const uint32_t* bpost_ = nullptr;      // (doc, tf) pairs, interleaved
  std::vector<uint8_t> base_dead_;       // base tombstones (runtime)
  size_t base_dead_count_ = 0;
  uint64_t base_tokens_ = 0;             // live base tokens
  size_t base_live_ = 0;                 // live base docs
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_INVERTED_INDEX_H_
