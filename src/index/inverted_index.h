#ifndef MLAKE_INDEX_INVERTED_INDEX_H_
#define MLAKE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mlake::index {

/// A keyword-search hit.
struct TextHit {
  std::string doc_id;
  double score = 0.0;
};

/// In-memory inverted index with BM25 ranking over model-card text —
/// the metadata-search baseline the paper says today's model hubs rely
/// on (name/documentation keyword relevance, "not a semantic notion
/// based on the model itself").
class InvertedIndex {
 public:
  /// BM25 parameters (standard defaults).
  explicit InvertedIndex(double k1 = 1.2, double b = 0.75)
      : k1_(k1), b_(b) {}

  /// Indexes a document; text is tokenized to lowercase alphanumerics.
  /// Re-adding an id replaces the previous document.
  void Add(const std::string& doc_id, std::string_view text);

  /// Removes a document (no-op if absent).
  void Remove(const std::string& doc_id);

  /// BM25 top-k for a free-text query. Documents matching zero terms
  /// are not returned.
  std::vector<TextHit> Search(std::string_view query, size_t k) const;

  size_t NumDocs() const { return doc_lengths_.size(); }
  size_t NumTerms() const { return postings_.size(); }

 private:
  struct Posting {
    uint32_t doc;  // internal doc index
    uint32_t term_frequency;
  };

  double k1_;
  double b_;
  std::vector<std::string> doc_ids_;           // internal -> external
  std::unordered_map<std::string, uint32_t> doc_index_;  // external -> internal
  std::vector<uint32_t> doc_lengths_;          // tokens per live doc (0 = removed)
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  uint64_t total_tokens_ = 0;
  size_t live_docs_ = 0;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_INVERTED_INDEX_H_
