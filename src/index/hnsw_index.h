#ifndef MLAKE_INDEX_HNSW_INDEX_H_
#define MLAKE_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "index/vector_index.h"

namespace mlake::index {

/// HNSW construction/search parameters (Malkov & Yashunin [89]).
struct HnswConfig {
  Metric metric = Metric::kCosine;
  /// Max out-degree per node on upper layers (2M on layer 0).
  int m = 16;
  /// Beam width during construction.
  int ef_construction = 128;
  /// Default beam width during search (raise for higher recall).
  int ef_search = 64;
  uint64_t seed = 42;
};

/// Hierarchical Navigable Small World approximate nearest-neighbor
/// index — the paper's roadmap (§5 "Indexer") names this structure as
/// the scalable sublinear index for model embeddings.
///
/// Standard algorithm: each element is assigned a geometric random
/// level; search greedily descends the upper layers then runs a
/// best-first beam (width ef) on layer 0. Construction links each new
/// element to its M nearest candidates per layer, pruning neighbor
/// lists back to the degree bound.
///
/// Thread-safety contract:
///   - `Search` is const and carries no hidden mutable state (the
///     visited set is per-call scratch); any number of threads may
///     search concurrently.
///   - `Add`/`Build` mutate the graph and require exclusive access —
///     no concurrent `Search` or other mutation. The lake enforces
///     this with its reader/writer lock.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(int64_t dim, HnswConfig config = {});

  Status Add(int64_t id, const std::vector<float>& vec) override;

  /// Bulk construction on `exec`'s pool. The batch is appended in
  /// input order and the result is *identical at any thread count*
  /// (including serial): nodes are processed in fixed, size-doubling
  /// waves; within a wave every node's neighbor candidates are
  /// searched in parallel against the graph as of the wave start
  /// (read-only), then links are applied sequentially in index order.
  /// Level draws consume the same rng stream as an equivalent
  /// sequence of `Add` calls. The wave schedule depends only on
  /// element counts, never on scheduling, so `Build` is
  /// deterministic-by-construction; its graph may differ (slightly,
  /// and deterministically) from the one a pure `Add` loop builds.
  Status Build(const std::vector<int64_t>& ids,
               const std::vector<std::vector<float>>& vecs,
               const ExecutionContext& exec);

  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       size_t k) const override;
  size_t Size() const override { return external_ids_.size(); }
  int64_t dim() const override { return dim_; }

  /// Adjusts the search beam width (recall/latency knob). Not
  /// thread-safe against concurrent Search.
  void set_ef_search(int ef) { config_.ef_search = ef; }
  const HnswConfig& config() const { return config_; }

  /// Max layer currently in use (diagnostics).
  int max_level() const { return max_level_; }

 private:
  struct Candidate {
    float distance;
    uint32_t node;
  };

  /// Per-search visited set (epoch-stamped for O(1) reuse across the
  /// layer descents of one query). Owned by the caller's stack frame,
  /// which is what makes concurrent `Search` safe.
  struct VisitedScratch {
    std::vector<uint32_t> stamp;
    uint32_t epoch = 0;

    /// Starts a fresh visit epoch over `n` nodes.
    void NextEpoch(size_t n) {
      if (stamp.size() != n) {
        stamp.assign(n, 0);
        epoch = 0;
      }
      if (++epoch == 0) {  // wrapped
        std::fill(stamp.begin(), stamp.end(), 0);
        epoch = 1;
      }
    }
    bool Visit(uint32_t node) {
      if (stamp[node] == epoch) return false;
      stamp[node] = epoch;
      return true;
    }
  };

  /// Per-layer neighbor candidates for one node, found against a fixed
  /// graph snapshot; the unit of Build's parallel phase.
  struct PlannedLinks {
    /// candidates[l] = sorted candidates on layer l (l <= node level).
    std::vector<std::vector<Candidate>> candidates;
  };

  float DistanceTo(const float* query, uint32_t node) const;

  /// Distances from `query` to `count` nodes, with the candidate
  /// vectors software-prefetched before the math starts — the batched
  /// form every adjacency-list expansion uses.
  void DistanceToBatch(const float* query, const uint32_t* nodes,
                       size_t count, float* out) const;

  /// L2-normalizes one stored row in place (no-op on zero vectors).
  void NormalizeRow(float* row) const;

  /// Greedy single-entry descent on one layer.
  uint32_t GreedyClosest(const float* query, uint32_t entry,
                         int level) const;

  /// Best-first beam search on one layer, returning up to `ef`
  /// candidates (unsorted).
  std::vector<Candidate> SearchLayer(const float* query, uint32_t entry,
                                     int ef, int level,
                                     VisitedScratch* visited) const;

  /// Appends vector storage + level for one element (no links yet).
  uint32_t AppendNode(int64_t id, const std::vector<float>& vec);

  /// Searches neighbor candidates for `node` against the currently
  /// linked graph (read-only; safe to run concurrently for distinct
  /// nodes as long as no links mutate).
  PlannedLinks FindCandidates(uint32_t node, VisitedScratch* visited) const;

  /// Wires `node` into the graph from planned candidates and updates
  /// the entry point. Mutates links; callers serialize.
  void ApplyLinks(uint32_t node, const PlannedLinks& plan);

  /// Prunes a neighbor candidate set to the closest `max_degree`.
  void ShrinkNeighbors(uint32_t node, int level, int max_degree);

  int RandomLevel();

  int64_t dim_;
  HnswConfig config_;
  Rng rng_;
  double level_lambda_;

  std::vector<int64_t> external_ids_;
  // Flattened vectors. Under Metric::kCosine rows are stored
  // L2-normalized (normalize-at-Add), so distance is a pure dot
  // product; queries are normalized once at Search entry.
  std::vector<float> data_;
  std::vector<int> levels_;                // per node
  // links_[node][level] = neighbor node ids.
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_HNSW_INDEX_H_
