#ifndef MLAKE_INDEX_HNSW_INDEX_H_
#define MLAKE_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fs.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "index/snapshot.h"
#include "index/vector_index.h"

namespace mlake::index {

/// HNSW construction/search parameters (Malkov & Yashunin [89]).
struct HnswConfig {
  Metric metric = Metric::kCosine;
  /// Max out-degree per node on upper layers (2M on layer 0).
  int m = 16;
  /// Beam width during construction.
  int ef_construction = 128;
  /// Default beam width during search (raise for higher recall).
  int ef_search = 64;
  uint64_t seed = 42;
};

/// Hierarchical Navigable Small World approximate nearest-neighbor
/// index — the paper's roadmap (§5 "Indexer") names this structure as
/// the scalable sublinear index for model embeddings.
///
/// Standard algorithm: each element is assigned a geometric random
/// level; search greedily descends the upper layers then runs a
/// best-first beam (width ef) on layer 0. Construction links each new
/// element to its M nearest candidates per layer, pruning neighbor
/// lists back to the degree bound.
///
/// Two-segment layout for out-of-core operation: a frozen *base*
/// segment served zero-copy from an mmap-backed snapshot (flat CSR
/// adjacency, never mutated) plus an in-memory *delta* segment holding
/// every element added since the snapshot. Search runs the beam over
/// both segments and merges by distance; `Remove` tombstones in either
/// segment. Folding the delta back into a new base is the owner's job
/// (the lake rebuilds + `SaveSnapshot`s at compaction).
///
/// Thread-safety contract:
///   - `Search` is const and carries no hidden mutable state (the
///     visited set is per-call scratch); any number of threads may
///     search concurrently.
///   - `Add`/`Build`/`Remove`/snapshot ops mutate the index and
///     require exclusive access — no concurrent `Search` or other
///     mutation. The lake enforces this with its reader/writer lock.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(int64_t dim, HnswConfig config = {});

  /// Appends to the delta segment. O(log n) graph search, O(1) in the
  /// lake size otherwise (ids are checked against a hash map, not a
  /// scan).
  Status Add(int64_t id, const std::vector<float>& vec) override;

  /// Tombstones an element in either segment (search skips it and
  /// over-fetches to compensate). NotFound if the id was never added;
  /// OK (no-op) if it is already removed.
  Status Remove(int64_t id);

  /// Bulk construction on `exec`'s pool. The batch is appended in
  /// input order and the result is *identical at any thread count*
  /// (including serial): nodes are processed in fixed, size-doubling
  /// waves; within a wave every node's neighbor candidates are
  /// searched in parallel against the graph as of the wave start
  /// (read-only), then links are applied sequentially in index order.
  /// Level draws consume the same rng stream as an equivalent
  /// sequence of `Add` calls. The wave schedule depends only on
  /// element counts, never on scheduling, so `Build` is
  /// deterministic-by-construction; its graph may differ (slightly,
  /// and deterministically) from the one a pure `Add` loop builds.
  Status Build(const std::vector<int64_t>& ids,
               const std::vector<std::vector<float>>& vecs,
               const ExecutionContext& exec);

  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       size_t k) const override;

  /// Batched search: results[i] is bit-identical to `Search(queries[i],
  /// k)` — which in fact delegates here with a batch of one. Shared
  /// work across the batch: queries are normalized into one contiguous
  /// block, duplicate queries are probed once, the visited-set scratch
  /// is reused across queries segment-major, and small cosine segments
  /// (<= kDenseSegmentMax rows) are scored as one query x candidate
  /// `kernels::Gemm` block instead of per-query graph walks. A Gemm
  /// output row is produced by the same per-lane FMA sequence no matter
  /// how many queries share the block, so batch composition never
  /// changes a result's bits. Same thread-safety contract as `Search`.
  Result<std::vector<std::vector<Neighbor>>> SearchBatch(
      const std::vector<std::vector<float>>& queries, size_t k) const;

  /// Drops the `count` most recently added delta elements entirely
  /// (storage, links and backlinks) — the O(batch) rollback a failed
  /// ingest uses. Links other delta nodes gained *to* the dropped tail
  /// are erased; links they lost to pruning while the tail was linked
  /// in are not restored, so the graph is valid but not necessarily
  /// bit-identical to the pre-append graph. The rng stream is not
  /// rewound.
  Status TruncateTail(size_t count);

  /// Writes the index as a generation-`generation` snapshot via
  /// WriteFileAtomic. Only a single-segment index can be saved (all
  /// delta, or all base): with both populated the caller must compact
  /// first. Tombstoned elements are dropped and surviving nodes
  /// renumbered, so a loaded snapshot never carries tombstones.
  Status SaveSnapshot(Fs* fs, const std::string& path,
                      uint64_t generation) const;

  /// Points the base segment at a snapshot: mmap + header validation,
  /// no graph deserialization (search reads the mapped arrays
  /// directly). The index must be empty; dim/metric/M must match the
  /// file. Subsequent Adds go to the (initially empty) delta segment.
  Status LoadSnapshot(Fs* fs, const std::string& path);

  /// Live elements (both segments, minus tombstones).
  size_t Size() const override {
    return base_n_ - base_dead_count_ + external_ids_.size() -
           delta_dead_count_;
  }
  /// Raw element counts per segment and tombstones (stats surface).
  size_t BaseSize() const { return base_n_; }
  size_t DeltaSize() const { return external_ids_.size(); }
  size_t Tombstones() const { return base_dead_count_ + delta_dead_count_; }
  /// Generation of the loaded base snapshot (0 = none loaded).
  uint64_t snapshot_generation() const { return base_generation_; }

  int64_t dim() const override { return dim_; }

  /// Adjusts the search beam width (recall/latency knob). Not
  /// thread-safe against concurrent Search.
  void set_ef_search(int ef) { config_.ef_search = ef; }
  const HnswConfig& config() const { return config_; }

  /// Max layer currently in use by the delta segment (diagnostics).
  int max_level() const { return max_level_; }

 private:
  struct Candidate {
    float distance;
    uint32_t node;
  };

  /// One segment as seen by the search routines: vector rows plus CSR
  /// or vector-of-vector adjacency behind a common accessor.
  struct SegRef {
    const HnswIndex* idx;
    bool base;

    size_t n() const {
      return base ? idx->base_n_ : idx->external_ids_.size();
    }
    const float* row(uint32_t node) const {
      const float* d = base ? idx->base_data_ : idx->data_.data();
      return d + static_cast<int64_t>(node) * idx->dim_;
    }
    void neighbors(uint32_t node, int level, const uint32_t** out,
                   size_t* len) const;
    uint32_t entry() const {
      return base ? idx->base_entry_ : idx->entry_point_;
    }
    int top_level() const {
      return base ? idx->base_max_level_ : idx->max_level_;
    }
  };

  /// Per-search visited set (epoch-stamped for O(1) reuse across the
  /// layer descents of one query). Owned by the caller's stack frame,
  /// which is what makes concurrent `Search` safe.
  struct VisitedScratch {
    std::vector<uint32_t> stamp;
    uint32_t epoch = 0;

    /// Starts a fresh visit epoch over `n` nodes.
    void NextEpoch(size_t n) {
      if (stamp.size() != n) {
        stamp.assign(n, 0);
        epoch = 0;
      }
      if (++epoch == 0) {  // wrapped
        std::fill(stamp.begin(), stamp.end(), 0);
        epoch = 1;
      }
    }
    bool Visit(uint32_t node) {
      if (stamp[node] == epoch) return false;
      stamp[node] = epoch;
      return true;
    }
  };

  /// Per-layer neighbor candidates for one node, found against a fixed
  /// graph snapshot; the unit of Build's parallel phase.
  struct PlannedLinks {
    /// candidates[l] = sorted candidates on layer l (l <= node level).
    std::vector<std::vector<Candidate>> candidates;
  };

  float DistanceTo(const SegRef& seg, const float* query,
                   uint32_t node) const;

  /// Distances from `query` to `count` nodes, with the candidate
  /// vectors software-prefetched before the math starts — the batched
  /// form every adjacency-list expansion uses.
  void DistanceToBatch(const SegRef& seg, const float* query,
                       const uint32_t* nodes, size_t count,
                       float* out) const;

  /// L2-normalizes one stored row in place (no-op on zero vectors).
  void NormalizeRow(float* row) const;

  /// Greedy single-entry descent on one layer.
  uint32_t GreedyClosest(const SegRef& seg, const float* query,
                         uint32_t entry, int level) const;

  /// Best-first beam search on one layer, returning up to `ef`
  /// candidates (unsorted).
  std::vector<Candidate> SearchLayer(const SegRef& seg, const float* query,
                                     uint32_t entry, int ef, int level,
                                     VisitedScratch* visited) const;

  /// Largest segment (raw rows, tombstones included) the batch path
  /// scores densely with Gemm instead of walking the graph.
  static constexpr size_t kDenseSegmentMax = 128;

  /// Beam-searches one segment and appends its live hits to `out`.
  /// `visited` is caller-owned scratch, reusable across queries.
  void CollectFrom(const SegRef& seg, const float* query, size_t k,
                   VisitedScratch* visited, std::vector<Neighbor>* out) const;

  /// Brute-force scores `m` prepared (normalized, contiguous) queries
  /// against every row of a small segment with one Gemm block, then
  /// appends each query's live hits to (*outs)[i]. Cosine only: rows
  /// and queries are unit-length, so distance = 1 - dot.
  void CollectDense(const SegRef& seg, const float* queries, size_t m,
                    std::vector<std::vector<Neighbor>>* outs) const;

  /// Appends vector storage + level for one element (no links yet).
  uint32_t AppendNode(int64_t id, const std::vector<float>& vec);

  /// Searches neighbor candidates for `node` against the currently
  /// linked delta graph (read-only; safe to run concurrently for
  /// distinct nodes as long as no links mutate).
  PlannedLinks FindCandidates(uint32_t node, VisitedScratch* visited) const;

  /// Wires `node` into the graph from planned candidates and updates
  /// the entry point. Mutates links; callers serialize.
  void ApplyLinks(uint32_t node, const PlannedLinks& plan);

  /// Prunes a neighbor candidate set to the closest `max_degree`.
  void ShrinkNeighbors(uint32_t node, int level, int max_degree);

  int RandomLevel();

  /// Builds the id -> handle map on first use (handles: base node i,
  /// or base_n_ + delta node j). Pure snapshot loads never pay for it;
  /// the first mutation does, once.
  void EnsureIdMap() const;

  int64_t dim_;
  HnswConfig config_;
  Rng rng_;
  double level_lambda_;

  // ---- delta segment (in-memory, mutable) ----
  std::vector<int64_t> external_ids_;
  // Flattened vectors. Under Metric::kCosine rows are stored
  // L2-normalized (normalize-at-Add), so distance is a pure dot
  // product; queries are normalized once at Search entry.
  std::vector<float> data_;
  std::vector<int> levels_;                // per node
  // links_[node][level] = neighbor node ids (delta-local).
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  std::vector<uint8_t> dead_;              // delta tombstones
  size_t delta_dead_count_ = 0;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;

  // ---- base segment (frozen, mmap-backed) ----
  SnapshotReader base_snap_;
  size_t base_n_ = 0;
  uint64_t base_generation_ = 0;
  const int64_t* base_ids_ = nullptr;
  const float* base_data_ = nullptr;
  const int32_t* base_levels_ = nullptr;
  const uint64_t* base_slot_off_ = nullptr;  // n+1 prefix sums of levels+1
  const uint64_t* base_link_off_ = nullptr;  // slots+1 adjacency extents
  const uint32_t* base_links_ = nullptr;     // flat neighbor lists
  uint32_t base_entry_ = 0;
  int base_max_level_ = -1;
  std::vector<uint8_t> base_dead_;           // base tombstones (runtime)
  size_t base_dead_count_ = 0;

  mutable std::unordered_map<int64_t, uint64_t> id_map_;
  mutable bool id_map_valid_ = false;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_HNSW_INDEX_H_
