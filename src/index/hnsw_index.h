#ifndef MLAKE_INDEX_HNSW_INDEX_H_
#define MLAKE_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "index/vector_index.h"

namespace mlake::index {

/// HNSW construction/search parameters (Malkov & Yashunin [89]).
struct HnswConfig {
  Metric metric = Metric::kCosine;
  /// Max out-degree per node on upper layers (2M on layer 0).
  int m = 16;
  /// Beam width during construction.
  int ef_construction = 128;
  /// Default beam width during search (raise for higher recall).
  int ef_search = 64;
  uint64_t seed = 42;
};

/// Hierarchical Navigable Small World approximate nearest-neighbor
/// index — the paper's roadmap (§5 "Indexer") names this structure as
/// the scalable sublinear index for model embeddings.
///
/// Standard algorithm: each element is assigned a geometric random
/// level; search greedily descends the upper layers then runs a
/// best-first beam (width ef) on layer 0. Construction links each new
/// element to its M nearest candidates per layer, pruning neighbor
/// lists back to the degree bound.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(int64_t dim, HnswConfig config = {});

  Status Add(int64_t id, const std::vector<float>& vec) override;
  Result<std::vector<Neighbor>> Search(const std::vector<float>& query,
                                       size_t k) const override;
  size_t Size() const override { return external_ids_.size(); }
  int64_t dim() const override { return dim_; }

  /// Adjusts the search beam width (recall/latency knob).
  void set_ef_search(int ef) { config_.ef_search = ef; }
  const HnswConfig& config() const { return config_; }

  /// Max layer currently in use (diagnostics).
  int max_level() const { return max_level_; }

 private:
  struct Candidate {
    float distance;
    uint32_t node;
  };

  float DistanceTo(const float* query, uint32_t node) const;

  /// Greedy single-entry descent on one layer.
  uint32_t GreedyClosest(const float* query, uint32_t entry,
                         int level) const;

  /// Best-first beam search on one layer, returning up to `ef`
  /// candidates (unsorted).
  std::vector<Candidate> SearchLayer(const float* query, uint32_t entry,
                                     int ef, int level) const;

  /// Prunes a neighbor candidate set to the closest `max_degree`.
  void ShrinkNeighbors(uint32_t node, int level, int max_degree);

  int RandomLevel();

  int64_t dim_;
  HnswConfig config_;
  Rng rng_;
  double level_lambda_;

  std::vector<int64_t> external_ids_;
  std::vector<float> data_;                // flattened vectors
  std::vector<int> levels_;                // per node
  // links_[node][level] = neighbor node ids.
  std::vector<std::vector<std::vector<uint32_t>>> links_;
  int max_level_ = -1;
  uint32_t entry_point_ = 0;

  mutable std::vector<uint32_t> visited_stamp_;
  mutable uint32_t visit_epoch_ = 0;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_HNSW_INDEX_H_
