#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mlake::index {

void InvertedIndex::Add(const std::string& doc_id, std::string_view text) {
  auto it = doc_index_.find(doc_id);
  if (it != doc_index_.end()) {
    Remove(doc_id);
  }
  std::vector<std::string> tokens = TokenizeWords(text);

  uint32_t doc;
  it = doc_index_.find(doc_id);
  if (it != doc_index_.end()) {
    doc = it->second;  // resurrect removed slot
  } else {
    doc = static_cast<uint32_t>(doc_ids_.size());
    doc_ids_.push_back(doc_id);
    doc_lengths_.push_back(0);
    doc_index_[doc_id] = doc;
  }

  std::unordered_map<std::string, uint32_t> counts;
  for (const std::string& t : tokens) ++counts[t];
  for (const auto& [term, tf] : counts) {
    postings_[term].push_back(Posting{doc, tf});
  }
  doc_lengths_[doc] = static_cast<uint32_t>(tokens.size());
  total_tokens_ += tokens.size();
  ++live_docs_;
}

void InvertedIndex::Remove(const std::string& doc_id) {
  auto it = doc_index_.find(doc_id);
  if (it == doc_index_.end()) return;
  uint32_t doc = it->second;
  if (doc_lengths_[doc] == 0) return;  // already removed
  total_tokens_ -= doc_lengths_[doc];
  doc_lengths_[doc] = 0;
  --live_docs_;
  // Postings are purged lazily at search time (cheap for lake-sized
  // corpora); a compaction pass would drop them eagerly.
  for (auto& [term, list] : postings_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [doc](const Posting& p) { return p.doc == doc; }),
               list.end());
  }
}

std::vector<TextHit> InvertedIndex::Search(std::string_view query,
                                           size_t k) const {
  std::vector<std::string> terms = TokenizeWords(query);
  if (terms.empty() || live_docs_ == 0) return {};
  double avg_len = static_cast<double>(total_tokens_) /
                   static_cast<double>(live_docs_);
  if (avg_len <= 0.0) avg_len = 1.0;
  double n_docs = static_cast<double>(live_docs_);

  std::unordered_map<uint32_t, double> scores;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end() || it->second.empty()) continue;
    double df = static_cast<double>(it->second.size());
    double idf = std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
    for (const Posting& p : it->second) {
      if (doc_lengths_[p.doc] == 0) continue;  // removed
      double tf = static_cast<double>(p.term_frequency);
      double len_norm =
          1.0 - b_ + b_ * static_cast<double>(doc_lengths_[p.doc]) / avg_len;
      double contribution = idf * (tf * (k1_ + 1.0)) / (tf + k1_ * len_norm);
      scores[p.doc] += contribution;
    }
  }

  std::vector<TextHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    hits.push_back(TextHit{doc_ids_[doc], score});
  }
  std::sort(hits.begin(), hits.end(), [](const TextHit& a, const TextHit& b) {
    return a.score > b.score || (a.score == b.score && a.doc_id < b.doc_id);
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace mlake::index
