#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace mlake::index {

namespace {

/// Binary search of `needle` in a CSR string table; -1 when absent.
int64_t TableIndex(const uint64_t* off, const char* bytes, size_t count,
                   std::string_view needle) {
  int64_t lo = 0, hi = static_cast<int64_t>(count) - 1;
  while (lo <= hi) {
    int64_t mid = lo + (hi - lo) / 2;
    std::string_view entry(bytes + off[mid],
                           static_cast<size_t>(off[mid + 1] - off[mid]));
    int cmp = entry.compare(needle);
    if (cmp == 0) return mid;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

/// Offset arrays must be non-decreasing and end at `limit`.
bool OffsetsWellFormed(const uint64_t* off, size_t count, uint64_t limit) {
  if (count == 0 || off[0] != 0 || off[count - 1] != limit) return false;
  for (size_t i = 1; i < count; ++i) {
    if (off[i] < off[i - 1]) return false;
  }
  return true;
}

}  // namespace

int64_t InvertedIndex::BaseDocIndex(std::string_view doc_id) const {
  if (base_docs_ == 0) return -1;
  return TableIndex(bdoc_off_, bdoc_bytes_, base_docs_, doc_id);
}

int64_t InvertedIndex::BaseTermIndex(std::string_view term) const {
  if (base_terms_ == 0) return -1;
  return TableIndex(bterm_off_, bterm_bytes_, base_terms_, term);
}

std::string_view InvertedIndex::BaseDocId(size_t i) const {
  return std::string_view(bdoc_bytes_ + bdoc_off_[i],
                          static_cast<size_t>(bdoc_off_[i + 1] -
                                              bdoc_off_[i]));
}

void InvertedIndex::Add(const std::string& doc_id, std::string_view text) {
  auto it = doc_index_.find(doc_id);
  if (it != doc_index_.end()) {
    Remove(doc_id);
  } else {
    // A live base copy is shadowed: tombstone it so only the new delta
    // copy scores.
    int64_t bi = BaseDocIndex(doc_id);
    if (bi >= 0 && !BaseDocDead(static_cast<size_t>(bi))) {
      Remove(doc_id);
    }
  }
  std::vector<std::string> tokens = TokenizeWords(text);

  uint32_t doc;
  it = doc_index_.find(doc_id);
  if (it != doc_index_.end()) {
    doc = it->second;  // resurrect removed slot
  } else {
    doc = static_cast<uint32_t>(doc_ids_.size());
    doc_ids_.push_back(doc_id);
    doc_lengths_.push_back(0);
    doc_index_[doc_id] = doc;
  }

  std::unordered_map<std::string, uint32_t> counts;
  for (const std::string& t : tokens) ++counts[t];
  for (const auto& [term, tf] : counts) {
    postings_[term].push_back(Posting{doc, tf});
  }
  doc_lengths_[doc] = static_cast<uint32_t>(tokens.size());
  total_tokens_ += tokens.size();
  ++live_docs_;
}

void InvertedIndex::Remove(const std::string& doc_id) {
  auto it = doc_index_.find(doc_id);
  if (it != doc_index_.end()) {
    uint32_t doc = it->second;
    if (doc_lengths_[doc] == 0) return;  // already removed
    total_tokens_ -= doc_lengths_[doc];
    doc_lengths_[doc] = 0;
    --live_docs_;
    // Delta postings are purged eagerly, so a posting list's length is
    // that term's live delta document frequency.
    for (auto& [term, list] : postings_) {
      list.erase(
          std::remove_if(list.begin(), list.end(),
                         [doc](const Posting& p) { return p.doc == doc; }),
          list.end());
    }
    return;
  }
  int64_t bi = BaseDocIndex(doc_id);
  if (bi < 0) return;
  size_t i = static_cast<size_t>(bi);
  if (BaseDocDead(i)) return;
  if (base_dead_.empty()) base_dead_.assign(base_docs_, 0);
  base_dead_[i] = 1;
  ++base_dead_count_;
  base_tokens_ -= bdoc_len_[i];
  --base_live_;
}

std::vector<TextHit> InvertedIndex::Search(std::string_view query,
                                           size_t k) const {
  std::vector<std::vector<TextHit>> batch =
      SearchBatch({std::string(query)}, k);
  return std::move(batch[0]);
}

void Bm25Stats::Merge(const Bm25Stats& other) {
  live_docs += other.live_docs;
  total_tokens += other.total_tokens;
  for (const auto& [term, n] : other.df) df[term] += n;
}

Bm25Stats InvertedIndex::CollectStats(std::string_view query) const {
  Bm25Stats stats;
  stats.live_docs = live_docs_ + base_live_;
  stats.total_tokens = total_tokens_ + base_tokens_;
  for (const std::string& term : TokenizeWords(query)) {
    auto [it, fresh] = stats.df.try_emplace(term, uint64_t{0});
    if (!fresh) continue;
    uint64_t df = 0;
    if (base_terms_ > 0) {
      int64_t t = BaseTermIndex(term);
      if (t >= 0) {
        for (uint64_t p = bpost_off_[t]; p < bpost_off_[t + 1]; ++p) {
          uint32_t doc = bpost_[2 * p];
          if (doc >= base_docs_ || BaseDocDead(doc)) continue;
          ++df;
        }
      }
    }
    auto pit = postings_.find(term);
    if (pit != postings_.end()) df += pit->second.size();
    it->second = df;
  }
  return stats;
}

std::vector<TextHit> InvertedIndex::SearchWithStats(
    std::string_view query, size_t k, const Bm25Stats& stats) const {
  std::vector<TextHit> hits;
  if (stats.live_docs == 0) return hits;
  // Corpus constants come from `stats` instead of this segment pair;
  // both are double-of-integer, so local stats reproduce Search's
  // arithmetic exactly.
  double avg_len = static_cast<double>(stats.total_tokens) /
                   static_cast<double>(stats.live_docs);
  if (avg_len <= 0.0) avg_len = 1.0;
  double n_docs = static_cast<double>(stats.live_docs);
  std::vector<std::string> terms = TokenizeWords(query);
  if (terms.empty()) return hits;

  struct TermScore {
    bool live = false;
    double idf = 0.0;
    std::vector<std::pair<uint32_t, uint32_t>> base_posts;  // (doc, tf)
    const std::vector<Posting>* delta = nullptr;
  };
  std::unordered_map<std::string, TermScore> cache;
  std::unordered_map<uint64_t, double> scores;
  for (const std::string& term : terms) {
    auto [cit, fresh] = cache.try_emplace(term);
    TermScore& ts = cit->second;
    if (fresh) {
      if (base_terms_ > 0) {
        int64_t t = BaseTermIndex(term);
        if (t >= 0) {
          for (uint64_t p = bpost_off_[t]; p < bpost_off_[t + 1]; ++p) {
            uint32_t doc = bpost_[2 * p];
            uint32_t tf = bpost_[2 * p + 1];
            if (doc >= base_docs_) continue;  // corrupt posting: skip
            if (BaseDocDead(doc)) continue;
            ts.base_posts.emplace_back(doc, tf);
          }
        }
      }
      auto it = postings_.find(term);
      if (it != postings_.end()) ts.delta = &it->second;
      auto dit = stats.df.find(term);
      double df =
          dit == stats.df.end() ? 0.0 : static_cast<double>(dit->second);
      if (df > 0.0) {
        ts.live = true;
        ts.idf = std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
      }
    }
    if (!ts.live) continue;
    double idf = ts.idf;
    for (const auto& [doc, tf_raw] : ts.base_posts) {
      double tf = static_cast<double>(tf_raw);
      double len_norm =
          1.0 - b_ + b_ * static_cast<double>(bdoc_len_[doc]) / avg_len;
      scores[doc] += idf * (tf * (k1_ + 1.0)) / (tf + k1_ * len_norm);
    }
    if (ts.delta != nullptr) {
      for (const Posting& p : *ts.delta) {
        if (doc_lengths_[p.doc] == 0) continue;  // removed
        double tf = static_cast<double>(p.term_frequency);
        double len_norm =
            1.0 - b_ +
            b_ * static_cast<double>(doc_lengths_[p.doc]) / avg_len;
        scores[base_docs_ + p.doc] +=
            idf * (tf * (k1_ + 1.0)) / (tf + k1_ * len_norm);
      }
    }
  }

  hits.reserve(scores.size());
  for (const auto& [handle, score] : scores) {
    std::string id = handle < base_docs_ ? std::string(BaseDocId(handle))
                                         : doc_ids_[handle - base_docs_];
    hits.push_back(TextHit{std::move(id), score});
  }
  std::sort(hits.begin(), hits.end(), [](const TextHit& a, const TextHit& b) {
    return a.score > b.score || (a.score == b.score && a.doc_id < b.doc_id);
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::vector<std::vector<TextHit>> InvertedIndex::SearchBatch(
    const std::vector<std::string>& queries, size_t k) const {
  std::vector<std::vector<TextHit>> results(queries.size());
  size_t n_live = live_docs_ + base_live_;
  if (queries.empty() || n_live == 0) return results;
  double avg_len = static_cast<double>(total_tokens_ + base_tokens_) /
                   static_cast<double>(n_live);
  if (avg_len <= 0.0) avg_len = 1.0;
  double n_docs = static_cast<double>(n_live);

  // Per-batch term cache: the base-table binary search, live-posting
  // gather, document frequency and idf of each distinct term are
  // computed once and shared by every query that mentions it.
  struct TermScore {
    bool live = false;  // false: matches no live document, skip
    double idf = 0.0;
    std::vector<std::pair<uint32_t, uint32_t>> base_posts;  // (doc, tf)
    const std::vector<Posting>* delta = nullptr;
  };
  std::unordered_map<std::string, TermScore> cache;
  // Identical query strings share one scored result.
  std::unordered_map<std::string_view, size_t> dedup;
  dedup.reserve(queries.size());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto [first, inserted] = dedup.emplace(queries[qi], qi);
    if (!inserted) {
      results[qi] = results[first->second];
      continue;
    }
    std::vector<std::string> terms = TokenizeWords(queries[qi]);
    if (terms.empty()) continue;

    // Scores keyed by a merged doc handle: base doc i -> i, delta doc
    // d -> base_docs_ + d. Per-document contributions accumulate in
    // query-term order — the same summation order a rebuilt index (and
    // a solo search) uses, which is what makes scores bit-identical.
    std::unordered_map<uint64_t, double> scores;
    for (const std::string& term : terms) {
      auto [cit, fresh] = cache.try_emplace(term);
      TermScore& ts = cit->second;
      if (fresh) {
        if (base_terms_ > 0) {
          int64_t t = BaseTermIndex(term);
          if (t >= 0) {
            uint64_t begin = bpost_off_[t];
            uint64_t end = bpost_off_[t + 1];
            for (uint64_t p = begin; p < end; ++p) {
              uint32_t doc = bpost_[2 * p];
              uint32_t tf = bpost_[2 * p + 1];
              if (doc >= base_docs_) continue;  // corrupt posting: skip
              if (BaseDocDead(doc)) continue;
              ts.base_posts.emplace_back(doc, tf);
            }
          }
        }
        auto it = postings_.find(term);
        if (it != postings_.end()) ts.delta = &it->second;
        size_t delta_df = ts.delta ? ts.delta->size() : 0;
        double df = static_cast<double>(ts.base_posts.size() + delta_df);
        if (df > 0.0) {
          ts.live = true;
          ts.idf = std::log(1.0 + (n_docs - df + 0.5) / (df + 0.5));
        }
      }
      if (!ts.live) continue;
      double idf = ts.idf;
      for (const auto& [doc, tf_raw] : ts.base_posts) {
        double tf = static_cast<double>(tf_raw);
        double len_norm =
            1.0 - b_ + b_ * static_cast<double>(bdoc_len_[doc]) / avg_len;
        scores[doc] += idf * (tf * (k1_ + 1.0)) / (tf + k1_ * len_norm);
      }
      if (ts.delta != nullptr) {
        for (const Posting& p : *ts.delta) {
          if (doc_lengths_[p.doc] == 0) continue;  // removed
          double tf = static_cast<double>(p.term_frequency);
          double len_norm = 1.0 - b_ + b_ *
                                           static_cast<double>(
                                               doc_lengths_[p.doc]) /
                                           avg_len;
          scores[base_docs_ + p.doc] +=
              idf * (tf * (k1_ + 1.0)) / (tf + k1_ * len_norm);
        }
      }
    }

    std::vector<TextHit>& hits = results[qi];
    hits.reserve(scores.size());
    for (const auto& [handle, score] : scores) {
      std::string id = handle < base_docs_
                           ? std::string(BaseDocId(handle))
                           : doc_ids_[handle - base_docs_];
      hits.push_back(TextHit{std::move(id), score});
    }
    std::sort(hits.begin(), hits.end(),
              [](const TextHit& a, const TextHit& b) {
                return a.score > b.score ||
                       (a.score == b.score && a.doc_id < b.doc_id);
              });
    if (hits.size() > k) hits.resize(k);
  }
  return results;
}

Status InvertedIndex::SaveSnapshot(Fs* fs, const std::string& path,
                                   uint64_t generation) const {
  if (base_docs_ > 0 && !doc_ids_.empty()) {
    return Status::FailedPrecondition(
        "InvertedIndex: cannot snapshot a two-segment index; compact first");
  }

  // Gather live documents sorted by id, renumbering via `remap`.
  std::vector<std::pair<std::string, uint32_t>> live;  // (id, old index)
  if (base_docs_ > 0) {
    for (size_t i = 0; i < base_docs_; ++i) {
      if (BaseDocDead(i)) continue;
      live.emplace_back(std::string(BaseDocId(i)), static_cast<uint32_t>(i));
    }
    // Base table is already sorted; the filter preserves order.
  } else {
    for (size_t i = 0; i < doc_ids_.size(); ++i) {
      if (doc_lengths_[i] == 0) continue;
      live.emplace_back(doc_ids_[i], static_cast<uint32_t>(i));
    }
    std::sort(live.begin(), live.end());
  }
  size_t n = live.size();
  std::vector<uint32_t> remap(base_docs_ > 0 ? base_docs_ : doc_ids_.size(),
                              UINT32_MAX);
  std::vector<uint64_t> doc_off(n + 1, 0);
  std::string doc_bytes;
  std::vector<uint32_t> doc_len(n, 0);
  uint64_t tokens = 0;
  for (size_t i = 0; i < n; ++i) {
    remap[live[i].second] = static_cast<uint32_t>(i);
    doc_bytes += live[i].first;
    doc_off[i + 1] = doc_bytes.size();
    doc_len[i] = base_docs_ > 0 ? bdoc_len_[live[i].second]
                                : doc_lengths_[live[i].second];
    tokens += doc_len[i];
  }

  // Terms sorted; postings per term sorted by new doc index.
  std::map<std::string, std::vector<std::pair<uint32_t, uint32_t>>> terms;
  if (base_docs_ > 0) {
    for (size_t t = 0; t < base_terms_; ++t) {
      std::string term(bterm_bytes_ + bterm_off_[t],
                       static_cast<size_t>(bterm_off_[t + 1] -
                                           bterm_off_[t]));
      std::vector<std::pair<uint32_t, uint32_t>> list;
      for (uint64_t p = bpost_off_[t]; p < bpost_off_[t + 1]; ++p) {
        uint32_t doc = bpost_[2 * p];
        if (doc >= base_docs_ || remap[doc] == UINT32_MAX) continue;
        list.emplace_back(remap[doc], bpost_[2 * p + 1]);
      }
      if (!list.empty()) terms[std::move(term)] = std::move(list);
    }
  } else {
    for (const auto& [term, list] : postings_) {
      std::vector<std::pair<uint32_t, uint32_t>> out;
      for (const Posting& p : list) {
        if (remap[p.doc] == UINT32_MAX) continue;
        out.emplace_back(remap[p.doc], p.term_frequency);
      }
      if (!out.empty()) terms[term] = std::move(out);
    }
  }

  std::vector<uint64_t> term_off(terms.size() + 1, 0);
  std::string term_bytes;
  std::vector<uint64_t> post_off(terms.size() + 1, 0);
  std::vector<uint32_t> post;
  size_t t = 0;
  for (auto& [term, list] : terms) {
    term_bytes += term;
    term_off[t + 1] = term_bytes.size();
    std::sort(list.begin(), list.end());
    for (const auto& [doc, tf] : list) {
      post.push_back(doc);
      post.push_back(tf);
    }
    post_off[t + 1] = post.size() / 2;
    ++t;
  }

  std::vector<uint64_t> meta = {n, terms.size(), post.size() / 2, tokens};
  SnapshotWriter writer(SnapshotKind::kInverted, generation);
  writer.AddArray("meta", meta);
  writer.AddArray("doc_off", doc_off);
  writer.AddSection("doc_bytes", doc_bytes.data(), doc_bytes.size());
  writer.AddArray("doc_len", doc_len);
  writer.AddArray("term_off", term_off);
  writer.AddSection("term_bytes", term_bytes.data(), term_bytes.size());
  writer.AddArray("post_off", post_off);
  writer.AddArray("post", post);
  return writer.WriteTo(fs, path);
}

Status InvertedIndex::LoadSnapshot(Fs* fs, const std::string& path) {
  if (base_docs_ > 0 || !doc_ids_.empty()) {
    return Status::FailedPrecondition(
        "InvertedIndex: LoadSnapshot requires an empty index");
  }
  MLAKE_ASSIGN_OR_RETURN(
      SnapshotReader snap,
      SnapshotReader::Open(fs, path, SnapshotKind::kInverted));
  MLAKE_ASSIGN_OR_RETURN(auto meta, snap.Array<uint64_t>("meta"));
  if (meta.second != 4) {
    return Status::Corruption("inverted snapshot meta malformed: " + path);
  }
  uint64_t n = meta.first[0];
  uint64_t n_terms = meta.first[1];
  uint64_t n_posts = meta.first[2];
  uint64_t tokens = meta.first[3];

  MLAKE_ASSIGN_OR_RETURN(auto doc_off, snap.Array<uint64_t>("doc_off"));
  MLAKE_ASSIGN_OR_RETURN(auto doc_bytes, snap.Section("doc_bytes"));
  MLAKE_ASSIGN_OR_RETURN(auto doc_len, snap.Array<uint32_t>("doc_len"));
  MLAKE_ASSIGN_OR_RETURN(auto term_off, snap.Array<uint64_t>("term_off"));
  MLAKE_ASSIGN_OR_RETURN(auto term_bytes, snap.Section("term_bytes"));
  MLAKE_ASSIGN_OR_RETURN(auto post_off, snap.Array<uint64_t>("post_off"));
  MLAKE_ASSIGN_OR_RETURN(auto post, snap.Array<uint32_t>("post"));
  if (doc_off.second != n + 1 || doc_len.second != n ||
      term_off.second != n_terms + 1 || post_off.second != n_terms + 1 ||
      post.second != 2 * n_posts) {
    return Status::Corruption("inverted snapshot sections malformed: " +
                              path);
  }
  if (!OffsetsWellFormed(doc_off.first, n + 1, doc_bytes.size()) ||
      !OffsetsWellFormed(term_off.first, n_terms + 1, term_bytes.size()) ||
      !OffsetsWellFormed(post_off.first, n_terms + 1, n_posts)) {
    return Status::Corruption("inverted snapshot offsets malformed: " + path);
  }

  base_snap_ = std::move(snap);
  base_generation_ = base_snap_.generation();
  base_docs_ = static_cast<size_t>(n);
  base_terms_ = static_cast<size_t>(n_terms);
  bdoc_off_ = doc_off.first;
  bdoc_bytes_ = doc_bytes.data();
  bdoc_len_ = doc_len.first;
  bterm_off_ = term_off.first;
  bterm_bytes_ = term_bytes.data();
  bpost_off_ = post_off.first;
  bpost_ = post.first;
  base_dead_.clear();
  base_dead_count_ = 0;
  base_tokens_ = tokens;
  base_live_ = base_docs_;
  return Status::OK();
}

}  // namespace mlake::index
