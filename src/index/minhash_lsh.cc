#include "index/minhash_lsh.h"

#include <algorithm>
#include <limits>

#include "common/hash.h"
#include "common/logging.h"

namespace mlake::index {

namespace {
/// Cheap 64-bit mixer (splitmix64 finalizer) to derive independent hash
/// functions from one base hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

MinHashSignature ComputeMinHash(const std::vector<std::string>& items,
                                size_t num_hashes, uint64_t seed) {
  MinHashSignature sig(num_hashes, std::numeric_limits<uint64_t>::max());
  for (const std::string& item : items) {
    uint64_t base = Fnv1a64(item);
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t v = Mix(base ^ Mix(seed + h));
      if (v < sig[h]) sig[h] = v;
    }
  }
  return sig;
}

double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b) {
  MLAKE_CHECK(a.size() == b.size()) << "signature length mismatch";
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

MinHashLsh::MinHashLsh(size_t bands, size_t rows)
    : bands_(bands), rows_(rows), buckets_(bands) {
  MLAKE_CHECK(bands > 0 && rows > 0) << "MinHashLsh: bad banding";
}

Status MinHashLsh::Add(const std::string& id,
                       const MinHashSignature& signature) {
  if (signature.size() != bands_ * rows_) {
    return Status::InvalidArgument("MinHashLsh: signature length mismatch");
  }
  if (signatures_.count(id) > 0) {
    return Status::AlreadyExists("MinHashLsh: id already present: " + id);
  }
  signatures_[id] = signature;
  for (size_t b = 0; b < bands_; ++b) {
    uint64_t bucket = Fnv1a64(
        reinterpret_cast<const char*>(signature.data() + b * rows_),
        rows_ * sizeof(uint64_t));
    buckets_[b][bucket].push_back(id);
  }
  return Status::OK();
}

std::vector<std::string> MinHashLsh::QueryCandidates(
    const MinHashSignature& signature) const {
  std::vector<std::string> out;
  if (signature.size() != bands_ * rows_) return out;
  for (size_t b = 0; b < bands_; ++b) {
    uint64_t bucket = Fnv1a64(
        reinterpret_cast<const char*>(signature.data() + b * rows_),
        rows_ * sizeof(uint64_t));
    auto it = buckets_[b].find(bucket);
    if (it == buckets_[b].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<MinHashLsh::OverlapHit> MinHashLsh::Query(
    const MinHashSignature& signature, double threshold) const {
  std::vector<OverlapHit> hits;
  for (const std::string& id : QueryCandidates(signature)) {
    double j = EstimateJaccard(signature, signatures_.at(id));
    if (j >= threshold) hits.push_back(OverlapHit{id, j});
  }
  std::sort(hits.begin(), hits.end(),
            [](const OverlapHit& a, const OverlapHit& b) {
              return a.jaccard > b.jaccard ||
                     (a.jaccard == b.jaccard && a.id < b.id);
            });
  return hits;
}

}  // namespace mlake::index
