#include "index/minhash_lsh.h"

#include <algorithm>
#include <limits>

#include "common/hash.h"
#include "common/logging.h"

namespace mlake::index {

namespace {
/// Cheap 64-bit mixer (splitmix64 finalizer) to derive independent hash
/// functions from one base hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Offset arrays must be non-decreasing and end at `limit`.
bool OffsetsWellFormed(const uint64_t* off, size_t count, uint64_t limit) {
  if (count == 0 || off[0] != 0 || off[count - 1] != limit) return false;
  for (size_t i = 1; i < count; ++i) {
    if (off[i] < off[i - 1]) return false;
  }
  return true;
}
}  // namespace

MinHashSignature ComputeMinHash(const std::vector<std::string>& items,
                                size_t num_hashes, uint64_t seed) {
  MinHashSignature sig(num_hashes, std::numeric_limits<uint64_t>::max());
  for (const std::string& item : items) {
    uint64_t base = Fnv1a64(item);
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t v = Mix(base ^ Mix(seed + h));
      if (v < sig[h]) sig[h] = v;
    }
  }
  return sig;
}

double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b) {
  MLAKE_CHECK(a.size() == b.size()) << "signature length mismatch";
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

MinHashLsh::MinHashLsh(size_t bands, size_t rows)
    : bands_(bands), rows_(rows), buckets_(bands) {
  MLAKE_CHECK(bands > 0 && rows > 0) << "MinHashLsh: bad banding";
}

int64_t MinHashLsh::BaseIndex(std::string_view id) const {
  int64_t lo = 0, hi = static_cast<int64_t>(base_n_) - 1;
  while (lo <= hi) {
    int64_t mid = lo + (hi - lo) / 2;
    std::string_view entry = BaseId(static_cast<size_t>(mid));
    int cmp = entry.compare(id);
    if (cmp == 0) return mid;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

std::string_view MinHashLsh::BaseId(size_t i) const {
  return std::string_view(bid_bytes_ + bid_off_[i],
                          static_cast<size_t>(bid_off_[i + 1] - bid_off_[i]));
}

uint64_t MinHashLsh::BandBucket(const MinHashSignature& signature,
                                size_t band) const {
  return Fnv1a64(
      reinterpret_cast<const char*>(signature.data() + band * rows_),
      rows_ * sizeof(uint64_t));
}

Status MinHashLsh::Add(const std::string& id,
                       const MinHashSignature& signature) {
  if (signature.size() != bands_ * rows_) {
    return Status::InvalidArgument("MinHashLsh: signature length mismatch");
  }
  if (signatures_.count(id) > 0) {
    return Status::AlreadyExists("MinHashLsh: id already present: " + id);
  }
  int64_t bi = base_n_ > 0 ? BaseIndex(id) : -1;
  if (bi >= 0 && !BaseDead(static_cast<size_t>(bi))) {
    return Status::AlreadyExists("MinHashLsh: id already present: " + id);
  }
  signatures_[id] = signature;
  for (size_t b = 0; b < bands_; ++b) {
    buckets_[b][BandBucket(signature, b)].push_back(id);
  }
  return Status::OK();
}

void MinHashLsh::Remove(const std::string& id) {
  auto it = signatures_.find(id);
  if (it != signatures_.end()) {
    for (size_t b = 0; b < bands_; ++b) {
      uint64_t bucket = BandBucket(it->second, b);
      auto bucket_it = buckets_[b].find(bucket);
      if (bucket_it == buckets_[b].end()) continue;
      auto& ids = bucket_it->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty()) buckets_[b].erase(bucket_it);
    }
    signatures_.erase(it);
    return;
  }
  int64_t bi = base_n_ > 0 ? BaseIndex(id) : -1;
  if (bi < 0 || BaseDead(static_cast<size_t>(bi))) return;
  if (base_dead_.empty()) base_dead_.assign(base_n_, 0);
  base_dead_[static_cast<size_t>(bi)] = 1;
  ++base_dead_count_;
}

std::vector<std::string> MinHashLsh::QueryCandidates(
    const MinHashSignature& signature) const {
  std::vector<std::string> out;
  if (signature.size() != bands_ * rows_) return out;
  for (size_t b = 0; b < bands_; ++b) {
    uint64_t bucket = BandBucket(signature, b);
    if (base_n_ > 0) {
      // Band b's keys occupy [b*n, (b+1)*n), sorted: binary search the
      // run of equal bucket hashes.
      const uint64_t* begin = bband_key_ + b * base_n_;
      const uint64_t* end = begin + base_n_;
      for (const uint64_t* p = std::lower_bound(begin, end, bucket);
           p != end && *p == bucket; ++p) {
        uint32_t idx = bband_idx_[p - bband_key_];
        if (idx >= base_n_ || BaseDead(idx)) continue;
        out.emplace_back(BaseId(idx));
      }
    }
    auto it = buckets_[b].find(bucket);
    if (it == buckets_[b].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<MinHashLsh::OverlapHit> MinHashLsh::Query(
    const MinHashSignature& signature, double threshold) const {
  std::vector<OverlapHit> hits;
  for (const std::string& id : QueryCandidates(signature)) {
    double j = 0.0;
    auto it = signatures_.find(id);
    if (it != signatures_.end()) {
      j = EstimateJaccard(signature, it->second);
    } else {
      int64_t bi = BaseIndex(id);
      if (bi < 0) continue;
      const uint64_t* sig = bsigs_ + static_cast<size_t>(bi) * bands_ * rows_;
      size_t agree = 0;
      for (size_t i = 0; i < signature.size(); ++i) {
        if (signature[i] == sig[i]) ++agree;
      }
      j = static_cast<double>(agree) / static_cast<double>(signature.size());
    }
    if (j >= threshold) hits.push_back(OverlapHit{id, j});
  }
  std::sort(hits.begin(), hits.end(),
            [](const OverlapHit& a, const OverlapHit& b) {
              return a.jaccard > b.jaccard ||
                     (a.jaccard == b.jaccard && a.id < b.id);
            });
  return hits;
}

Status MinHashLsh::SaveSnapshot(Fs* fs, const std::string& path,
                                uint64_t generation) const {
  if (base_n_ > 0 && !signatures_.empty()) {
    return Status::FailedPrecondition(
        "MinHashLsh: cannot snapshot a two-segment index; compact first");
  }

  // Live entries sorted by id.
  std::vector<std::pair<std::string, const uint64_t*>> live;
  if (base_n_ > 0) {
    for (size_t i = 0; i < base_n_; ++i) {
      if (BaseDead(i)) continue;
      live.emplace_back(std::string(BaseId(i)),
                        bsigs_ + i * bands_ * rows_);
    }
  } else {
    live.reserve(signatures_.size());
    for (const auto& [id, sig] : signatures_) {
      live.emplace_back(id, sig.data());
    }
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  size_t n = live.size();

  std::vector<uint64_t> id_off(n + 1, 0);
  std::string id_bytes;
  std::vector<uint64_t> sigs;
  sigs.reserve(n * bands_ * rows_);
  for (size_t i = 0; i < n; ++i) {
    id_bytes += live[i].first;
    id_off[i + 1] = id_bytes.size();
    sigs.insert(sigs.end(), live[i].second,
                live[i].second + bands_ * rows_);
  }

  // Per band: (bucket hash, entry index) pairs sorted by hash then
  // index, flattened band-major.
  std::vector<uint64_t> band_key(bands_ * n, 0);
  std::vector<uint32_t> band_idx(bands_ * n, 0);
  std::vector<std::pair<uint64_t, uint32_t>> pairs(n);
  for (size_t b = 0; b < bands_; ++b) {
    for (size_t i = 0; i < n; ++i) {
      pairs[i] = {Fnv1a64(reinterpret_cast<const char*>(
                              sigs.data() + i * bands_ * rows_ + b * rows_),
                          rows_ * sizeof(uint64_t)),
                  static_cast<uint32_t>(i)};
    }
    std::sort(pairs.begin(), pairs.end());
    for (size_t i = 0; i < n; ++i) {
      band_key[b * n + i] = pairs[i].first;
      band_idx[b * n + i] = pairs[i].second;
    }
  }

  std::vector<uint64_t> meta = {n, bands_, rows_, 0};
  SnapshotWriter writer(SnapshotKind::kMinHashLsh, generation);
  writer.AddArray("meta", meta);
  writer.AddArray("id_off", id_off);
  writer.AddSection("id_bytes", id_bytes.data(), id_bytes.size());
  writer.AddArray("sigs", sigs);
  writer.AddArray("band_key", band_key);
  writer.AddArray("band_idx", band_idx);
  return writer.WriteTo(fs, path);
}

Status MinHashLsh::LoadSnapshot(Fs* fs, const std::string& path) {
  if (base_n_ > 0 || !signatures_.empty()) {
    return Status::FailedPrecondition(
        "MinHashLsh: LoadSnapshot requires an empty index");
  }
  MLAKE_ASSIGN_OR_RETURN(
      SnapshotReader snap,
      SnapshotReader::Open(fs, path, SnapshotKind::kMinHashLsh));
  MLAKE_ASSIGN_OR_RETURN(auto meta, snap.Array<uint64_t>("meta"));
  if (meta.second != 4) {
    return Status::Corruption("lsh snapshot meta malformed: " + path);
  }
  uint64_t n = meta.first[0];
  if (meta.first[1] != bands_ || meta.first[2] != rows_) {
    return Status::FailedPrecondition("lsh snapshot banding mismatch: " +
                                      path);
  }
  MLAKE_ASSIGN_OR_RETURN(auto id_off, snap.Array<uint64_t>("id_off"));
  MLAKE_ASSIGN_OR_RETURN(auto id_bytes, snap.Section("id_bytes"));
  MLAKE_ASSIGN_OR_RETURN(auto sigs, snap.Array<uint64_t>("sigs"));
  MLAKE_ASSIGN_OR_RETURN(auto band_key, snap.Array<uint64_t>("band_key"));
  MLAKE_ASSIGN_OR_RETURN(auto band_idx, snap.Array<uint32_t>("band_idx"));
  if (id_off.second != n + 1 || sigs.second != n * bands_ * rows_ ||
      band_key.second != bands_ * n || band_idx.second != bands_ * n) {
    return Status::Corruption("lsh snapshot sections malformed: " + path);
  }
  if (!OffsetsWellFormed(id_off.first, n + 1, id_bytes.size())) {
    return Status::Corruption("lsh snapshot offsets malformed: " + path);
  }

  base_snap_ = std::move(snap);
  base_generation_ = base_snap_.generation();
  base_n_ = static_cast<size_t>(n);
  bid_off_ = id_off.first;
  bid_bytes_ = id_bytes.data();
  bsigs_ = sigs.first;
  bband_key_ = band_key.first;
  bband_idx_ = band_idx.first;
  base_dead_.clear();
  base_dead_count_ = 0;
  return Status::OK();
}

}  // namespace mlake::index
