#ifndef MLAKE_INDEX_MINHASH_LSH_H_
#define MLAKE_INDEX_MINHASH_LSH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/fs.h"
#include "common/result.h"
#include "index/snapshot.h"

namespace mlake::index {

/// A MinHash signature of a string set.
using MinHashSignature = std::vector<uint64_t>;

/// Computes a MinHash signature with `num_hashes` permutations
/// (tabulation via seeded FNV remixing). Jaccard similarity between two
/// sets is estimated by signature agreement.
MinHashSignature ComputeMinHash(const std::vector<std::string>& items,
                                size_t num_hashes, uint64_t seed = 0x517cc1);

/// Unbiased Jaccard estimate from two signatures of equal length.
double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b);

/// MinHash-LSH index over string sets, the classic data-lake machinery
/// (LSH Ensemble [165]) repurposed for *training-data overlap search*:
/// "find models trained on (a version of) this dataset" when sets of
/// training shard ids are available but exact names are not.
///
/// Two-segment layout like the other lake indexes: a frozen base
/// segment served zero-copy from an mmap-backed snapshot (sorted band
/// buckets, binary-searched) plus an in-memory delta for recent adds;
/// `Remove` tombstones in either segment.
class MinHashLsh {
 public:
  /// `bands` x `rows` must equal the signature length. More bands =>
  /// higher recall at lower precision.
  MinHashLsh(size_t bands, size_t rows);

  MinHashLsh(MinHashLsh&&) = default;
  MinHashLsh& operator=(MinHashLsh&&) = default;

  Status Add(const std::string& id, const MinHashSignature& signature);

  /// Tombstones an entry in either segment (no-op if absent or already
  /// removed).
  void Remove(const std::string& id);

  /// Candidate ids sharing at least one band bucket with the query.
  std::vector<std::string> QueryCandidates(
      const MinHashSignature& signature) const;

  /// Candidates filtered and ranked by estimated Jaccard >= threshold.
  struct OverlapHit {
    std::string id;
    double jaccard;
  };
  std::vector<OverlapHit> Query(const MinHashSignature& signature,
                                double threshold) const;

  /// Live entries across both segments.
  size_t Size() const {
    return signatures_.size() + base_n_ - base_dead_count_;
  }
  /// Raw per-segment counts (stats surface).
  size_t BaseSize() const { return base_n_; }
  size_t DeltaSize() const { return signatures_.size(); }
  size_t Tombstones() const { return base_dead_count_; }
  uint64_t snapshot_generation() const { return base_generation_; }

  /// Writes a generation-`generation` snapshot via WriteFileAtomic.
  /// Only a single-segment index can be saved (all delta or all base);
  /// tombstoned entries are dropped.
  Status SaveSnapshot(Fs* fs, const std::string& path,
                      uint64_t generation) const;

  /// Points the base segment at a snapshot: mmap + header validation,
  /// no deserialization. The index must be empty; banding must match.
  Status LoadSnapshot(Fs* fs, const std::string& path);

 private:
  /// Index of `id` in the base segment's sorted id table, or -1.
  int64_t BaseIndex(std::string_view id) const;
  std::string_view BaseId(size_t i) const;
  bool BaseDead(size_t i) const {
    return !base_dead_.empty() && base_dead_[i] != 0;
  }
  uint64_t BandBucket(const MinHashSignature& signature, size_t band) const;

  size_t bands_;
  size_t rows_;

  // ---- delta segment (in-memory, mutable) ----
  std::unordered_map<std::string, MinHashSignature> signatures_;
  // Per band: bucket-hash -> ids.
  std::vector<std::unordered_map<uint64_t, std::vector<std::string>>>
      buckets_;

  // ---- base segment (frozen, mmap-backed) ----
  SnapshotReader base_snap_;
  uint64_t base_generation_ = 0;
  size_t base_n_ = 0;
  const uint64_t* bid_off_ = nullptr;   // base_n_+1 into bid_bytes_
  const char* bid_bytes_ = nullptr;     // sorted ids
  const uint64_t* bsigs_ = nullptr;     // base_n_ * bands * rows
  const uint64_t* bband_key_ = nullptr; // bands*n bucket hashes, sorted/band
  const uint32_t* bband_idx_ = nullptr; // parallel entry indices
  std::vector<uint8_t> base_dead_;      // base tombstones (runtime)
  size_t base_dead_count_ = 0;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_MINHASH_LSH_H_
