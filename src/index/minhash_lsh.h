#ifndef MLAKE_INDEX_MINHASH_LSH_H_
#define MLAKE_INDEX_MINHASH_LSH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mlake::index {

/// A MinHash signature of a string set.
using MinHashSignature = std::vector<uint64_t>;

/// Computes a MinHash signature with `num_hashes` permutations
/// (tabulation via seeded FNV remixing). Jaccard similarity between two
/// sets is estimated by signature agreement.
MinHashSignature ComputeMinHash(const std::vector<std::string>& items,
                                size_t num_hashes, uint64_t seed = 0x517cc1);

/// Unbiased Jaccard estimate from two signatures of equal length.
double EstimateJaccard(const MinHashSignature& a, const MinHashSignature& b);

/// MinHash-LSH index over string sets, the classic data-lake machinery
/// (LSH Ensemble [165]) repurposed for *training-data overlap search*:
/// "find models trained on (a version of) this dataset" when sets of
/// training shard ids are available but exact names are not.
class MinHashLsh {
 public:
  /// `bands` x `rows` must equal the signature length. More bands =>
  /// higher recall at lower precision.
  MinHashLsh(size_t bands, size_t rows);

  Status Add(const std::string& id, const MinHashSignature& signature);

  /// Candidate ids sharing at least one band bucket with the query.
  std::vector<std::string> QueryCandidates(
      const MinHashSignature& signature) const;

  /// Candidates filtered and ranked by estimated Jaccard >= threshold.
  struct OverlapHit {
    std::string id;
    double jaccard;
  };
  std::vector<OverlapHit> Query(const MinHashSignature& signature,
                                double threshold) const;

  size_t Size() const { return signatures_.size(); }

 private:
  size_t bands_;
  size_t rows_;
  std::unordered_map<std::string, MinHashSignature> signatures_;
  // Per band: bucket-hash -> ids.
  std::vector<std::unordered_map<uint64_t, std::vector<std::string>>>
      buckets_;
};

}  // namespace mlake::index

#endif  // MLAKE_INDEX_MINHASH_LSH_H_
