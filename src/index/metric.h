#ifndef MLAKE_INDEX_METRIC_H_
#define MLAKE_INDEX_METRIC_H_

#include <cstdint>

#include "common/kernels.h"
#include "index/vector_index.h"

namespace mlake::index {

/// The one shared metric implementation, backed by the dispatched
/// kernel layer. Both vector indices (brute-force and HNSW) used to
/// carry their own copy of this switch, which could silently drift;
/// this header is now the single source of truth.
inline float Distance(Metric metric, const float* a, const float* b,
                      int64_t dim) {
  switch (metric) {
    case Metric::kL2:
      return kernels::L2Sq(a, b, dim);
    case Metric::kCosine:
      return kernels::CosineDistance(a, b, dim);
  }
  return 0.0f;
}

}  // namespace mlake::index

#endif  // MLAKE_INDEX_METRIC_H_
