#ifndef MLAKE_CLUSTER_CLUSTER_H_
#define MLAKE_CLUSTER_CLUSTER_H_

// In-process cluster harness: N shard lakes, each served by one or
// more LakeServers (replicas of a shard share ONE ModelLake object, so
// they are perfect replicas by construction), fronted by a Router —
// all inside the current process. This is how tier-1 tests and the
// bench exercise the scatter-gather path hermetically: real sockets on
// 127.0.0.1, no external processes, no fixture files.

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/router.h"
#include "common/result.h"
#include "core/model_lake.h"
#include "metadata/model_card.h"
#include "server/server.h"

namespace mlake::cluster {

struct InProcessClusterOptions {
  size_t shards = 2;
  /// Servers per shard. Replicas share the shard's lake object — the
  /// hedging tests slow one replica down via its delay seam while its
  /// twin answers from the same data.
  size_t replicas_per_shard = 1;
  /// Template for every shard lake; `root` is replaced with a
  /// per-shard subdirectory of Create()'s base_dir.
  core::LakeOptions lake_options;
  /// Template for every backend server; port (ephemeral) and the
  /// shard_id / cluster_size / delay-seam fields are overwritten.
  server::ServerOptions server_options;
  /// Template for the router; backends and cluster_size are
  /// overwritten.
  RouterOptions router_options;
};

class InProcessCluster {
 public:
  /// Builds and starts the whole cluster under `base_dir`
  /// (base_dir/shard_0, base_dir/shard_1, ...).
  static Result<std::unique_ptr<InProcessCluster>> Create(
      const std::string& base_dir, InProcessClusterOptions options);

  ~InProcessCluster();

  InProcessCluster(const InProcessCluster&) = delete;
  InProcessCluster& operator=(const InProcessCluster&) = delete;

  /// Stops the router first (so no scatter hits a dying backend), then
  /// every backend. Idempotent.
  Status Stop();

  size_t shards() const { return options_.shards; }
  size_t replicas_per_shard() const { return options_.replicas_per_shard; }

  core::ModelLake* lake(size_t shard) { return lakes_[shard].get(); }
  server::LakeServer* server(size_t shard, size_t replica = 0) {
    return servers_[shard * options_.replicas_per_shard + replica].get();
  }
  Router* router() { return router_.get(); }
  int router_port() const { return router_->port(); }

  /// The delay seam of one backend: microseconds of idle (non-CPU)
  /// wait injected into each of its search requests. Retunable while
  /// the server runs — how the tests make one replica "slow".
  std::atomic<int64_t>* search_delay_us(size_t shard, size_t replica = 0) {
    return delays_[shard * options_.replicas_per_shard + replica].get();
  }

  /// The shard these artifact bytes route to — identical arithmetic to
  /// the router's ingest routing and the backend's misroute guard.
  uint64_t OwnerShard(std::string_view artifact_bytes) const;

  /// Ingests a serialized artifact directly into its owning shard's
  /// lake (no HTTP), mirroring what a routed POST /v1/ingest would do.
  /// Returns the ingested model id.
  Result<std::string> IngestArtifact(const std::string& artifact_bytes,
                                     const metadata::ModelCard& card);

 private:
  explicit InProcessCluster(InProcessClusterOptions options)
      : options_(std::move(options)) {}

  InProcessClusterOptions options_;
  std::vector<std::unique_ptr<core::ModelLake>> lakes_;
  // servers_[shard * replicas_per_shard + replica]
  std::vector<std::unique_ptr<server::LakeServer>> servers_;
  std::vector<std::shared_ptr<std::atomic<int64_t>>> delays_;
  std::unique_ptr<Router> router_;
  bool stopped_ = false;
};

}  // namespace mlake::cluster

#endif  // MLAKE_CLUSTER_CLUSTER_H_
