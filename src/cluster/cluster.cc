#include "cluster/cluster.h"

#include "common/hash.h"
#include "common/sharding.h"
#include "storage/model_artifact.h"

namespace mlake::cluster {

Result<std::unique_ptr<InProcessCluster>> InProcessCluster::Create(
    const std::string& base_dir, InProcessClusterOptions options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  if (options.replicas_per_shard == 0) options.replicas_per_shard = 1;

  auto cluster =
      std::unique_ptr<InProcessCluster>(new InProcessCluster(options));
  std::vector<BackendSpec> backends;
  for (size_t shard = 0; shard < options.shards; ++shard) {
    core::LakeOptions lake_options = options.lake_options;
    lake_options.root = base_dir + "/shard_" + std::to_string(shard);
    MLAKE_ASSIGN_OR_RETURN(auto lake, core::ModelLake::Open(lake_options));
    cluster->lakes_.push_back(std::move(lake));

    for (size_t replica = 0; replica < options.replicas_per_shard; ++replica) {
      server::ServerOptions server_options = options.server_options;
      server_options.port = 0;  // ephemeral
      server_options.shard_id = static_cast<int>(shard);
      server_options.cluster_size = static_cast<int>(options.shards);
      auto delay = std::make_shared<std::atomic<int64_t>>(0);
      server_options.test_search_delay_us = delay;
      cluster->delays_.push_back(std::move(delay));
      auto server = std::make_unique<server::LakeServer>(
          cluster->lakes_.back().get(), server_options);
      MLAKE_RETURN_NOT_OK(server->Start());
      BackendSpec spec;
      spec.host = "127.0.0.1";
      spec.port = server->port();
      spec.shard_id = static_cast<int>(shard);
      backends.push_back(spec);
      cluster->servers_.push_back(std::move(server));
    }
  }

  RouterOptions router_options = options.router_options;
  router_options.backends = std::move(backends);
  router_options.cluster_size = static_cast<int>(options.shards);
  cluster->router_ = std::make_unique<Router>(router_options);
  MLAKE_RETURN_NOT_OK(cluster->router_->Start());
  return cluster;
}

InProcessCluster::~InProcessCluster() { (void)Stop(); }

Status InProcessCluster::Stop() {
  if (stopped_) return Status::OK();
  stopped_ = true;
  Status first = Status::OK();
  if (router_ != nullptr) {
    Status st = router_->Stop();
    if (first.ok()) first = st;
  }
  for (auto& server : servers_) {
    Status st = server->Stop();
    if (first.ok()) first = st;
  }
  return first;
}

uint64_t InProcessCluster::OwnerShard(std::string_view artifact_bytes) const {
  return ShardSlotForDigest(Sha256::HexDigest(artifact_bytes),
                            static_cast<uint64_t>(options_.shards));
}

Result<std::string> InProcessCluster::IngestArtifact(
    const std::string& artifact_bytes, const metadata::ModelCard& card) {
  MLAKE_ASSIGN_OR_RETURN(storage::ModelArtifact artifact,
                         storage::ParseArtifact(artifact_bytes));
  MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                         storage::ModelFromArtifact(artifact));
  uint64_t owner = OwnerShard(artifact_bytes);
  return lakes_[owner]->IngestModel(*model, card);
}

}  // namespace mlake::cluster
