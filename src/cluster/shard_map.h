#ifndef MLAKE_CLUSTER_SHARD_MAP_H_
#define MLAKE_CLUSTER_SHARD_MAP_H_

// The router's versioned view of which backend serves which shard.
//
// A cluster has `cluster_size` *slots* (shard ids); each slot is served
// by one or more *backends* (replicas — identical servers over the same
// shard's documents). The ShardMap orders each slot's replicas best
// first; the router sends a request to replicas[slot][0] and hedges or
// fails over down the list. Maps are immutable: the epoch ticker builds
// a new one from heartbeat state and publishes it via shared_ptr swap,
// so every in-flight request drains against the epoch it started with
// while new requests pick up the rebalanced order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/sharding.h"

namespace mlake::cluster {

/// One backend server of the cluster (static address + shard it
/// serves). Backends sharing a shard_id are replicas of that shard.
struct BackendSpec {
  std::string host;
  int port = 0;
  int shard_id = 0;
};

/// Parses "host:port" or "host:port@shard". With no explicit @shard the
/// caller assigns one (the CLI uses position modulo cluster size).
Result<BackendSpec> ParseBackendSpec(const std::string& spec);

/// Immutable slot → ordered replica assignment (see file comment).
struct ShardMap {
  uint64_t epoch = 0;
  /// replicas[slot] = backend indices (into the router's backend list),
  /// best first. Unhealthy replicas sort last but are never dropped —
  /// a leg with nothing better may still try them. Read replicas rank
  /// *before* the leader among equally-healthy backends so reads land
  /// on replicas and survive a leader loss.
  std::vector<std::vector<int>> replicas;
  /// writers[slot] = the subset of replicas[slot] that accepts ingest
  /// (heartbeat role != "replica"), same order. Empty when the slot's
  /// leader is down and nothing has been promoted yet.
  std::vector<std::vector<int>> writers;

  size_t cluster_size() const { return replicas.size(); }

  Json ToJson() const;
};

/// The per-backend signals the epoch ticker ranks replicas by
/// (collected from heartbeats; defaults describe a never-seen backend).
struct BackendHealth {
  bool healthy = false;
  bool draining = false;
  /// Heartbeat role == "replica": serves reads, rejects ingest.
  bool is_replica = false;
  int64_t inflight = 0;
  int64_t p95_us = 0;
};

/// Builds a map for `cluster_size` slots from backend specs + health:
/// each slot's replicas ordered by (healthy desc, draining asc,
/// inflight asc, p95 asc, index asc). The index tiebreak makes the
/// order deterministic, so the ticker can compare maps structurally
/// and only bump the epoch when the assignment actually changed.
ShardMap BuildShardMap(const std::vector<BackendSpec>& backends,
                       const std::vector<BackendHealth>& health,
                       size_t cluster_size, uint64_t epoch);

}  // namespace mlake::cluster

#endif  // MLAKE_CLUSTER_SHARD_MAP_H_
