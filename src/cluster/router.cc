#include "cluster/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/hash.h"
#include "common/sharding.h"
#include "common/string_util.h"
#include "search/executor.h"
#include "search/parser.h"

namespace mlake::cluster {

namespace {

using server::ErrorResponse;
using server::HttpRequest;
using server::HttpResponse;
using server::JsonResponse;

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

uint64_t ElapsedUs(Clock::time_point since) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - since)
                .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

/// Milliseconds left until `deadline` (0 when already past).
int64_t RemainingMs(Clock::time_point deadline) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  Clock::now())
                .count();
  return ms < 0 ? 0 : ms;
}

bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Reconstructs a Status from a backend error response so the router
/// can re-emit it through ErrorResponse with the same code family.
Status StatusFromResponse(const HttpResponse& response) {
  std::string message =
      "backend answered HTTP " + std::to_string(response.status);
  std::string code;
  if (auto parsed = Json::Parse(response.body);
      parsed.ok() && parsed.ValueUnsafe().is_object()) {
    const Json* err = parsed.ValueUnsafe().Find("error");
    if (err != nullptr && err->is_object()) {
      code = err->GetString("code");
      message = err->GetString("message", message);
    }
  }
  if (code == "NotFound") return Status::NotFound(message);
  if (code == "InvalidArgument") return Status::InvalidArgument(message);
  if (code == "AlreadyExists") return Status::AlreadyExists(message);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(message);
  if (code == "OutOfRange") return Status::OutOfRange(message);
  if (code == "Unimplemented") return Status::Unimplemented(message);
  if (code == "ResourceExhausted") return Status::ResourceExhausted(message);
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(message);
  if (code == "Unavailable") return Status::Unavailable(message);
  return Status::Internal(message);
}

/// All legs answered 200? Otherwise `*relay` is the first non-200
/// backend response, re-emitted verbatim — the backend's error body is
/// exactly what a single-lake server would have said.
bool AllOk(const std::vector<HttpResponse>& legs, HttpResponse* relay) {
  for (const HttpResponse& leg : legs) {
    if (leg.status != 200) {
      *relay = leg;
      return false;
    }
  }
  return true;
}

Result<Json> ParseJsonBody(const HttpResponse& response) {
  auto parsed = Json::Parse(response.body);
  if (!parsed.ok()) {
    return Status::Internal("malformed backend response: " +
                            parsed.status().message());
  }
  if (!parsed.ValueUnsafe().is_object()) {
    return Status::Internal("backend response is not an object");
  }
  return parsed;
}

Json FloatVecToJson(const std::vector<float>& vec) {
  Json arr = Json::MakeArray();
  for (float f : vec) arr.Append(Json(static_cast<double>(f)));
  return arr;
}

/// One merged search hit. Scores travel the wire as %.17g doubles
/// (exact double round trip), so sorting parsed legs with the
/// executor's comparator reproduces the single-lake order bit for bit.
struct MergedHit {
  double score = 0.0;
  std::string id;
};

bool ScoreDescIdAsc(const MergedHit& a, const MergedHit& b) {
  return a.score > b.score || (a.score == b.score && a.id < b.id);
}

/// Collects every leg's "models" entries into one list.
Result<std::vector<MergedHit>> CollectHits(
    const std::vector<HttpResponse>& legs) {
  std::vector<MergedHit> hits;
  for (const HttpResponse& leg : legs) {
    MLAKE_ASSIGN_OR_RETURN(Json body, ParseJsonBody(leg));
    const Json* models = body.Find("models");
    if (models == nullptr || !models->is_array()) {
      return Status::Internal("backend search response has no models array");
    }
    for (const Json& m : models->AsArray()) {
      if (!m.is_object()) continue;
      hits.push_back(MergedHit{m.GetDouble("score"), m.GetString("id")});
    }
  }
  return hits;
}

/// Merges per-shard top-k lists: same comparator as the executor's
/// final sort, truncated to k. Shards hold disjoint models, so no
/// dedup is needed and each document's score is its exact global one.
Result<Json> MergeModels(const std::vector<HttpResponse>& legs, size_t k) {
  MLAKE_ASSIGN_OR_RETURN(std::vector<MergedHit> hits, CollectHits(legs));
  std::sort(hits.begin(), hits.end(), ScoreDescIdAsc);
  if (hits.size() > k) hits.resize(k);
  Json arr = Json::MakeArray();
  for (const MergedHit& h : hits) {
    Json j = Json::MakeObject();
    j.Set("id", h.id);
    j.Set("score", h.score);
    arr.Append(std::move(j));
  }
  return arr;
}

/// The server caps k at 10000, so that is the deepest global keyword
/// ranking one scatter can assemble (documented limitation: hybrid RRF
/// ranks are exact while every shard has <= 10000 scoring documents).
constexpr int64_t kMaxServerK = 10000;

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      pool_(options_.max_idle_per_endpoint == 0 ? 1
                                                : options_.max_idle_per_endpoint) {
  if (options_.threads <= 0) options_.threads = 8;
  if (options_.fanout_threads <= 0) {
    options_.fanout_threads =
        std::max<int>(8, 2 * static_cast<int>(options_.backends.size()));
  }
  if (options_.heartbeat_interval_ms <= 0) options_.heartbeat_interval_ms = 500;
  if (options_.heartbeat_timeout_ms <= 0) options_.heartbeat_timeout_ms = 250;
  if (options_.heartbeat_misses_down <= 0) options_.heartbeat_misses_down = 1;
  if (options_.hedge_min_delay_ms < 0) options_.hedge_min_delay_ms = 0;
  for (size_t i = 0; i < options_.backends.size(); ++i) {
    backends_.push_back(std::make_unique<BackendState>());
  }
}

Router::~Router() { (void)Stop(); }

std::shared_ptr<const ShardMap> Router::CurrentMap() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return map_;
}

Status Router::Start() {
  if (started_.load()) return Status::FailedPrecondition("already started");
  if (options_.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  int max_shard = 0;
  for (const BackendSpec& b : options_.backends) {
    if (b.shard_id < 0) {
      return Status::InvalidArgument("backend " + b.host + ":" +
                                     std::to_string(b.port) +
                                     " has no shard assignment");
    }
    max_shard = std::max(max_shard, b.shard_id);
  }
  cluster_size_ = options_.cluster_size > 0
                      ? static_cast<size_t>(options_.cluster_size)
                      : static_cast<size_t>(max_shard) + 1;
  std::vector<int> per_slot(cluster_size_, 0);
  for (const BackendSpec& b : options_.backends) {
    if (static_cast<size_t>(b.shard_id) < cluster_size_) {
      per_slot[static_cast<size_t>(b.shard_id)]++;
    }
  }
  for (size_t slot = 0; slot < cluster_size_; ++slot) {
    if (per_slot[slot] == 0) {
      return Status::InvalidArgument("shard " + std::to_string(slot) +
                                     " has no backend");
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  draining_.store(false);
  start_time_ = Clock::now();
  worker_pool_ = std::make_unique<ThreadPool>(options_.threads);
  fanout_pool_ = std::make_unique<ThreadPool>(options_.fanout_threads);

  // Synchronous first poll: Start() returns with a live map, so a
  // request racing the first heartbeat tick never sees unknown health.
  PollBackendsOnce();
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    PublishMapLocked();
  }

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
  started_.store(true);
  return Status::OK();
}

Status Router::Stop() {
  if (!started_.load()) return Status::OK();
  draining_.store(true);

  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_cv_.notify_all();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();

  auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    drain_cv_.wait_until(lock, deadline,
                         [this] { return active_conns_.load() == 0; });
  }
  if (active_conns_.load() != 0) ForceCloseConnections();
  worker_pool_.reset();
  fanout_pool_.reset();
  started_.store(false);
  return Status::OK();
}

void Router::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (draining_.load()) {
      ::close(fd);
      return;
    }
    SetNoDelay(fd);
    RegisterConnection(fd);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    worker_pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Router::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  open_conns_.insert(fd);
}

void Router::UnregisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  open_conns_.erase(fd);
}

void Router::ForceCloseConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (int fd : open_conns_) ::shutdown(fd, SHUT_RDWR);
}

void Router::HandleConnection(int fd) {
  std::string buf;
  int served = 0;
  auto entered = Clock::now();
  for (;;) {
    // ---- read one request (keep-alive loop) ----
    HttpRequest request;
    bool have_request = false;
    bool malformed = false;
    Status parse_error;
    for (;;) {
      if (!buf.empty()) {
        auto parsed =
            server::ParseHttpRequest(buf, options_.max_body_bytes, &request);
        if (!parsed.ok()) {
          parse_error = parsed.status();
          malformed = true;
          break;
        }
        size_t consumed = parsed.ValueUnsafe();
        if (consumed > 0) {
          buf.erase(0, consumed);
          have_request = true;
          break;
        }
      }
      if (draining_.load() && buf.empty()) break;
      pollfd pfd{fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno != EINTR) break;
      if (ready == 0) {
        if (ElapsedMs(entered) >=
            static_cast<int64_t>(options_.keep_alive_timeout_ms)) {
          break;
        }
        continue;
      }
      char chunk[16384];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        break;
      }
      buf.append(chunk, static_cast<size_t>(n));
    }
    if (malformed) {
      HttpResponse response = ErrorResponse(parse_error);
      WriteAll(fd, server::SerializeHttpResponse(response, false));
      metrics_.Record("(malformed)", response.status, 0);
      break;
    }
    if (!have_request) break;

    auto arrival = Clock::now();
    entered = arrival;  // keep-alive idle clock restarts per request
    ++served;
    std::string endpoint;
    HttpResponse response = Dispatch(request, arrival, &endpoint);
    bool keep_alive = request.KeepAlive() && !draining_.load() &&
                      (options_.max_requests_per_connection <= 0 ||
                       served < options_.max_requests_per_connection);
    bool wrote =
        WriteAll(fd, server::SerializeHttpResponse(response, keep_alive));
    metrics_.Record(endpoint, response.status, ElapsedUs(arrival));
    if (!wrote || !keep_alive) break;
  }

  UnregisterConnection(fd);
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    drain_cv_.notify_all();
  }
}

HttpResponse Router::Dispatch(const HttpRequest& request,
                              Clock::time_point arrival,
                              std::string* endpoint_label) {
  const std::string& path = request.path;

  // ---- deadline (same header contract as the backends) ----
  int64_t deadline_ms = options_.default_deadline_ms;
  std::string_view header = request.Header("x-mlake-deadline-ms");
  if (!header.empty()) {
    char* end = nullptr;
    long v = std::strtol(std::string(header).c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0) {
      *endpoint_label = "(malformed)";
      return ErrorResponse(
          Status::InvalidArgument("malformed X-Mlake-Deadline-Ms header"));
    }
    deadline_ms = v;
  }
  auto deadline = arrival + std::chrono::milliseconds(deadline_ms);

  HttpResponse response;
  if (request.method == "GET" && path == "/healthz") {
    *endpoint_label = "GET /healthz";
    return HandleHealthz();
  } else if (request.method == "GET" && path == "/statsz") {
    *endpoint_label = "GET /statsz";
    return HandleStatsz();
  } else if (request.method == "GET" && path == "/v1/models") {
    *endpoint_label = "GET /v1/models";
    response = HandleModelList(deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/") &&
             EndsWith(path, "/citation")) {
    // Governance reads: broadcast like any owner-answers read. The
    // shard map ranks caught-up replicas ahead of their leader, and a
    // stale replica's 503 is retryable — the leg fails over to the
    // leader — so these prefer replicas without risking stale answers.
    *endpoint_label = "GET /v1/models/{id}/citation";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/") &&
             EndsWith(path, "/doc")) {
    *endpoint_label = "GET /v1/models/{id}/doc";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/")) {
    *endpoint_label = "GET /v1/models/{id}";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/audit/")) {
    *endpoint_label = "GET /v1/audit/{id}";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "GET" && path == "/v1/export") {
    *endpoint_label = "GET /v1/export";
    response = HandleExport(deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/lineage/")) {
    *endpoint_label = "GET /v1/lineage/{id}";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "GET" && StartsWith(path, "/v1/embedding/")) {
    *endpoint_label = "GET /v1/embedding/{id}";
    response = HandleBroadcastGet(path, deadline);
  } else if (request.method == "POST" && path == "/v1/search") {
    *endpoint_label = "POST /v1/search";
    response = HandleSearch(request, endpoint_label, deadline);
  } else if (request.method == "POST" && path == "/v1/ingest") {
    *endpoint_label = "POST /v1/ingest";
    response = HandleIngest(request, deadline);
  } else {
    *endpoint_label = "(unmatched)";
    return ErrorResponse(
        Status::NotFound(request.method + " " + path + " has no handler"));
  }

  // A late answer is a missed deadline, like on the backends.
  if (response.status < 400 && Clock::now() >= deadline) {
    return ErrorResponse(Status::DeadlineExceeded(
        "deadline of " + std::to_string(deadline_ms) +
        " ms expired during scatter"));
  }
  return response;
}

// ---------------------------------------------------------------------------
// Heartbeats and the versioned shard map
// ---------------------------------------------------------------------------

void Router::HeartbeatLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.heartbeat_interval_ms),
                      [this] { return draining_.load(); });
    }
    if (draining_.load()) return;
    TickNow();
  }
}

void Router::TickNow() {
  PollBackendsOnce();
  std::lock_guard<std::mutex> lock(map_mu_);
  PublishMapLocked();
}

void Router::PollBackendsOnce() {
  for (size_t i = 0; i < options_.backends.size(); ++i) {
    const BackendSpec& spec = options_.backends[i];
    BackendState& state = *backends_[i];
    auto lease = pool_.Acquire(spec.host, spec.port);
    auto result =
        lease->Get("/v1/heartbeat", {}, options_.heartbeat_timeout_ms);
    if (!result.ok() || result.ValueUnsafe().status != 200) {
      if (!result.ok()) lease.Discard();
      int misses = state.misses.fetch_add(1, std::memory_order_relaxed) + 1;
      if (misses >= options_.heartbeat_misses_down) {
        state.healthy.store(false, std::memory_order_relaxed);
      }
      continue;
    }
    auto body = Json::Parse(result.ValueUnsafe().body);
    if (!body.ok() || !body.ValueUnsafe().is_object()) continue;
    const Json& hb = body.ValueUnsafe();
    state.misses.store(0, std::memory_order_relaxed);
    state.healthy.store(true, std::memory_order_relaxed);
    state.draining.store(hb.GetBool("draining"), std::memory_order_relaxed);
    state.inflight.store(hb.GetInt64("inflight"), std::memory_order_relaxed);
    state.models.store(hb.GetInt64("models"), std::memory_order_relaxed);
    state.index_generation.store(hb.GetInt64("index_generation"),
                                 std::memory_order_relaxed);
    state.p95_us.store(static_cast<int64_t>(hb.GetDouble("search_p95_us")),
                       std::memory_order_relaxed);
    state.is_replica.store(hb.GetString("role") == "replica",
                           std::memory_order_relaxed);
    state.applied_seq.store(
        static_cast<uint64_t>(hb.GetInt64("applied_seq")),
        std::memory_order_relaxed);
    state.replication_epoch.store(
        static_cast<uint64_t>(hb.GetInt64("replication_epoch")),
        std::memory_order_relaxed);
    state.heartbeats_ok.fetch_add(1, std::memory_order_relaxed);
  }
}

void Router::PublishMapLocked() {
  std::vector<BackendHealth> health(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& s = *backends_[i];
    health[i].healthy = s.healthy.load(std::memory_order_relaxed);
    health[i].draining = s.draining.load(std::memory_order_relaxed);
    health[i].is_replica = s.is_replica.load(std::memory_order_relaxed);
    health[i].inflight = s.inflight.load(std::memory_order_relaxed);
    health[i].p95_us = s.p95_us.load(std::memory_order_relaxed);
  }
  ShardMap next =
      BuildShardMap(options_.backends, health, cluster_size_, epoch_ + 1);
  // Epoch bumps only on a real assignment change: the deterministic
  // replica ordering makes the comparison structural, so a quiet
  // cluster keeps one epoch and in-flight drains are the exception,
  // not the rule. A role flip (promote) changes the writer lists even
  // when the read order holds, so both are compared.
  if (map_ != nullptr && next.replicas == map_->replicas &&
      next.writers == map_->writers) {
    return;
  }
  epoch_ += 1;
  next.epoch = epoch_;
  map_ = std::make_shared<const ShardMap>(std::move(next));
}

// ---------------------------------------------------------------------------
// Scatter-gather with hedged retries
// ---------------------------------------------------------------------------

void Router::LaunchAttempt(const std::shared_ptr<LegCall>& call, int backend,
                           int attempt_index, const std::string& method,
                           const std::string& path, const std::string& body,
                           int timeout_ms, int64_t deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(call->mu);
    call->launched++;
    call->outstanding++;
  }
  const BackendSpec& spec = options_.backends[static_cast<size_t>(backend)];
  std::string host = spec.host;
  int port = spec.port;
  fanout_pool_->Submit([this, call, host, port, attempt_index, method, path,
                        body, timeout_ms, deadline_ms] {
    std::vector<std::pair<std::string, std::string>> headers;
    if (deadline_ms > 0) {
      headers.emplace_back("X-Mlake-Deadline-Ms", std::to_string(deadline_ms));
    }
    auto lease = pool_.Acquire(host, port);
    // Scatter legs are read-only (/v1/search families), so the POSTs are
    // idempotent and may ride the client's keep-alive-race retry.
    Result<HttpResponse> result =
        method == "GET" ? lease->Get(path, headers, timeout_ms)
                        : lease->Post(path, body, headers, timeout_ms,
                                      /*idempotent=*/true);
    // 503 (draining / shutting down) is retryable on a replica; any
    // other HTTP status is the backend's definitive answer.
    bool retryable =
        !result.ok() || result.ValueUnsafe().status == 503;
    if (!result.ok()) lease.Discard();
    std::lock_guard<std::mutex> lock(call->mu);
    call->outstanding--;
    if (!retryable) {
      if (!call->have_response) {
        call->have_response = true;
        call->response = result.MoveValueUnsafe();
        call->winner = attempt_index;
      }
    } else {
      call->error = result.ok()
                        ? Status::Unavailable("backend answered 503")
                        : result.status();
    }
    call->cv.notify_all();
  });
}

Result<std::vector<server::HttpResponse>> Router::ScatterAll(
    const std::string& method, const std::string& path,
    const std::string& body, Clock::time_point deadline) {
  std::vector<std::string> bodies(cluster_size_, body);
  return Scatter(method, path, bodies, deadline);
}

Result<std::vector<server::HttpResponse>> Router::Scatter(
    const std::string& method, const std::string& path,
    const std::vector<std::string>& bodies, Clock::time_point deadline) {
  std::shared_ptr<const ShardMap> map = CurrentMap();
  if (map == nullptr || map->cluster_size() != cluster_size_) {
    return Status::Unavailable("no shard map published yet");
  }
  if (RemainingMs(deadline) <= 0) {
    return Status::DeadlineExceeded("deadline expired before scatter");
  }

  // Per-leg runtime: the LegCall (shared with attempt tasks) plus the
  // monitor's bookkeeping (which replica fires next, hedge deadline).
  struct LegRun {
    std::vector<int> replicas;
    std::shared_ptr<LegCall> call = std::make_shared<LegCall>();
    Clock::time_point hedge_at;
    size_t next_replica = 1;
    bool hedged = false;
    int hedge_attempt = -1;
  };
  std::vector<LegRun> legs(cluster_size_);

  // Launch every slot's primary up front; the monitor below never holds
  // a fanout-pool slot itself, so attempts cannot starve behind waits.
  for (size_t slot = 0; slot < cluster_size_; ++slot) {
    LegRun& leg = legs[slot];
    leg.replicas = map->replicas[slot];
    if (leg.replicas.empty()) {
      return Status::Unavailable("shard " + std::to_string(slot) +
                                 " has no backend");
    }
    int primary = leg.replicas[0];
    int64_t remaining = std::max<int64_t>(1, RemainingMs(deadline));
    // Hedge when the primary exceeds a multiple of its own advertised
    // p95 (floor for cold backends with no history yet).
    int64_t p95_ms =
        backends_[static_cast<size_t>(primary)]->p95_us.load(
            std::memory_order_relaxed) /
        1000;
    int64_t hedge_ms = std::max<int64_t>(
        options_.hedge_min_delay_ms,
        static_cast<int64_t>(static_cast<double>(p95_ms) *
                             options_.hedge_p95_multiplier));
    bool can_hedge = options_.enable_hedging && leg.replicas.size() > 1;
    leg.hedge_at = can_hedge
                       ? std::min(deadline, Clock::now() + std::chrono::milliseconds(
                                                hedge_ms))
                       : deadline;
    // Transport timeout: the remaining budget plus slack, so a backend
    // that enforces the forwarded deadline answers 504 in-band instead
    // of dying as an opaque socket timeout.
    LaunchAttempt(leg.call, primary, 0, method, path, bodies[slot],
                  static_cast<int>(remaining + 50), remaining);
  }

  // Pass 1 — hedging: visit legs in hedge-deadline order. A leg whose
  // primary failed outright fails over immediately; one that is merely
  // slow gets a second attempt on the next replica.
  std::vector<size_t> order(cluster_size_);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return legs[a].hedge_at < legs[b].hedge_at;
  });
  for (size_t slot : order) {
    LegRun& leg = legs[slot];
    std::unique_lock<std::mutex> lock(leg.call->mu);
    while (!leg.call->have_response && Clock::now() < leg.hedge_at) {
      if (leg.call->outstanding == 0) {
        // Every launched attempt failed: fail over, don't wait.
        if (leg.next_replica >= leg.replicas.size() ||
            RemainingMs(deadline) <= 0) {
          break;
        }
        int backend = leg.replicas[leg.next_replica++];
        int attempt = leg.call->launched;
        failovers_.fetch_add(1, std::memory_order_relaxed);
        int64_t remaining = std::max<int64_t>(1, RemainingMs(deadline));
        lock.unlock();
        LaunchAttempt(leg.call, backend, attempt, method, path, bodies[slot],
                      static_cast<int>(remaining + 50), remaining);
        lock.lock();
        continue;
      }
      leg.call->cv.wait_until(lock, leg.hedge_at);
    }
    if (!leg.call->have_response && leg.call->outstanding > 0 &&
        options_.enable_hedging && !leg.hedged &&
        leg.next_replica < leg.replicas.size() && RemainingMs(deadline) > 0) {
      int backend = leg.replicas[leg.next_replica++];
      leg.hedged = true;
      leg.hedge_attempt = leg.call->launched;
      hedges_fired_.fetch_add(1, std::memory_order_relaxed);
      int64_t remaining = std::max<int64_t>(1, RemainingMs(deadline));
      lock.unlock();
      LaunchAttempt(leg.call, backend, leg.hedge_attempt, method, path,
                    bodies[slot], static_cast<int>(remaining + 50), remaining);
    }
  }

  // Pass 2 — completion: wait each leg out (keeping failover alive),
  // up to the request deadline. Abandoned attempts finish in the
  // background against their shared LegCall.
  std::vector<HttpResponse> out(cluster_size_);
  for (size_t slot = 0; slot < cluster_size_; ++slot) {
    LegRun& leg = legs[slot];
    std::unique_lock<std::mutex> lock(leg.call->mu);
    for (;;) {
      if (leg.call->have_response) break;
      if (leg.call->outstanding == 0) {
        if (leg.next_replica < leg.replicas.size() &&
            RemainingMs(deadline) > 0) {
          int backend = leg.replicas[leg.next_replica++];
          int attempt = leg.call->launched;
          failovers_.fetch_add(1, std::memory_order_relaxed);
          int64_t remaining = std::max<int64_t>(1, RemainingMs(deadline));
          lock.unlock();
          LaunchAttempt(leg.call, backend, attempt, method, path, bodies[slot],
                        static_cast<int>(remaining + 50), remaining);
          lock.lock();
          continue;
        }
        // Exhausted every replica: the whole scatter fails — a top-k
        // missing one shard's documents would be silently wrong.
        return leg.call->error;
      }
      if (Clock::now() >= deadline) {
        return Status::DeadlineExceeded("shard " + std::to_string(slot) +
                                        " did not answer before the deadline");
      }
      leg.call->cv.wait_until(lock, deadline);
    }
    if (leg.hedged && leg.call->winner == leg.hedge_attempt) {
      hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    }
    out[slot] = leg.call->response;
  }
  return out;
}

Result<server::HttpResponse> Router::BroadcastFirst(const std::string& path,
                                                    Clock::time_point deadline) {
  MLAKE_ASSIGN_OR_RETURN(std::vector<HttpResponse> legs,
                         ScatterAll("GET", path, "", deadline));
  for (HttpResponse& leg : legs) {
    if (leg.status / 100 == 2) return std::move(leg);
  }
  // Nobody owns it. Prefer a "real" error over the owner-miss 404s.
  for (HttpResponse& leg : legs) {
    if (leg.status != 404) return std::move(leg);
  }
  return std::move(legs[0]);
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

HttpResponse Router::HandleHealthz() const {
  Json body = Json::MakeObject();
  bool draining = draining_.load();
  body.Set("status", draining ? "draining" : "ok");
  std::shared_ptr<const ShardMap> map = CurrentMap();
  body.Set("epoch", static_cast<int64_t>(map != nullptr ? map->epoch : 0));
  body.Set("cluster_size", static_cast<int64_t>(cluster_size_));
  return JsonResponse(std::move(body), draining ? 503 : 200);
}

HttpResponse Router::HandleStatsz() const { return JsonResponse(StatszJson()); }

Json Router::StatszJson() const {
  Json out = Json::MakeObject();
  out.Set("cluster_size", static_cast<int64_t>(cluster_size_));
  std::shared_ptr<const ShardMap> map = CurrentMap();
  out.Set("epoch", static_cast<int64_t>(map != nullptr ? map->epoch : 0));
  if (map != nullptr) out.Set("shard_map", map->ToJson());

  Json backends = Json::MakeArray();
  for (size_t i = 0; i < options_.backends.size(); ++i) {
    const BackendSpec& spec = options_.backends[i];
    const BackendState& s = *backends_[i];
    Json b = Json::MakeObject();
    b.Set("host", spec.host);
    b.Set("port", spec.port);
    b.Set("shard_id", spec.shard_id);
    b.Set("healthy", s.healthy.load(std::memory_order_relaxed));
    b.Set("draining", s.draining.load(std::memory_order_relaxed));
    b.Set("inflight", s.inflight.load(std::memory_order_relaxed));
    b.Set("search_p95_us", s.p95_us.load(std::memory_order_relaxed));
    b.Set("models", s.models.load(std::memory_order_relaxed));
    b.Set("index_generation",
          s.index_generation.load(std::memory_order_relaxed));
    b.Set("heartbeats_ok", s.heartbeats_ok.load(std::memory_order_relaxed));
    b.Set("consecutive_misses", s.misses.load(std::memory_order_relaxed));
    b.Set("role", s.is_replica.load(std::memory_order_relaxed)
                      ? "replica"
                      : "writer");
    b.Set("applied_seq",
          Json(s.applied_seq.load(std::memory_order_relaxed)));
    b.Set("replication_epoch",
          Json(s.replication_epoch.load(std::memory_order_relaxed)));
    backends.Append(std::move(b));
  }
  out.Set("backends", std::move(backends));

  Json hedging = Json::MakeObject();
  hedging.Set("enabled", options_.enable_hedging);
  hedging.Set("fired", hedges_fired_.load(std::memory_order_relaxed));
  hedging.Set("wins", hedge_wins_.load(std::memory_order_relaxed));
  hedging.Set("failovers", failovers_.load(std::memory_order_relaxed));
  out.Set("hedging", std::move(hedging));

  Json server_json = Json::MakeObject();
  server_json.Set("uptime_ms", ElapsedMs(start_time_));
  server_json.Set("threads", options_.threads);
  server_json.Set("fanout_threads", options_.fanout_threads);
  server_json.Set("draining", draining_.load());
  out.Set("server", std::move(server_json));

  out.Set("endpoints", metrics_.ToJson());
  return out;
}

HttpResponse Router::HandleModelList(Clock::time_point deadline) {
  auto legs = ScatterAll("GET", "/v1/models", "", deadline);
  if (!legs.ok()) return ErrorResponse(legs.status());
  HttpResponse relay;
  if (!AllOk(legs.ValueUnsafe(), &relay)) return relay;

  // Concatenate and re-sort by id — each shard lists its own models in
  // id order, so the merged view matches a single lake's listing.
  std::vector<Json> entries;
  for (const HttpResponse& leg : legs.ValueUnsafe()) {
    auto body = ParseJsonBody(leg);
    if (!body.ok()) return ErrorResponse(body.status());
    const Json* models = body.ValueUnsafe().Find("models");
    if (models == nullptr || !models->is_array()) continue;
    for (const Json& entry : models->AsArray()) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(), [](const Json& a, const Json& b) {
    return a.GetString("id") < b.GetString("id");
  });
  Json arr = Json::MakeArray();
  for (Json& entry : entries) arr.Append(std::move(entry));
  Json body = Json::MakeObject();
  body.Set("count", entries.size());
  body.Set("models", std::move(arr));
  return JsonResponse(std::move(body));
}

HttpResponse Router::HandleBroadcastGet(const std::string& path,
                                        Clock::time_point deadline) {
  auto result = BroadcastFirst(path, deadline);
  if (!result.ok()) return ErrorResponse(result.status());
  return result.MoveValueUnsafe();
}

HttpResponse Router::HandleExport(Clock::time_point deadline) {
  auto legs = ScatterAll("GET", "/v1/export", "", deadline);
  if (!legs.ok()) return ErrorResponse(legs.status());
  HttpResponse relay;
  if (!AllOk(legs.ValueUnsafe(), &relay)) return relay;

  // Merge the per-shard NDJSON dumps into one lake-wide dump. Records
  // keep their shard-emitted bytes verbatim (the determinism contract
  // lives in the record bytes, not the framing): models re-sort by id
  // globally, edges and datasets deduplicate on their full record line
  // (cross-shard lineage edges are recorded on both endpoints' shards)
  // and sort, headers/footers are rebuilt from the merged counts.
  std::vector<std::pair<std::string, std::string>> models;  // id -> line
  std::set<std::string> edges;
  std::set<std::string> datasets;
  std::string header_line;
  for (const HttpResponse& leg : legs.ValueUnsafe()) {
    size_t start = 0;
    const std::string& text = leg.body;
    while (start < text.size()) {
      size_t eol = text.find('\n', start);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(start, eol - start);
      start = eol + 1;
      if (line.empty()) continue;
      auto record = Json::Parse(line);
      if (!record.ok() || !record.ValueUnsafe().is_object()) {
        return ErrorResponse(Status::Internal(
            "malformed export record from a shard: " + line.substr(0, 120)));
      }
      const Json& rec = record.ValueUnsafe();
      std::string kind = rec.GetString("kind");
      if (kind == "header") {
        if (header_line.empty()) header_line = line;
      } else if (kind == "model") {
        models.emplace_back(rec.GetString("id"), line);
      } else if (kind == "edge") {
        edges.insert(line);
      } else if (kind == "dataset") {
        datasets.insert(line);
      }  // footer: rebuilt below
    }
  }
  std::sort(models.begin(), models.end());

  auto header = Json::Parse(header_line);
  if (!header.ok() || !header.ValueUnsafe().is_object()) {
    return ErrorResponse(Status::Internal("no export header from any shard"));
  }
  Json counts = Json::MakeObject();
  counts.Set("models", models.size());
  counts.Set("edges", edges.size());
  counts.Set("datasets", datasets.size());
  header.ValueUnsafe().Set("counts", std::move(counts));

  HttpResponse out;
  out.content_type = "application/x-ndjson";
  out.body = header.ValueUnsafe().Dump();
  out.body.push_back('\n');
  for (const auto& [id, line] : models) {
    out.body.append(line);
    out.body.push_back('\n');
  }
  for (const std::string& line : edges) {
    out.body.append(line);
    out.body.push_back('\n');
  }
  for (const std::string& line : datasets) {
    out.body.append(line);
    out.body.push_back('\n');
  }
  Json footer = Json::MakeObject();
  footer.Set("kind", std::string("footer"));
  footer.Set("records", models.size() + edges.size() + datasets.size());
  out.body.append(footer.Dump());
  out.body.push_back('\n');
  return out;
}

HttpResponse Router::HandleSearch(const HttpRequest& request,
                                  std::string* endpoint_label,
                                  Clock::time_point deadline) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(Status::InvalidArgument("malformed JSON body: " +
                                                 parsed.status().message()));
  }
  const Json& body = parsed.ValueUnsafe();
  if (!body.is_object()) {
    return ErrorResponse(Status::InvalidArgument("body must be an object"));
  }
  std::string type = body.GetString("type", "mlql");
  if (endpoint_label != nullptr &&
      (type == "mlql" || type == "ann" || type == "keyword" ||
       type == "hybrid" || type == "ann_vec")) {
    endpoint_label->append(":").append(type);
  }
  int64_t k_raw = body.GetInt64("k", 5);
  if (k_raw <= 0 || k_raw > kMaxServerK) {
    return ErrorResponse(Status::InvalidArgument("k must be in [1, 10000]"));
  }
  size_t k = static_cast<size_t>(k_raw);

  if (type == "mlql") {
    std::string query = body.GetString("query");
    if (query.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("mlql search requires \"query\""));
    }
    return SearchMlql(query, deadline);
  } else if (type == "ann" || type == "ann_vec") {
    return SearchAnn(body, k, deadline);
  } else if (type == "keyword") {
    std::string query = body.GetString("query");
    if (query.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("keyword search requires \"query\""));
    }
    return SearchKeyword(body, k, deadline);
  } else if (type == "hybrid") {
    std::string text = body.GetString("query");
    std::string query_id = body.GetString("id");
    if (text.empty() || query_id.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "hybrid search requires \"query\" and \"id\""));
    }
    // Lower to the exact MLQL HybridSearch lowers to (quote doubling
    // included) so the shard-side parts carry identical rank args.
    auto escape = [](const std::string& s) {
      std::string out;
      for (char c : s) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      return out;
    };
    std::string parts_query =
        StrFormat("FIND MODELS RANK BY hybrid('%s', '%s') LIMIT %zu",
                  escape(text).c_str(), escape(query_id).c_str(), k);
    return SearchHybrid(text, query_id, k, "hybrid", parts_query, deadline);
  }
  return ErrorResponse(Status::InvalidArgument(
      "unknown search type \"" + type +
      "\" (the router serves mlql | ann | keyword | hybrid)"));
}

HttpResponse Router::SearchMlql(const std::string& query,
                                Clock::time_point deadline) {
  auto parsed = search::ParseQuery(query);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const search::Query& q = parsed.ValueUnsafe();

  // Hybrid-ranked queries take the parts path: RRF needs the *global*
  // keyword and similarity rankings, which no single shard can see.
  if (q.has_rank && q.rank.function == "hybrid" && q.rank.args.size() == 2 &&
      q.rank.args[0].kind == search::Literal::Kind::kString &&
      q.rank.args[1].kind == search::Literal::Kind::kString) {
    return SearchHybrid(q.rank.args[0].string_value,
                        q.rank.args[1].string_value, q.limit, "mlql", query,
                        deadline);
  }

  Json leg_body = Json::MakeObject();
  leg_body.Set("type", "mlql");
  leg_body.Set("query", query);

  // Overlay: whatever cross-shard context a leg needs so its local
  // scores are bit-identical to a merged lake's.
  Json overlay = Json::MakeObject();
  bool has_overlay = false;
  if (q.has_rank &&
      (q.rank.function == "behavior_sim" || q.rank.function == "weight_sim") &&
      q.rank.args.size() == 1 &&
      q.rank.args[0].kind == search::Literal::Kind::kString) {
    // The rank-target model lives on one shard; every other shard gets
    // its embedding as a hint (consulted only after a local miss).
    const std::string& rank_id = q.rank.args[0].string_value;
    auto vec = ResolveEmbedding(rank_id, deadline);
    if (!vec.ok()) return ErrorResponse(vec.status());
    Json embeddings = Json::MakeObject();
    embeddings.Set(rank_id, FloatVecToJson(vec.ValueUnsafe()));
    overlay.Set("embeddings", std::move(embeddings));
    has_overlay = true;
  }
  if (q.has_rank && q.rank.function == "keyword" && q.rank.args.size() == 1 &&
      q.rank.args[0].kind == search::Literal::Kind::kString) {
    const std::string& text = q.rank.args[0].string_value;
    auto stats = GlobalKeywordStats(text, deadline);
    if (!stats.ok()) return ErrorResponse(stats.status());
    Json bm25 = Json::MakeObject();
    bm25.Set("text", text);
    bm25.Set("stats", stats.MoveValueUnsafe());
    overlay.Set("bm25", std::move(bm25));
    has_overlay = true;
  }
  if (has_overlay) leg_body.Set("overlay", std::move(overlay));

  auto legs = ScatterAll("POST", "/v1/search", leg_body.Dump(), deadline);
  if (!legs.ok()) return ErrorResponse(legs.status());
  HttpResponse relay;
  if (!AllOk(legs.ValueUnsafe(), &relay)) return relay;
  auto merged = MergeModels(legs.ValueUnsafe(), q.limit);
  if (!merged.ok()) return ErrorResponse(merged.status());

  Json out = Json::MakeObject();
  out.Set("type", "mlql");
  out.Set("plan",
          StrFormat("cluster scatter over %zu shards%s; merge top-%zu",
                    cluster_size_, has_overlay ? " (with overlay)" : "",
                    q.limit));
  out.Set("models", merged.MoveValueUnsafe());
  return JsonResponse(std::move(out));
}

HttpResponse Router::SearchKeyword(const Json& body, size_t k,
                                   Clock::time_point deadline) {
  std::string query = body.GetString("query");
  auto stats = GlobalKeywordStats(query, deadline);
  if (!stats.ok()) return ErrorResponse(stats.status());

  Json leg_body = Json::MakeObject();
  leg_body.Set("type", "keyword");
  leg_body.Set("query", query);
  leg_body.Set("k", static_cast<int64_t>(k));
  leg_body.Set("stats", stats.MoveValueUnsafe());
  auto legs = ScatterAll("POST", "/v1/search", leg_body.Dump(), deadline);
  if (!legs.ok()) return ErrorResponse(legs.status());
  HttpResponse relay;
  if (!AllOk(legs.ValueUnsafe(), &relay)) return relay;
  auto merged = MergeModels(legs.ValueUnsafe(), k);
  if (!merged.ok()) return ErrorResponse(merged.status());

  Json out = Json::MakeObject();
  out.Set("type", "keyword");
  out.Set("models", merged.MoveValueUnsafe());
  return JsonResponse(std::move(out));
}

HttpResponse Router::SearchAnn(const Json& body, size_t k,
                               Clock::time_point deadline) {
  std::string exclude_id;
  Json vec_json;
  if (const Json* vec = body.Find("vec"); vec != nullptr) {
    // ann_vec passthrough: the caller already has the query vector.
    vec_json = *vec;
    exclude_id = body.GetString("exclude_id");
  } else {
    std::string query_id = body.GetString("id");
    if (query_id.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("ann search requires \"id\""));
    }
    auto resolved = ResolveEmbedding(query_id, deadline);
    if (!resolved.ok()) return ErrorResponse(resolved.status());
    vec_json = FloatVecToJson(resolved.ValueUnsafe());
    exclude_id = query_id;
  }

  Json leg_body = Json::MakeObject();
  leg_body.Set("type", "ann_vec");
  leg_body.Set("vec", std::move(vec_json));
  leg_body.Set("k", static_cast<int64_t>(k));
  if (!exclude_id.empty()) leg_body.Set("exclude_id", exclude_id);
  auto legs = ScatterAll("POST", "/v1/search", leg_body.Dump(), deadline);
  if (!legs.ok()) return ErrorResponse(legs.status());
  HttpResponse relay;
  if (!AllOk(legs.ValueUnsafe(), &relay)) return relay;
  auto merged = MergeModels(legs.ValueUnsafe(), k);
  if (!merged.ok()) return ErrorResponse(merged.status());

  Json out = Json::MakeObject();
  out.Set("type", "ann");
  out.Set("models", merged.MoveValueUnsafe());
  return JsonResponse(std::move(out));
}

HttpResponse Router::SearchHybrid(const std::string& text,
                                  const std::string& query_id, size_t k,
                                  const char* type_label,
                                  const std::string& parts_query,
                                  Clock::time_point deadline) {
  // RRF needs three global views: the query model's embedding, the
  // globally-ranked BM25 list, and every shard's WHERE-surviving
  // candidates with their dot products. Assemble all three, then fuse
  // exactly as RankCandidates' hybrid branch does.
  auto query_vec = ResolveEmbedding(query_id, deadline);
  if (!query_vec.ok()) return ErrorResponse(query_vec.status());
  auto stats = GlobalKeywordStats(text, deadline);
  if (!stats.ok()) return ErrorResponse(stats.status());

  // Global keyword ranking (deepest list one scatter can carry — see
  // kMaxServerK; the executor uses its unbounded internal list, so
  // rank parity holds while every shard has <= 10000 scoring docs).
  Json kw_body = Json::MakeObject();
  kw_body.Set("type", "keyword");
  kw_body.Set("query", text);
  kw_body.Set("k", kMaxServerK);
  kw_body.Set("stats", stats.MoveValueUnsafe());
  auto kw_legs = ScatterAll("POST", "/v1/search", kw_body.Dump(), deadline);
  if (!kw_legs.ok()) return ErrorResponse(kw_legs.status());
  HttpResponse relay;
  if (!AllOk(kw_legs.ValueUnsafe(), &relay)) return relay;
  auto kw_hits = CollectHits(kw_legs.ValueUnsafe());
  if (!kw_hits.ok()) return ErrorResponse(kw_hits.status());
  std::sort(kw_hits.ValueUnsafe().begin(), kw_hits.ValueUnsafe().end(),
            ScoreDescIdAsc);
  std::unordered_map<std::string, size_t> keyword_rank;
  for (size_t i = 0; i < kw_hits.ValueUnsafe().size(); ++i) {
    keyword_rank[kw_hits.ValueUnsafe()[i].id] = i;
  }

  // Per-shard candidates + dot products.
  Json parts_body = Json::MakeObject();
  parts_body.Set("type", "hybrid_parts");
  parts_body.Set("query", parts_query);
  parts_body.Set("vec", FloatVecToJson(query_vec.ValueUnsafe()));
  parts_body.Set("k", 1);  // unused by the handler; satisfies validation
  auto parts_legs =
      ScatterAll("POST", "/v1/search", parts_body.Dump(), deadline);
  if (!parts_legs.ok()) return ErrorResponse(parts_legs.status());
  if (!AllOk(parts_legs.ValueUnsafe(), &relay)) return relay;

  std::vector<search::HybridCandidate> candidates;
  for (const HttpResponse& leg : parts_legs.ValueUnsafe()) {
    auto leg_json = ParseJsonBody(leg);
    if (!leg_json.ok()) return ErrorResponse(leg_json.status());
    const Json* arr = leg_json.ValueUnsafe().Find("candidates");
    if (arr == nullptr || !arr->is_array()) {
      return ErrorResponse(
          Status::Internal("hybrid_parts response has no candidates"));
    }
    for (const Json& c : arr->AsArray()) {
      if (!c.is_object()) continue;
      search::HybridCandidate cand;
      cand.id = c.GetString("id");
      if (const Json* dot = c.Find("dot"); dot != nullptr && dot->is_number()) {
        cand.has_dot = true;
        cand.dot = dot->AsDouble();
      }
      candidates.push_back(std::move(cand));
    }
  }

  // Similarity ranking over candidates with embeddings — the same
  // (-dot, id) ascending sort as the executor.
  std::vector<std::pair<double, std::string>> by_similarity;
  for (const search::HybridCandidate& c : candidates) {
    if (c.has_dot) by_similarity.emplace_back(-c.dot, c.id);
  }
  std::sort(by_similarity.begin(), by_similarity.end());
  std::unordered_map<std::string, size_t> embedding_rank;
  for (size_t i = 0; i < by_similarity.size(); ++i) {
    embedding_rank[by_similarity[i].second] = i;
  }

  // Fuse: keyword contribution first, then similarity — the addition
  // order matters for bit-identical doubles.
  std::vector<MergedHit> fused;
  fused.reserve(candidates.size());
  for (const search::HybridCandidate& c : candidates) {
    double score = 0.0;
    if (auto it = keyword_rank.find(c.id); it != keyword_rank.end()) {
      score += 1.0 / (search::kRrfOffset + static_cast<double>(it->second));
    }
    if (auto it = embedding_rank.find(c.id); it != embedding_rank.end()) {
      score += 1.0 / (search::kRrfOffset + static_cast<double>(it->second));
    }
    fused.push_back(MergedHit{score, c.id});
  }
  std::sort(fused.begin(), fused.end(), ScoreDescIdAsc);
  if (fused.size() > k) fused.resize(k);

  Json models = Json::MakeArray();
  for (const MergedHit& h : fused) {
    Json j = Json::MakeObject();
    j.Set("id", h.id);
    j.Set("score", h.score);
    models.Append(std::move(j));
  }
  Json out = Json::MakeObject();
  out.Set("type", type_label);
  if (std::string_view(type_label) == "mlql") {
    out.Set("plan", StrFormat("cluster scatter over %zu shards (hybrid RRF); "
                              "merge top-%zu",
                              cluster_size_, k));
  }
  out.Set("models", std::move(models));
  return JsonResponse(std::move(out));
}

Result<std::vector<float>> Router::ResolveEmbedding(
    const std::string& id, Clock::time_point deadline) {
  MLAKE_ASSIGN_OR_RETURN(HttpResponse response,
                         BroadcastFirst("/v1/embedding/" + id, deadline));
  if (response.status != 200) return StatusFromResponse(response);
  MLAKE_ASSIGN_OR_RETURN(Json body, ParseJsonBody(response));
  const Json* emb = body.Find("embedding");
  if (emb == nullptr || !emb->is_array()) {
    return Status::Internal("embedding response has no vector");
  }
  std::vector<float> vec;
  vec.reserve(emb->size());
  for (const Json& v : emb->AsArray()) {
    if (!v.is_number()) {
      return Status::Internal("embedding response holds a non-number");
    }
    vec.push_back(static_cast<float>(v.AsDouble()));
  }
  return vec;
}

Result<Json> Router::GlobalKeywordStats(const std::string& query,
                                        Clock::time_point deadline) {
  Json leg_body = Json::MakeObject();
  leg_body.Set("type", "keyword_stats");
  leg_body.Set("query", query);
  leg_body.Set("k", 1);  // unused by the handler; satisfies validation
  MLAKE_ASSIGN_OR_RETURN(
      std::vector<HttpResponse> legs,
      ScatterAll("POST", "/v1/search", leg_body.Dump(), deadline));
  HttpResponse relay;
  if (!AllOk(legs, &relay)) return StatusFromResponse(relay);

  // Integer sums — exact regardless of shard count or order.
  int64_t live_docs = 0;
  int64_t total_tokens = 0;
  std::map<std::string, int64_t> df;
  for (const HttpResponse& leg : legs) {
    MLAKE_ASSIGN_OR_RETURN(Json body, ParseJsonBody(leg));
    const Json* stats = body.Find("stats");
    if (stats == nullptr || !stats->is_object()) {
      return Status::Internal("keyword_stats response has no stats");
    }
    live_docs += stats->GetInt64("live_docs");
    total_tokens += stats->GetInt64("total_tokens");
    const Json* df_json = stats->Find("df");
    if (df_json != nullptr && df_json->is_object()) {
      for (const auto& [term, count] : df_json->AsObject()) {
        if (!count.is_number()) continue;
        df[term] += count.AsInt64();
      }
    }
  }
  Json out = Json::MakeObject();
  out.Set("live_docs", live_docs);
  out.Set("total_tokens", total_tokens);
  Json df_out = Json::MakeObject();
  for (const auto& [term, count] : df) df_out.Set(term, count);
  out.Set("df", std::move(df_out));
  return out;
}

HttpResponse Router::HandleIngest(const HttpRequest& request,
                                  Clock::time_point deadline) {
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(Status::InvalidArgument("malformed JSON body: " +
                                                 parsed.status().message()));
  }
  if (!parsed.ValueUnsafe().is_object()) {
    return ErrorResponse(Status::InvalidArgument("body must be an object"));
  }
  std::string artifact_b64 = parsed.ValueUnsafe().GetString("artifact_b64");
  if (artifact_b64.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("ingest requires \"artifact_b64\""));
  }
  auto bytes = server::Base64Decode(artifact_b64);
  if (!bytes.ok()) {
    return ErrorResponse(Status::InvalidArgument("malformed artifact_b64: " +
                                                 bytes.status().message()));
  }
  // Placement is by content digest — any router instance computes the
  // same owner with no directory service.
  std::string digest = Sha256::HexDigest(bytes.ValueUnsafe());
  uint64_t owner =
      ShardSlotForDigest(digest, static_cast<uint64_t>(cluster_size_));

  std::shared_ptr<const ShardMap> map = CurrentMap();
  if (map == nullptr || owner >= map->cluster_size()) {
    return ErrorResponse(Status::Unavailable("no shard map published yet"));
  }
  if (map->replicas[owner].empty()) {
    return ErrorResponse(Status::Unavailable(
        "shard " + std::to_string(owner) + " has no backend"));
  }
  // Writes only go to backends whose heartbeat claims a writable role —
  // a read replica would just answer 409. An empty writer list means
  // the slot's leader is down and no replica has been promoted.
  const std::vector<int>& writers =
      owner < map->writers.size() ? map->writers[owner] : map->replicas[owner];
  if (writers.empty()) {
    return ErrorResponse(Status::FailedPrecondition(
        "shard " + std::to_string(owner) +
        " has no writable backend (leader down?): `mlake promote` a "
        "replica"));
  }

  // Sequential failover down the writer list. The POST is never
  // silently resent by the client (non-idempotent); instead each
  // attempt carries the artifact digest as an idempotency key, so a
  // shard that already applied a half-delivered attempt answers the
  // next one with the existing id instead of AlreadyExists.
  Status last_error = Status::Unavailable("no replica attempted");
  for (size_t attempt = 0; attempt < writers.size(); ++attempt) {
    int64_t remaining = RemainingMs(deadline);
    if (remaining <= 0) {
      return ErrorResponse(
          Status::DeadlineExceeded("deadline expired during ingest routing"));
    }
    const BackendSpec& spec =
        options_.backends[static_cast<size_t>(writers[attempt])];
    auto lease = pool_.Acquire(spec.host, spec.port);
    auto result = lease->Post(
        "/v1/ingest", request.body,
        {{"X-Mlake-Deadline-Ms", std::to_string(remaining)},
         {"X-Mlake-Idempotency-Key", digest}},
        static_cast<int>(remaining + 50));
    if (result.ok()) {
      if (attempt > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
      return result.MoveValueUnsafe();
    }
    lease.Discard();
    last_error = result.status();
  }
  return ErrorResponse(last_error);
}

}  // namespace mlake::cluster
