#include "cluster/shard_map.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "common/status.h"

namespace mlake::cluster {

Result<BackendSpec> ParseBackendSpec(const std::string& spec) {
  BackendSpec out;
  out.shard_id = -1;  // caller assigns when absent
  std::string addr = spec;
  if (size_t at = spec.find('@'); at != std::string::npos) {
    addr = spec.substr(0, at);
    char* end = nullptr;
    long shard = std::strtol(spec.c_str() + at + 1, &end, 10);
    if (end == nullptr || *end != '\0' || shard < 0) {
      return Status::InvalidArgument("bad shard in backend spec: " + spec);
    }
    out.shard_id = static_cast<int>(shard);
  }
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= addr.size()) {
    return Status::InvalidArgument("backend spec must be host:port[@shard]: " +
                                   spec);
  }
  out.host = addr.substr(0, colon);
  char* end = nullptr;
  long port = std::strtol(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in backend spec: " + spec);
  }
  out.port = static_cast<int>(port);
  return out;
}

Json ShardMap::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("epoch", static_cast<int64_t>(epoch));
  Json slots = Json::MakeArray();
  for (const std::vector<int>& slot : replicas) {
    Json arr = Json::MakeArray();
    for (int b : slot) arr.Append(Json(static_cast<int64_t>(b)));
    slots.Append(std::move(arr));
  }
  out.Set("replicas", std::move(slots));
  Json writer_slots = Json::MakeArray();
  for (const std::vector<int>& slot : writers) {
    Json arr = Json::MakeArray();
    for (int b : slot) arr.Append(Json(static_cast<int64_t>(b)));
    writer_slots.Append(std::move(arr));
  }
  out.Set("writers", std::move(writer_slots));
  return out;
}

ShardMap BuildShardMap(const std::vector<BackendSpec>& backends,
                       const std::vector<BackendHealth>& health,
                       size_t cluster_size, uint64_t epoch) {
  ShardMap map;
  map.epoch = epoch;
  map.replicas.resize(cluster_size);
  for (size_t i = 0; i < backends.size(); ++i) {
    int slot = backends[i].shard_id;
    if (slot < 0 || static_cast<size_t>(slot) >= cluster_size) continue;
    map.replicas[static_cast<size_t>(slot)].push_back(static_cast<int>(i));
  }
  auto lookup = [&](int b) {
    return static_cast<size_t>(b) < health.size()
               ? health[static_cast<size_t>(b)]
               : BackendHealth{};
  };
  auto rank = [&](int b) {
    const BackendHealth h = lookup(b);
    // Lexicographic: healthy first, non-draining first, read replicas
    // before their leader (reads land on replicas; a cluster with no
    // replicas is unaffected), least loaded, fastest, then stable
    // index order.
    return std::make_tuple(h.healthy ? 0 : 1, h.draining ? 1 : 0,
                           h.is_replica ? 0 : 1, h.inflight, h.p95_us, b);
  };
  for (std::vector<int>& slot : map.replicas) {
    std::sort(slot.begin(), slot.end(),
              [&](int a, int b) { return rank(a) < rank(b); });
  }
  map.writers.resize(cluster_size);
  for (size_t slot = 0; slot < cluster_size; ++slot) {
    for (int b : map.replicas[slot]) {
      if (!lookup(b).is_replica) map.writers[slot].push_back(b);
    }
  }
  return map;
}

}  // namespace mlake::cluster
