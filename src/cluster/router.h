#ifndef MLAKE_CLUSTER_ROUTER_H_
#define MLAKE_CLUSTER_ROUTER_H_

// The cluster frontend: a scatter-gather router speaking the same JSON
// API as a single mlaked backend, over N digest-sharded backends.
//
//   search   fans out to every shard in parallel (one leg per slot,
//            best replica first), merges partial top-k with the same
//            (score desc, id asc) comparator the executor's final sort
//            uses, and — because each shard scores its own documents
//            with globally-exact statistics (see SearchOverlay /
//            SearchWithStats) — returns the byte-identical "models"
//            list a single merged lake would.
//   ingest   routes to the artifact digest's owning shard.
//   reads    (/v1/models/{id}, /v1/lineage/{id}, /v1/embedding/{id})
//            broadcast; the owner answers, everyone else 404s.
//
// Tail latency: each leg gets a deadline derived from the request's
// remaining budget. A leg that has not answered within a hedge delay
// derived from its backend's heartbeat-reported search p95 fires a
// second attempt at the next replica; first success wins. A leg whose
// attempt fails outright (connection refused, 5xx) fails over to the
// next replica immediately. Heartbeats also feed the epoch ticker,
// which publishes a rebalanced, versioned ShardMap; in-flight requests
// drain against the map they started with.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "search/ast.h"
#include "server/client.h"
#include "server/http.h"
#include "server/metrics.h"

namespace mlake::cluster {

struct RouterOptions {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see Router::port()).
  int port = 0;
  /// Worker pool size (thread-per-connection, like mlaked).
  int threads = 8;
  /// Backend servers. Each spec's shard_id assigns it to a slot;
  /// backends sharing a slot are replicas.
  std::vector<BackendSpec> backends;
  /// Number of shard slots; 0 = max backend shard_id + 1.
  int cluster_size = 0;

  /// Heartbeat poll cadence and per-poll timeout.
  int heartbeat_interval_ms = 500;
  int heartbeat_timeout_ms = 250;
  /// Consecutive missed heartbeats before a backend is marked down.
  int heartbeat_misses_down = 2;

  /// Deadline applied when a request carries no X-Mlake-Deadline-Ms
  /// header; every scatter leg inherits the remaining budget.
  int default_deadline_ms = 30000;

  /// Hedged retries: a leg unanswered after
  /// max(hedge_min_delay_ms, p95_ms * hedge_p95_multiplier) fires a
  /// second attempt at the next replica (when one exists). The delay
  /// is always capped by the leg's remaining deadline.
  bool enable_hedging = true;
  double hedge_p95_multiplier = 3.0;
  int hedge_min_delay_ms = 20;

  /// Threads running backend attempts (scatter legs + hedges).
  /// 0 = max(8, 2 * backends).
  int fanout_threads = 0;
  /// Idle keep-alive connections pooled per backend.
  size_t max_idle_per_endpoint = 8;

  int max_requests_per_connection = 1000;
  int keep_alive_timeout_ms = 30000;
  int drain_deadline_ms = 5000;
  size_t max_body_bytes = 64u << 20;
};

/// A running router. Start() launches the accept loop, worker pool,
/// fanout pool and the heartbeat/epoch thread.
class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Status Start();
  Status Stop();

  int port() const { return port_; }

  const RouterOptions& options() const { return options_; }

  /// The current (latest-epoch) shard map.
  std::shared_ptr<const ShardMap> CurrentMap() const;

  /// Forces one heartbeat poll + epoch tick now (tests; the background
  /// thread does the same on its cadence).
  void TickNow();

  /// Hedging/failover counters (also in /statsz).
  uint64_t hedges_fired() const { return hedges_fired_.load(); }
  uint64_t hedge_wins() const { return hedge_wins_.load(); }
  uint64_t failovers() const { return failovers_.load(); }

  const server::MetricsRegistry& metrics() const { return metrics_; }

  /// The router's /statsz document.
  Json StatszJson() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Heartbeat-fed mutable state of one backend.
  struct BackendState {
    std::atomic<bool> healthy{false};
    std::atomic<bool> draining{false};
    std::atomic<int> misses{0};
    std::atomic<int64_t> p95_us{0};
    std::atomic<int64_t> inflight{0};
    std::atomic<int64_t> models{0};
    std::atomic<int64_t> index_generation{0};
    std::atomic<uint64_t> heartbeats_ok{0};
    /// Replication role/watermark (heartbeat "role", "applied_seq",
    /// "replication_epoch"; standalone backends report is_replica
    /// false and zeros).
    std::atomic<bool> is_replica{false};
    std::atomic<uint64_t> applied_seq{0};
    std::atomic<uint64_t> replication_epoch{0};
  };

  /// One backend round trip's outcome, shared between the caller and
  /// up to two attempt tasks (primary + hedge). Attempts may outlive
  /// the caller (an abandoned slow primary); shared_ptr keeps this
  /// alive until the last attempt finishes.
  struct LegCall {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    int launched = 0;
    /// A definitive backend answer arrived (any HTTP status except the
    /// retryable 503) — a 4xx is an answer, not a transport failure.
    bool have_response = false;
    server::HttpResponse response;
    Status error = Status::Unavailable("no replica attempted");
    int winner = -1;  // attempt index of the answering attempt
  };

  // ---- transport (mirrors mlaked's loop, leaner) ----
  void AcceptLoop();
  void HandleConnection(int fd);
  server::HttpResponse Dispatch(const server::HttpRequest& request,
                                Clock::time_point arrival,
                                std::string* endpoint_label);
  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);
  void ForceCloseConnections();

  // ---- heartbeat / epoch ----
  void HeartbeatLoop();
  void PollBackendsOnce();
  void PublishMapLocked();  // caller holds map_mu_

  // ---- scatter-gather ----
  /// Launches attempt `attempt_index` of `leg` (replica
  /// leg.replicas[attempt_index]) on the fanout pool.
  void LaunchAttempt(const std::shared_ptr<LegCall>& call, int backend,
                     int attempt_index, const std::string& method,
                     const std::string& path, const std::string& body,
                     int timeout_ms, int64_t deadline_ms);
  /// Runs one leg per slot carrying (method, path, body) and waits for
  /// all of them: launches primaries, monitors hedge deadlines, fails
  /// over on errors. Returns one response per slot or the first fatal
  /// status.
  Result<std::vector<server::HttpResponse>> ScatterAll(
      const std::string& method, const std::string& path,
      const std::string& body, Clock::time_point deadline);
  /// Scatter with per-slot bodies (used when legs differ, e.g. k).
  Result<std::vector<server::HttpResponse>> Scatter(
      const std::string& method, const std::string& path,
      const std::vector<std::string>& bodies, Clock::time_point deadline);
  /// Broadcast a GET and return the first 2xx (owner-answers pattern);
  /// the last non-2xx response when nobody owns it.
  Result<server::HttpResponse> BroadcastFirst(const std::string& path,
                                              Clock::time_point deadline);

  // ---- handlers ----
  server::HttpResponse HandleHealthz() const;
  server::HttpResponse HandleStatsz() const;
  server::HttpResponse HandleModelList(Clock::time_point deadline);
  server::HttpResponse HandleBroadcastGet(const std::string& path,
                                          Clock::time_point deadline);
  /// Merged /v1/export: scatters the per-shard NDJSON dumps and
  /// re-emits one lake-wide dump (models sorted by id, edges/datasets
  /// deduplicated, summed header counts). Buffered at the router — the
  /// O(1)-memory path is the per-shard endpoint (DESIGN.md §15).
  server::HttpResponse HandleExport(Clock::time_point deadline);
  server::HttpResponse HandleSearch(const server::HttpRequest& request,
                                    std::string* endpoint_label,
                                    Clock::time_point deadline);
  server::HttpResponse HandleIngest(const server::HttpRequest& request,
                                    Clock::time_point deadline);

  // search kinds (each returns the full response body)
  server::HttpResponse SearchAnn(const Json& body, size_t k,
                                 Clock::time_point deadline);
  server::HttpResponse SearchKeyword(const Json& body, size_t k,
                                     Clock::time_point deadline);
  server::HttpResponse SearchHybrid(const std::string& text,
                                    const std::string& query_id, size_t k,
                                    const char* type_label,
                                    const std::string& parts_query,
                                    Clock::time_point deadline);
  server::HttpResponse SearchMlql(const std::string& query,
                                  Clock::time_point deadline);

  /// Resolves one model's embedding by broadcast (owner answers).
  Result<std::vector<float>> ResolveEmbedding(const std::string& id,
                                              Clock::time_point deadline);
  /// Phase 1 of distributed BM25: scatters keyword_stats and sums the
  /// per-shard integer statistics (exact — no floating point crosses
  /// the wire). Returns the wire-form stats object shards accept.
  Result<Json> GlobalKeywordStats(const std::string& query,
                                  Clock::time_point deadline);

  RouterOptions options_;
  size_t cluster_size_ = 0;
  server::MetricsRegistry metrics_;
  server::HttpClientPool pool_;
  std::vector<std::unique_ptr<BackendState>> backends_;

  // Versioned map (see shard_map.h). map_mu_ guards the pointer swap
  // and the epoch counter; readers snapshot the shared_ptr and drain
  // against it.
  mutable std::mutex map_mu_;
  std::shared_ptr<const ShardMap> map_;
  uint64_t epoch_ = 0;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::thread heartbeat_thread_;
  std::unique_ptr<ThreadPool> worker_pool_;
  std::unique_ptr<ThreadPool> fanout_pool_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> active_conns_{0};

  std::atomic<uint64_t> hedges_fired_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> failovers_{0};

  std::mutex conns_mu_;
  std::set<int> open_conns_;
  std::condition_variable drain_cv_;

  std::mutex hb_mu_;  // wakes the heartbeat loop early on Stop
  std::condition_variable hb_cv_;

  Clock::time_point start_time_;
};

}  // namespace mlake::cluster

#endif  // MLAKE_CLUSTER_ROUTER_H_
