#ifndef MLAKE_TENSOR_SERIALIZE_H_
#define MLAKE_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "tensor/tensor.h"

namespace mlake {

/// Binary little-endian primitives shared by the tensor codec, the model
/// artifact format and the KV store log format.
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF32(std::string* out, float v);
void PutLengthPrefixed(std::string* out, std::string_view s);

/// Cursor-based decoder. All Get* return false on underflow and leave the
/// cursor unchanged in that case.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetF32(float* v);
  bool GetLengthPrefixed(std::string_view* s);
  /// Raw byte run.
  bool GetBytes(size_t n, std::string_view* s);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Appends the tensor encoding: rank, dims, raw f32 payload.
void EncodeTensor(const Tensor& t, std::string* out);

/// Decodes one tensor at the reader cursor.
Result<Tensor> DecodeTensor(ByteReader* reader);

/// Convenience round trips.
std::string TensorToBytes(const Tensor& t);
Result<Tensor> TensorFromBytes(std::string_view bytes);

}  // namespace mlake

#endif  // MLAKE_TENSOR_SERIALIZE_H_
