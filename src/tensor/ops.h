#ifndef MLAKE_TENSOR_OPS_H_
#define MLAKE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mlake {

/// Elementwise arithmetic; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

/// In-place a += s * b (the axpy of all optimizers). Shapes must match.
void Axpy(float s, const Tensor& b, Tensor* a);

/// Matrix product of [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Matrix product with the second operand transposed: [m, k] x [n, k]^T.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// Matrix product with the first operand transposed: [k, m]^T x [k, n].
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Adds a [n] bias vector to each row of a [m, n] matrix.
Tensor AddRowBroadcast(const Tensor& m, const Tensor& bias);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Row-wise softmax of a [m, n] matrix (numerically stabilized).
Tensor RowSoftmax(const Tensor& logits);

/// Sum of all elements.
double Sum(const Tensor& a);

/// Mean of all elements.
double Mean(const Tensor& a);

/// Dot product of two same-length rank-1 tensors.
double Dot(const Tensor& a, const Tensor& b);

/// Euclidean norm over all elements.
double L2Norm(const Tensor& a);

/// Cosine similarity over flattened elements; 0 when either is all-zero.
double CosineSimilarity(const Tensor& a, const Tensor& b);

/// Index of the max element per row of a [m, n] matrix.
std::vector<int64_t> RowArgMax(const Tensor& m);

/// Per-column mean of a [m, n] matrix -> [n].
Tensor ColumnMean(const Tensor& m);

/// Numerical rank of a rank-2 tensor via Gaussian elimination with
/// partial pivoting; pivots below `rel_tol` x the largest entry count as
/// zero. The workhorse behind low-rank-delta detection (LoRA edges).
int NumericalRank(const Tensor& m, double rel_tol = 1e-4);

}  // namespace mlake

#endif  // MLAKE_TENSOR_OPS_H_
