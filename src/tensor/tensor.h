#ifndef MLAKE_TENSOR_TENSOR_H_
#define MLAKE_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace mlake {

/// Dense row-major float32 tensor.
///
/// The mlake NN substrate is CPU-only and small-model oriented; a single
/// contiguous buffer with explicit shape bookkeeping is sufficient and
/// keeps serialization trivial. Rank is arbitrary, but most call sites
/// use rank 1 (vectors) and rank 2 (batch x features / weight matrices).
class Tensor {
 public:
  /// Constructs an empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Constructs a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Named constructors.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);
  /// I.i.d. Normal(0, stddev) entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, Rng* rng,
                             float stddev = 1.0f);
  /// Xavier/Glorot-uniform init for a [fan_out, fan_in] weight matrix.
  static Tensor XavierUniform(int64_t fan_out, int64_t fan_in, Rng* rng);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t axis) const {
    MLAKE_DCHECK(axis < shape_.size());
    return shape_[axis];
  }
  size_t rank() const { return shape_.size(); }
  int64_t NumElements() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  /// Element accessors (rank-checked).
  float& At(int64_t i) {
    MLAKE_DCHECK(rank() == 1);
    return data_[static_cast<size_t>(i)];
  }
  float At(int64_t i) const {
    MLAKE_DCHECK(rank() == 1);
    return data_[static_cast<size_t>(i)];
  }
  float& At(int64_t i, int64_t j) {
    MLAKE_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }
  float At(int64_t i, int64_t j) const {
    MLAKE_DCHECK(rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }

  /// Returns a copy with a new shape; element count must match.
  Tensor Reshape(std::vector<int64_t> shape) const;

  /// Returns row `i` of a rank-2 tensor as a rank-1 copy.
  Tensor Row(int64_t i) const;

  /// Mutating fill.
  void Fill(float value);

  /// Shape equality.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable "[2, 3]" shape string.
  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace mlake

#endif  // MLAKE_TENSOR_TENSOR_H_
