#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/kernels.h"

namespace mlake {

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  MLAKE_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ShapeString()
                              << " vs " << b.ShapeString();
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  kernels::AddInPlace(out.data(), b.data(), out.NumElements());
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  kernels::SubInPlace(out.data(), b.data(), out.NumElements());
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  kernels::MulInPlace(out.data(), b.data(), out.NumElements());
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  kernels::ScaleInPlace(out.data(), s, out.NumElements());
  return out;
}

void Axpy(float s, const Tensor& b, Tensor* a) {
  CheckSameShape(*a, b, "Axpy");
  kernels::Axpy(s, b.data(), a->data(), a->NumElements());
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MLAKE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMul needs matrices";
  MLAKE_CHECK(a.dim(1) == b.dim(0)) << "MatMul inner dims " << a.ShapeString()
                                    << " x " << b.ShapeString();
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  kernels::Gemm(m, n, k, a.data(), b.data(), out.data());
  return out;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  MLAKE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMulTransposedB";
  MLAKE_CHECK(a.dim(1) == b.dim(1)) << "MatMulTransposedB inner dims";
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Both operands are traversed along contiguous rows, so each output
  // element is exactly one kernel dot product.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      po[i * n + j] = kernels::Dot(arow, pb + j * k, k);
    }
  }
  return out;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  MLAKE_CHECK(a.rank() == 2 && b.rank() == 2) << "MatMulTransposedA";
  MLAKE_CHECK(a.dim(0) == b.dim(0)) << "MatMulTransposedA inner dims";
  int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  // Materializing A^T costs O(km) against the O(kmn) multiply and lets
  // the blocked Gemm kernel run on contiguous rows.
  std::vector<float> at(static_cast<size_t>(k * m));
  const float* pa = a.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t i = 0; i < m; ++i) {
      at[static_cast<size_t>(i * k + kk)] = pa[kk * m + i];
    }
  }
  Tensor out({m, n});
  kernels::Gemm(m, n, k, at.data(), b.data(), out.data());
  return out;
}

Tensor AddRowBroadcast(const Tensor& m, const Tensor& bias) {
  MLAKE_CHECK(m.rank() == 2 && bias.rank() == 1) << "AddRowBroadcast ranks";
  MLAKE_CHECK(m.dim(1) == bias.dim(0)) << "AddRowBroadcast width";
  Tensor out = m;
  int64_t rows = m.dim(0), cols = m.dim(1);
  float* po = out.data();
  const float* pb = bias.data();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) po[i * cols + j] += pb[j];
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  MLAKE_CHECK(a.rank() == 2) << "Transpose needs a matrix";
  int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor RowSoftmax(const Tensor& logits) {
  MLAKE_CHECK(logits.rank() == 2) << "RowSoftmax needs a matrix";
  Tensor out = logits;
  int64_t rows = logits.dim(0), cols = logits.dim(1);
  float* p = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    float* row = p + i * cols;
    float mx = row[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    for (int64_t j = 0; j < cols; ++j) row[j] /= denom;
  }
  return out;
}

double Sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.storage()) acc += v;
  return acc;
}

double Mean(const Tensor& a) {
  if (a.NumElements() == 0) return 0.0;
  return Sum(a) / static_cast<double>(a.NumElements());
}

double Dot(const Tensor& a, const Tensor& b) {
  MLAKE_CHECK(a.NumElements() == b.NumElements()) << "Dot length mismatch";
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    acc += static_cast<double>(pa[i]) * pb[i];
  }
  return acc;
}

double L2Norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.storage()) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

double CosineSimilarity(const Tensor& a, const Tensor& b) {
  MLAKE_CHECK(a.NumElements() == b.NumElements())
      << "CosineSimilarity length mismatch";
  double na = L2Norm(a), nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

std::vector<int64_t> RowArgMax(const Tensor& m) {
  MLAKE_CHECK(m.rank() == 2) << "RowArgMax needs a matrix";
  int64_t rows = m.dim(0), cols = m.dim(1);
  std::vector<int64_t> out(static_cast<size_t>(rows), 0);
  for (int64_t i = 0; i < rows; ++i) {
    int64_t best = 0;
    float best_v = m.At(i, 0);
    for (int64_t j = 1; j < cols; ++j) {
      if (m.At(i, j) > best_v) {
        best_v = m.At(i, j);
        best = j;
      }
    }
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

Tensor ColumnMean(const Tensor& m) {
  MLAKE_CHECK(m.rank() == 2) << "ColumnMean needs a matrix";
  int64_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols});
  if (rows == 0) return out;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.At(j) += m.At(i, j);
  }
  for (int64_t j = 0; j < cols; ++j) out.At(j) /= static_cast<float>(rows);
  return out;
}

int NumericalRank(const Tensor& m, double rel_tol) {
  MLAKE_CHECK(m.rank() == 2) << "NumericalRank needs a matrix";
  int64_t rows = m.dim(0), cols = m.dim(1);
  std::vector<double> a(static_cast<size_t>(rows * cols));
  double max_abs = 0.0;
  for (int64_t i = 0; i < rows * cols; ++i) {
    a[static_cast<size_t>(i)] = m.data()[i];
    max_abs = std::max(max_abs, std::fabs(a[static_cast<size_t>(i)]));
  }
  if (max_abs == 0.0) return 0;
  double tol = rel_tol * max_abs;
  int rank = 0;
  int64_t row = 0;
  for (int64_t col = 0; col < cols && row < rows; ++col) {
    int64_t pivot = -1;
    double best = tol;
    for (int64_t r = row; r < rows; ++r) {
      double v = std::fabs(a[static_cast<size_t>(r * cols + col)]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot < 0) continue;
    for (int64_t c = 0; c < cols; ++c) {
      std::swap(a[static_cast<size_t>(row * cols + c)],
                a[static_cast<size_t>(pivot * cols + c)]);
    }
    double pv = a[static_cast<size_t>(row * cols + col)];
    for (int64_t r = row + 1; r < rows; ++r) {
      double factor = a[static_cast<size_t>(r * cols + col)] / pv;
      for (int64_t c = col; c < cols; ++c) {
        a[static_cast<size_t>(r * cols + c)] -=
            factor * a[static_cast<size_t>(row * cols + c)];
      }
    }
    ++row;
    ++rank;
  }
  return rank;
}

}  // namespace mlake
