#include "tensor/serialize.h"

#include <cstring>

namespace mlake {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(out, bits);
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::GetF32(float* v) {
  uint32_t bits;
  if (!GetU32(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool ByteReader::GetLengthPrefixed(std::string_view* s) {
  size_t saved = pos_;
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (remaining() < len) {
    pos_ = saved;
    return false;
  }
  *s = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::GetBytes(size_t n, std::string_view* s) {
  if (remaining() < n) return false;
  *s = data_.substr(pos_, n);
  pos_ += n;
  return true;
}

void EncodeTensor(const Tensor& t, std::string* out) {
  PutU32(out, static_cast<uint32_t>(t.rank()));
  for (int64_t d : t.shape()) PutI64(out, d);
  // Raw payload: floats are already little-endian on every supported
  // target; memcpy for speed.
  size_t bytes = static_cast<size_t>(t.NumElements()) * sizeof(float);
  size_t old = out->size();
  out->resize(old + bytes);
  if (bytes > 0) std::memcpy(out->data() + old, t.data(), bytes);
}

Result<Tensor> DecodeTensor(ByteReader* reader) {
  uint32_t rank;
  if (!reader->GetU32(&rank)) {
    return Status::Corruption("tensor: truncated rank");
  }
  if (rank > 8) return Status::Corruption("tensor: implausible rank");
  std::vector<int64_t> shape(rank);
  int64_t count = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    if (!reader->GetI64(&shape[i])) {
      return Status::Corruption("tensor: truncated shape");
    }
    if (shape[i] < 0) return Status::Corruption("tensor: negative dim");
    count *= shape[i];
  }
  std::string_view payload;
  size_t bytes = static_cast<size_t>(count) * sizeof(float);
  if (!reader->GetBytes(bytes, &payload)) {
    return Status::Corruption("tensor: truncated payload");
  }
  std::vector<float> values(static_cast<size_t>(count));
  if (bytes > 0) std::memcpy(values.data(), payload.data(), bytes);
  return Tensor::FromVector(std::move(shape), std::move(values));
}

std::string TensorToBytes(const Tensor& t) {
  std::string out;
  EncodeTensor(t, &out);
  return out;
}

Result<Tensor> TensorFromBytes(std::string_view bytes) {
  ByteReader reader(bytes);
  MLAKE_ASSIGN_OR_RETURN(Tensor t, DecodeTensor(&reader));
  if (!reader.Done()) {
    return Status::Corruption("tensor: trailing bytes");
  }
  return t;
}

}  // namespace mlake
