#include "tensor/tensor.h"

#include <cmath>

#include "common/string_util.h"

namespace mlake {

namespace {
int64_t ElementCount(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    MLAKE_CHECK(d >= 0) << "negative dimension";
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ElementCount(shape_)), 0.0f);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values) {
  MLAKE_CHECK(ElementCount(shape) == static_cast<int64_t>(values.size()))
      << "FromVector: shape/element mismatch";
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, Rng* rng,
                            float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::XavierUniform(int64_t fan_out, int64_t fan_in, Rng* rng) {
  Tensor t({fan_out, fan_in});
  double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : t.data_) {
    v = static_cast<float>(rng->Uniform(-limit, limit));
  }
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  MLAKE_CHECK(ElementCount(shape) == NumElements())
      << "Reshape: element count mismatch";
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

Tensor Tensor::Row(int64_t i) const {
  MLAKE_CHECK(rank() == 2) << "Row on non-matrix";
  MLAKE_CHECK(i >= 0 && i < shape_[0]) << "Row out of range";
  int64_t cols = shape_[1];
  Tensor out({cols});
  const float* src = data_.data() + i * cols;
  std::copy(src, src + cols, out.data());
  return out;
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%lld", static_cast<long long>(shape_[i]));
  }
  out += "]";
  return out;
}

}  // namespace mlake
