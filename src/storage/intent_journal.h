#ifndef MLAKE_STORAGE_INTENT_JOURNAL_H_
#define MLAKE_STORAGE_INTENT_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace mlake::storage {

/// One pending multi-step lake mutation, written durably *before* the
/// mutation starts touching blobs and catalog entries.
struct Intent {
  uint64_t seq = 0;              ///< Journal sequence number (file name).
  std::string op;                ///< Mutation kind, e.g. "ingest".
  std::vector<std::string> ids;  ///< Model ids the mutation will create.
  /// Content digests the mutation will write (artifact + any sidecar
  /// blobs), so recovery can garbage-collect exactly what the crashed
  /// mutation may have left behind.
  std::vector<std::string> digests;

  Json ToJson() const;
  static Result<Intent> FromJson(const Json& j);
};

/// Write-ahead intent journal under `<dir>` (one JSON file per pending
/// intent, named `<seq>.intent`).
///
/// Protocol for an all-or-nothing mutation:
///   1. `Begin(intent)` — durably records what is about to change
///      (atomic write + dir fsync) and returns the sequence number.
///   2. apply the mutation (blob puts, catalog docs, index persists).
///   3. make the mutation durable (catalog sync), then `Commit(seq)` —
///      removes the intent file and fsyncs the journal directory.
///
/// A crash anywhere in 2–3 leaves the intent file behind; `Pending()`
/// on reopen surfaces it so the caller can roll the mutation back
/// (delete the listed catalog docs and unreferenced blobs). A crash
/// *during* rollback re-surfaces the same intent on the next open —
/// rollback must therefore be idempotent.
class IntentJournal {
 public:
  /// Opens (creating) the journal directory. `fs` = nullptr uses the
  /// real filesystem.
  static Result<IntentJournal> Open(const std::string& dir, Fs* fs = nullptr);

  /// Durably records `intent` (seq is assigned, returned, and written
  /// into the file). Assigned seqs are strictly increasing across the
  /// journal's lifetime, including across reopens.
  Result<uint64_t> Begin(const Intent& intent);

  /// Removes intent `seq` (the mutation is fully applied and durable).
  /// OK when the file is already gone — Commit after a replayed
  /// rollback is a no-op.
  Status Commit(uint64_t seq);

  /// All pending intents, oldest first.
  Result<std::vector<Intent>> Pending() const;

  /// Removes stray temp files left by crashed Begin() writes. Adds the
  /// count removed to `*removed` when non-null.
  Status RemoveStrayTmp(size_t* removed = nullptr);

  const std::string& dir() const { return dir_; }

 private:
  IntentJournal(std::string dir, Fs* fs) : dir_(std::move(dir)), fs_(fs) {}

  std::string PathFor(uint64_t seq) const;

  std::string dir_;
  Fs* fs_;  // never null
  uint64_t next_seq_ = 1;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_INTENT_JOURNAL_H_
