#ifndef MLAKE_STORAGE_INTENT_JOURNAL_H_
#define MLAKE_STORAGE_INTENT_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace mlake::storage {

/// One pending multi-step lake mutation, written durably *before* the
/// mutation starts touching blobs and catalog entries.
struct Intent {
  uint64_t seq = 0;              ///< Journal sequence number (file name).
  uint64_t epoch = 0;            ///< Replication epoch at Begin time.
  std::string op;                ///< Mutation kind, e.g. "ingest".
  std::vector<std::string> ids;  ///< Model ids the mutation will create.
  /// Content digests the mutation will write (artifact + any sidecar
  /// blobs), so recovery can garbage-collect exactly what the crashed
  /// mutation may have left behind.
  std::vector<std::string> digests;
  /// Optional replay payload (cards, embeddings, edge parameters) so a
  /// retained entry can be re-applied on a replica without access to
  /// the leader's in-memory state. Null when the journal only guards
  /// local rollback.
  Json payload;

  Json ToJson() const;
  static Result<Intent> FromJson(const Json& j);
};

/// Write-ahead intent journal under `<dir>` (one JSON file per pending
/// intent, named `<seq>.intent`).
///
/// Protocol for an all-or-nothing mutation:
///   1. `Begin(intent)` — durably records what is about to change
///      (atomic write + dir fsync) and returns the sequence number.
///   2. apply the mutation (blob puts, catalog docs, index persists).
///   3. make the mutation durable (catalog sync), then `Commit(seq)`.
///
/// A crash anywhere in 2–3 leaves the intent file behind; `Pending()`
/// on reopen surfaces it so the caller can roll the mutation back
/// (delete the listed catalog docs and unreferenced blobs). A crash
/// *during* rollback re-surfaces the same intent on the next open —
/// rollback must therefore be idempotent.
///
/// Two commit modes:
///   - rollback-only (default): Commit removes the intent file. The
///     journal holds pending intents only; history is not kept.
///   - retain_committed: Commit *renames* `<seq>.intent` to `<seq>.op`,
///     turning the journal into a replayable op log with strictly
///     increasing seqs. `Committed()` streams the log for replication;
///     `Truncate()` garbage-collects applied prefixes durably.
class IntentJournal {
 public:
  /// Opens (creating) the journal directory. `fs` = nullptr uses the
  /// real filesystem. With `retain_committed`, committed entries are
  /// kept as `<seq>.op` files instead of removed.
  static Result<IntentJournal> Open(const std::string& dir, Fs* fs = nullptr,
                                    bool retain_committed = false);

  /// Durably records `intent` (seq is assigned and epoch stamped from
  /// the journal's current epoch, both written into the file; seq is
  /// returned). Assigned seqs are strictly increasing across the
  /// journal's lifetime, including across reopens and Truncate().
  Result<uint64_t> Begin(const Intent& intent);

  /// Begin() at a caller-chosen seq — the replica apply path, which
  /// must preserve the leader's log positions so the replica's log is a
  /// prefix of the leader's (gaps where non-shipped ops sat are fine).
  /// The intent's own epoch stamp is kept (the leader's, not this
  /// journal's). Refuses a seq already present as pending or committed.
  Result<uint64_t> BeginAt(uint64_t seq, const Intent& intent);

  /// Marks intent `seq` committed (the mutation is fully applied and
  /// durable). In rollback-only mode this removes the intent file; in
  /// retain_committed mode it renames the file to `<seq>.op` so the
  /// entry stays replayable. Either way the journal directory is
  /// fsynced, because the commit record must survive a crash — or the
  /// next open would roll back a fully-applied mutation. OK when the
  /// intent file is already gone (Commit after a replayed rollback, or
  /// a re-run Commit after a crash between rename and fsync) — Commit
  /// is idempotent.
  Status Commit(uint64_t seq);

  /// Removes intent `seq` without committing it (the mutation was
  /// rolled back). Unlike Commit in retain_committed mode, the entry
  /// never enters the replayable log — a rolled-back ingest must not be
  /// shipped to replicas. OK when the file is already gone.
  Status Abort(uint64_t seq);

  /// All pending (uncommitted) intents, oldest first.
  Result<std::vector<Intent>> Pending() const;

  /// Up to `max` committed entries with seq >= `from_seq`, oldest
  /// first. Only meaningful in retain_committed mode (otherwise empty).
  Result<std::vector<Intent>> Committed(uint64_t from_seq,
                                        size_t max = SIZE_MAX) const;

  /// Highest seq ever committed by this journal, including entries
  /// Truncate() has since GC'd (0 when none). Maintained in memory and
  /// recovered from the on-disk log + truncation floor on Open.
  uint64_t last_committed_seq() const { return last_committed_seq_; }

  /// Durably removes committed entries with seq <= `upto_seq` (log GC).
  /// A truncation-floor marker is persisted *before* any entry is
  /// removed and the directory is fsynced afterwards, so a crash
  /// mid-truncate can neither resurrect an applied entry as pending
  /// nor let a reopen reuse a truncated seq.
  Status Truncate(uint64_t upto_seq);

  /// Highest seq ever removed by Truncate() (0 when never truncated).
  uint64_t truncated_upto() const { return truncated_upto_; }

  /// Replication epoch (term). 0 until SetEpoch persists a value; the
  /// epoch survives reopen via an EPOCH file in the journal dir.
  uint64_t epoch() const { return epoch_; }

  /// Durably raises the epoch. Lowering is refused (fencing must be
  /// monotonic).
  Status SetEpoch(uint64_t epoch);

  /// Removes stray temp files left by crashed Begin() writes. Adds the
  /// count removed to `*removed` when non-null.
  Status RemoveStrayTmp(size_t* removed = nullptr);

  const std::string& dir() const { return dir_; }
  bool retain_committed() const { return retain_committed_; }

 private:
  IntentJournal(std::string dir, Fs* fs, bool retain)
      : dir_(std::move(dir)), fs_(fs), retain_committed_(retain) {}

  std::string PathFor(uint64_t seq) const;
  std::string CommittedPathFor(uint64_t seq) const;

  std::string dir_;
  Fs* fs_;  // never null
  bool retain_committed_ = false;
  uint64_t next_seq_ = 1;
  uint64_t last_committed_seq_ = 0;
  uint64_t truncated_upto_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_INTENT_JOURNAL_H_
