#ifndef MLAKE_STORAGE_CACHE_H_
#define MLAKE_STORAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"

namespace mlake::storage {

/// Aggregated counters of one cache (or one shard of it).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes = 0;     // resident value bytes
  uint64_t entries = 0;   // resident entries
  uint64_t capacity = 0;  // byte budget (0 = cache disabled)

  CacheStats& operator+=(const CacheStats& other);
  double HitRate() const;
};

/// JSON rendering used by `mlake stats` and the benches.
Json CacheStatsToJson(const CacheStats& stats);

/// Thread-safe byte-budget LRU cache, sharded to keep lock hold times
/// short under the lake's concurrent-reader workload.
///
/// - Keys hash to one of `num_shards` shards; each shard has its own
///   mutex, LRU list and map, and an equal slice of the byte budget.
/// - Values are held as `shared_ptr<const V>`: a reader keeps its value
///   alive after eviction, so Get never returns a dangling pointer and
///   eviction never blocks on readers.
/// - A byte budget of 0 disables the cache entirely (Get always misses,
///   Put is a no-op) — the "caches off" configuration is the same code
///   path minus insertions, which keeps on/off behavior trivially
///   identical.
/// - A single value larger than its shard's budget is not admitted
///   (inserting it would evict the whole shard for one entry).
///
/// The cache is deliberately value-agnostic: the lake instantiates it
/// for decoded artifacts (keyed by content digest) and embeddings
/// (keyed by digest + embedder-config hash).
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t byte_budget, size_t num_shards = 8)
      : byte_budget_(byte_budget),
        shards_(num_shards == 0 ? 1 : num_shards) {
    shard_budget_ = byte_budget_ / shards_.size();
    for (auto& shard : shards_) shard = std::make_unique<Shard>();
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  bool enabled() const { return byte_budget_ > 0; }
  size_t byte_budget() const { return byte_budget_; }

  /// Returns the cached value (promoting it to most-recent) or nullptr.
  std::shared_ptr<const V> Get(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!enabled()) {
      ++shard.misses;
      return nullptr;
    }
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      ++shard.misses;
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, charging `bytes` against the shard
  /// budget and evicting least-recently-used entries to fit.
  void Put(const K& key, std::shared_ptr<const V> value, size_t bytes) {
    if (!enabled() || value == nullptr) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes -= it->second->bytes;
      shard.lru.erase(it->second);
      shard.map.erase(it);
    }
    if (bytes > shard_budget_) return;  // would evict the entire shard
    while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
      EvictOldest(&shard);
    }
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
  }

  /// Removes one key; true if it was resident. Invalidation hook for
  /// deletes/re-ingests.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    return true;
  }

  /// Drops every entry (stats counters are kept).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->map.clear();
      shard->bytes = 0;
    }
  }

  CacheStats Stats() const {
    CacheStats total;
    total.capacity = byte_budget_;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total.hits += shard->hits;
      total.misses += shard->misses;
      total.evictions += shard->evictions;
      total.bytes += shard->bytes;
      total.entries += shard->lru.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    K key;
    std::shared_ptr<const V> value;
    size_t bytes;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const K& key) const {
    // Fibonacci-mix the hash so std::hash identity hashing (common for
    // integers) still spreads across shards.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h *= 0x9e3779b97f4a7c15ull;
    return *shards_[(h >> 32) % shards_.size()];
  }

  void EvictOldest(Shard* shard) {
    Entry& oldest = shard->lru.back();
    shard->bytes -= oldest.bytes;
    shard->map.erase(oldest.key);
    shard->lru.pop_back();
    ++shard->evictions;
  }

  size_t byte_budget_;
  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_CACHE_H_
