#ifndef MLAKE_STORAGE_BLOB_STORE_H_
#define MLAKE_STORAGE_BLOB_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/fs.h"
#include "common/mmap_file.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"

namespace mlake::storage {

/// When a read re-hashes blob content against its digest name.
///
///   kAlways      every Get/GetView re-hashes (paranoid, pre-PR-3
///                behavior: pays one SHA-256 of the whole blob per read)
///   kOnFirstRead the first read of a digest verifies and records it in
///                an in-memory verified set; later reads skip the hash.
///                Detects at-rest corruption once per process lifetime,
///                which is what a read-heavy lake actually needs.
///   kNever       trust the filesystem (benchmarks, sealed read-only
///                lakes behind fsck).
enum class VerifyMode { kAlways, kOnFirstRead, kNever };

struct BlobStoreOptions {
  VerifyMode verify = VerifyMode::kOnFirstRead;
  /// Serve reads through mmap views. When false (or when mmap fails at
  /// runtime), reads fall back to the copying path.
  bool use_mmap = true;
  /// Filesystem seam (common/fs.h); nullptr = real filesystem. Every
  /// durable op and every copying read goes through it.
  Fs* fs = nullptr;
  /// Transient-I/O retry for Put and the read path (Status::IsTransient
  /// errors only; corruption and hard I/O errors never retry). Default:
  /// 3 attempts with 1ms/2ms backoff. RetryPolicy::None() disables.
  RetryPolicy retry;
};

/// A borrowed, zero-copy view of one blob's bytes.
///
/// Backed by a memory-mapped file when possible (O(1) heap regardless
/// of blob size; pages are faulted in on demand) and by an owned string
/// on the fallback path. The view owns its backing mapping/buffer: it
/// stays valid for the lifetime of the BlobView object, independent of
/// the BlobStore. Deleting the underlying blob file while a view is
/// live is safe on POSIX (the mapping pins the inode).
class BlobView {
 public:
  BlobView() = default;

  std::string_view bytes() const {
    return file_.valid() ? file_.bytes() : std::string_view(owned_);
  }
  size_t size() const { return bytes().size(); }

  /// True when this view is mmap-backed (false = copying fallback).
  bool mmapped() const { return file_.valid(); }

 private:
  friend class BlobStore;
  explicit BlobView(MmapFile file) : file_(std::move(file)) {}
  explicit BlobView(std::string bytes) : owned_(std::move(bytes)) {}

  MmapFile file_;
  std::string owned_;
};

/// Content-addressable on-disk blob store.
///
/// Blobs are keyed by the SHA-256 hex digest of their bytes and laid out
/// as `<root>/objects/<d0d1>/<digest>` (two-hex-char fan-out, the git
/// object-store layout). Writing is idempotent: storing the same bytes
/// twice is a no-op, which deduplicates identical model checkpoints for
/// free. Blob files are written atomically and durably (temp + fsync +
/// rename + dir fsync; see WriteFileAtomic).
///
/// Reads: `GetView` is the zero-copy path (mmap + verify policy);
/// `Get` remains the copying convenience. Both verify the digest
/// according to `BlobStoreOptions::verify`. The verified set is
/// internally synchronized, so all read methods are safe to call
/// concurrently (matching the lake's shared-lock reader contract).
class BlobStore {
 public:
  /// Opens (creating directories as needed) a store rooted at `root`.
  static Result<BlobStore> Open(const std::string& root,
                                const BlobStoreOptions& options = {});

  /// Stores `bytes`, returning their digest.
  Result<std::string> Put(std::string_view bytes);

  /// Zero-copy fetch: a borrowed view over the blob, verified per the
  /// store's VerifyMode. Returns Corruption if verification runs and
  /// the on-disk bytes no longer match their name.
  Result<BlobView> GetView(const std::string& digest) const;

  /// As above but with an explicit verification mode for this one read
  /// (fsck forces kAlways regardless of the store policy).
  Result<BlobView> GetView(const std::string& digest, VerifyMode mode) const;

  /// Copying fetch; same verification semantics as GetView.
  Result<std::string> Get(const std::string& digest) const;

  bool Contains(const std::string& digest) const;

  Status Delete(const std::string& digest);

  /// Moves a blob out of `objects/` into `<root>/quarantine/<digest>`
  /// instead of deleting it: the bytes stay available for offline
  /// forensics/repair, but reads stop serving them. Idempotent when the
  /// blob is already quarantined; NotFound when it never existed.
  Status Quarantine(const std::string& digest);

  /// Digests currently sitting in quarantine (sorted; empty when the
  /// quarantine directory does not exist).
  Result<std::vector<std::string>> ListQuarantined() const;

  /// Removes stray `*.tmp.*` files inside the object buckets (leftovers
  /// of writes that crashed between temp-write and rename). Adds the
  /// count removed to `*removed` when non-null.
  Status RemoveStrayTmp(size_t* removed = nullptr);

  /// All stored digests (sorted).
  Result<std::vector<std::string>> List() const;

  /// Re-hashes every blob through mmap views (O(1) resident memory per
  /// blob); returns digests whose content mismatches.
  Result<std::vector<std::string>> VerifyAll() const;

  /// Total bytes across all blobs.
  Result<uint64_t> TotalBytes() const;

  const std::string& root() const { return root_; }
  const BlobStoreOptions& options() const { return options_; }

  /// Digests verified so far under kOnFirstRead (test/stats hook).
  size_t NumVerified() const;

 private:
  /// Verified-digest set, synchronized internally so const reads can
  /// record verifications concurrently. Held by pointer to keep
  /// BlobStore movable.
  struct VerifiedSet {
    mutable std::mutex mu;
    std::unordered_set<std::string> digests;
  };

  BlobStore(std::string root, const BlobStoreOptions& options)
      : root_(std::move(root)),
        options_(options),
        fs_(options.fs != nullptr ? options.fs : RealFs()),
        verified_(std::make_unique<VerifiedSet>()) {}

  std::string PathFor(const std::string& digest) const;
  std::string QuarantinePathFor(const std::string& digest) const;
  bool NeedsVerify(const std::string& digest, VerifyMode mode) const;
  Status VerifyView(const BlobView& view, const std::string& digest) const;
  /// One read attempt (mmap or copying fallback), no verification.
  Result<BlobView> OpenView(const std::string& path) const;

  std::string root_;
  BlobStoreOptions options_;
  Fs* fs_;  // never null
  std::unique_ptr<VerifiedSet> verified_;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_BLOB_STORE_H_
