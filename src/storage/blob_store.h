#ifndef MLAKE_STORAGE_BLOB_STORE_H_
#define MLAKE_STORAGE_BLOB_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mlake::storage {

/// Content-addressable on-disk blob store.
///
/// Blobs are keyed by the SHA-256 hex digest of their bytes and laid out
/// as `<root>/objects/<d0d1>/<digest>` (two-hex-char fan-out, the git
/// object-store layout). Writing is idempotent: storing the same bytes
/// twice is a no-op, which deduplicates identical model checkpoints for
/// free. Blob files are written atomically (temp + rename).
class BlobStore {
 public:
  /// Opens (creating directories as needed) a store rooted at `root`.
  static Result<BlobStore> Open(const std::string& root);

  /// Stores `bytes`, returning their digest.
  Result<std::string> Put(std::string_view bytes);

  /// Fetches a blob; verifies the digest on read and returns Corruption
  /// if the on-disk bytes no longer match their name.
  Result<std::string> Get(const std::string& digest) const;

  bool Contains(const std::string& digest) const;

  Status Delete(const std::string& digest);

  /// All stored digests (sorted).
  Result<std::vector<std::string>> List() const;

  /// Re-hashes every blob; returns digests whose content mismatches.
  Result<std::vector<std::string>> VerifyAll() const;

  /// Total bytes across all blobs.
  Result<uint64_t> TotalBytes() const;

  const std::string& root() const { return root_; }

 private:
  explicit BlobStore(std::string root) : root_(std::move(root)) {}

  std::string PathFor(const std::string& digest) const;

  std::string root_;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_BLOB_STORE_H_
