#ifndef MLAKE_STORAGE_KV_STORE_H_
#define MLAKE_STORAGE_KV_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/result.h"
#include "common/status.h"

namespace mlake::storage {

/// Durable key-value store backed by an append-only log with an
/// in-memory index — the metadata engine under the lake catalog.
///
/// Record format (little-endian):
///   u32 crc32 over [type, key, value]
///   u8  type (1 = put, 2 = delete)
///   length-prefixed key, length-prefixed value (empty for delete)
///
/// `Open` replays the log to rebuild the index; a torn or corrupt tail
/// record (e.g. a crash mid-append) is detected via CRC and the log is
/// truncated at the last valid record, so a crashed writer never poisons
/// the store. The truncation itself is fsynced (file + directory), so
/// the repaired state survives a second crash. A failed append is
/// truncated back to the last known-good length, so one I/O error does
/// not strand a torn record in front of later appends. `Compact()`
/// rewrites only live records through an atomic rename.
/// Automatic compaction policy for a KvStore: the log is rewritten when
/// it holds more than `max_garbage_ratio` times the live data and
/// exceeds `min_log_bytes` (so small stores never churn).
struct KvCompactionPolicy {
  double max_garbage_ratio = 4.0;
  uint64_t min_log_bytes = 64 * 1024;
  /// Disables automatic compaction entirely (manual Compact() only).
  bool automatic = true;
};

class KvStore {
 public:
  /// `fs` is the filesystem seam every durable op goes through; nullptr
  /// means the real filesystem (see common/fs.h).
  static Result<std::unique_ptr<KvStore>> Open(
      const std::string& path, const KvCompactionPolicy& policy = {},
      Fs* fs = nullptr);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(const std::string& key, std::string_view value);

  Result<std::string> Get(const std::string& key) const;

  bool Contains(const std::string& key) const;

  /// Removes a key. OK even if absent (idempotent).
  Status Delete(const std::string& key);

  /// All keys with the given prefix, sorted.
  std::vector<std::string> ScanPrefix(const std::string& prefix) const;

  size_t Count() const { return index_.size(); }

  /// Bytes in the log file; the live/log ratio drives auto-compaction.
  uint64_t LogBytes() const { return log_bytes_; }

  /// Bytes the live records would occupy after compaction.
  uint64_t LiveBytes() const { return live_bytes_; }

  /// Number of automatic compactions performed so far.
  uint64_t CompactionCount() const { return compaction_count_; }

  /// Rewrites the log with only live records. Safe against crashes
  /// (temp + rename).
  Status Compact();

  /// Flushes the log to stable storage (no-op under MLAKE_NO_FSYNC or
  /// when the log does not exist yet). Appends are not individually
  /// fsynced; callers that need a durability point (the lake's intent
  /// commit) call this once per batch.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  KvStore(std::string path, const KvCompactionPolicy& policy, Fs* fs)
      : path_(std::move(path)), policy_(policy), fs_(fs) {}

  Status Replay();
  Status AppendRecord(uint8_t type, const std::string& key,
                      std::string_view value);
  Status MaybeAutoCompact();
  static std::string EncodeRecord(uint8_t type, const std::string& key,
                                  std::string_view value);
  static uint64_t RecordSize(const std::string& key, std::string_view value);

  std::string path_;
  KvCompactionPolicy policy_;
  Fs* fs_;  // never null; the storage seam (common/fs.h)
  std::map<std::string, std::string> index_;
  uint64_t log_bytes_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t compaction_count_ = 0;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_KV_STORE_H_
