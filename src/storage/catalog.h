#ifndef MLAKE_STORAGE_CATALOG_H_
#define MLAKE_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "storage/kv_store.h"

namespace mlake::storage {

/// Namespaced JSON-document catalog on top of the KV store.
///
/// Keys are "<kind>/<id>" where kind is one of the lake's entity kinds
/// ("model", "card", "edge", "benchmark", ...). All lake metadata that
/// is not raw weights lives here.
class Catalog {
 public:
  /// `fs` is the storage seam (nullptr = real filesystem).
  static Result<std::unique_ptr<Catalog>> Open(const std::string& path,
                                               Fs* fs = nullptr);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status PutDoc(const std::string& kind, const std::string& id,
                const Json& doc);

  Result<Json> GetDoc(const std::string& kind, const std::string& id) const;

  bool Contains(const std::string& kind, const std::string& id) const;

  Status DeleteDoc(const std::string& kind, const std::string& id);

  /// All ids of a kind, sorted.
  std::vector<std::string> ListIds(const std::string& kind) const;

  size_t CountKind(const std::string& kind) const {
    return ListIds(kind).size();
  }

  /// Compacts the underlying log.
  Status Compact() { return kv_->Compact(); }

  /// Durability point: fsyncs the underlying log (see KvStore::Sync).
  Status Sync() { return kv_->Sync(); }

  KvStore* kv() { return kv_.get(); }

 private:
  explicit Catalog(std::unique_ptr<KvStore> kv) : kv_(std::move(kv)) {}

  static std::string KeyFor(const std::string& kind, const std::string& id) {
    return kind + "/" + id;
  }

  std::unique_ptr<KvStore> kv_;
};

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_CATALOG_H_
