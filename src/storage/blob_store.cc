#include "storage/blob_store.h"

#include <algorithm>
#include <filesystem>

#include "common/file_util.h"
#include "common/hash.h"

namespace mlake::storage {

namespace fs = std::filesystem;

Result<BlobStore> BlobStore::Open(const std::string& root) {
  MLAKE_RETURN_NOT_OK(CreateDirs(JoinPath(root, "objects")));
  return BlobStore(root);
}

std::string BlobStore::PathFor(const std::string& digest) const {
  return JoinPath(JoinPath(root_, "objects"),
                  digest.substr(0, 2) + "/" + digest);
}

Result<std::string> BlobStore::Put(std::string_view bytes) {
  std::string digest = Sha256::HexDigest(bytes);
  std::string path = PathFor(digest);
  if (FileExists(path)) return digest;  // dedup
  MLAKE_RETURN_NOT_OK(
      CreateDirs(JoinPath(JoinPath(root_, "objects"), digest.substr(0, 2))));
  MLAKE_RETURN_NOT_OK(WriteFileAtomic(path, bytes));
  return digest;
}

Result<std::string> BlobStore::Get(const std::string& digest) const {
  if (digest.size() != 64) {
    return Status::InvalidArgument("blob digest must be 64 hex chars");
  }
  std::string path = PathFor(digest);
  if (!FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  MLAKE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  if (Sha256::HexDigest(bytes) != digest) {
    return Status::Corruption("blob content mismatch: " + digest);
  }
  return bytes;
}

bool BlobStore::Contains(const std::string& digest) const {
  return digest.size() == 64 && FileExists(PathFor(digest));
}

Status BlobStore::Delete(const std::string& digest) {
  std::string path = PathFor(digest);
  if (!FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  return RemoveFile(path);
}

Result<std::vector<std::string>> BlobStore::List() const {
  std::vector<std::string> digests;
  std::error_code ec;
  fs::path objects = fs::path(root_) / "objects";
  for (const auto& bucket : fs::directory_iterator(objects, ec)) {
    if (!bucket.is_directory()) continue;
    std::error_code ec2;
    for (const auto& blob : fs::directory_iterator(bucket.path(), ec2)) {
      if (blob.is_regular_file()) {
        digests.push_back(blob.path().filename().string());
      }
    }
  }
  if (ec) return Status::IOError("cannot list blob store");
  std::sort(digests.begin(), digests.end());
  return digests;
}

Result<std::vector<std::string>> BlobStore::VerifyAll() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  std::vector<std::string> corrupted;
  for (const std::string& digest : digests) {
    auto bytes = ReadFile(PathFor(digest));
    if (!bytes.ok() || Sha256::HexDigest(bytes.ValueUnsafe()) != digest) {
      corrupted.push_back(digest);
    }
  }
  return corrupted;
}

Result<uint64_t> BlobStore::TotalBytes() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  uint64_t total = 0;
  for (const std::string& digest : digests) {
    MLAKE_ASSIGN_OR_RETURN(uint64_t size, FileSize(PathFor(digest)));
    total += size;
  }
  return total;
}

}  // namespace mlake::storage
