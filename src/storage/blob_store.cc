#include "storage/blob_store.h"

#include <algorithm>
#include <cctype>

#include "common/file_util.h"
#include "common/hash.h"

namespace mlake::storage {

namespace {
bool IsHexDigest(const std::string& name) {
  if (name.size() != 64) return false;
  for (char c : name) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}
}  // namespace

Result<BlobStore> BlobStore::Open(const std::string& root,
                                  const BlobStoreOptions& options) {
  BlobStore store(root, options);
  MLAKE_RETURN_NOT_OK(store.fs_->CreateDirs(JoinPath(root, "objects")));
  return store;
}

std::string BlobStore::PathFor(const std::string& digest) const {
  return JoinPath(JoinPath(root_, "objects"),
                  digest.substr(0, 2) + "/" + digest);
}

std::string BlobStore::QuarantinePathFor(const std::string& digest) const {
  return JoinPath(JoinPath(root_, "quarantine"), digest);
}

Result<std::string> BlobStore::Put(std::string_view bytes) {
  std::string digest = Sha256::HexDigest(bytes);
  std::string path = PathFor(digest);
  if (fs_->FileExists(path)) return digest;  // dedup
  // The whole write sequence is idempotent (mkdir -p semantics; fresh
  // temp name per attempt), so a transient failure anywhere in it is
  // safe to retry.
  std::string bucket =
      JoinPath(JoinPath(root_, "objects"), digest.substr(0, 2));
  MLAKE_RETURN_NOT_OK(RetryTransient(options_.retry, [&]() -> Status {
    MLAKE_RETURN_NOT_OK(fs_->CreateDirs(bucket));
    return WriteFileAtomic(fs_, path, bytes);
  }));
  return digest;
}

bool BlobStore::NeedsVerify(const std::string& digest,
                            VerifyMode mode) const {
  switch (mode) {
    case VerifyMode::kAlways:
      return true;
    case VerifyMode::kNever:
      return false;
    case VerifyMode::kOnFirstRead: {
      std::lock_guard<std::mutex> lock(verified_->mu);
      return verified_->digests.count(digest) == 0;
    }
  }
  return true;
}

Status BlobStore::VerifyView(const BlobView& view,
                             const std::string& digest) const {
  // Hash outside the lock: concurrent first reads of distinct blobs
  // must not serialize on a whole-file SHA-256.
  bool match = Sha256::HexDigest(view.bytes()) == digest;
  std::lock_guard<std::mutex> lock(verified_->mu);
  if (!match) {
    // Drop any stale verification (a blob can rot after its first
    // read; a later kAlways audit must not leave it whitelisted).
    verified_->digests.erase(digest);
    return Status::Corruption("blob content mismatch: " + digest);
  }
  verified_->digests.insert(digest);
  return Status::OK();
}

Result<BlobView> BlobStore::OpenView(const std::string& path) const {
  if (options_.use_mmap) {
    auto mapped = fs_->Mmap(path);
    if (mapped.ok()) {
      return BlobView(mapped.MoveValueUnsafe());
    }
  }
  // Copying fallback: mmap disabled, unavailable on this platform, or
  // refused by the filesystem (fault injection routes reads here).
  MLAKE_ASSIGN_OR_RETURN(std::string bytes, fs_->ReadFile(path));
  return BlobView(std::move(bytes));
}

Result<BlobView> BlobStore::GetView(const std::string& digest) const {
  return GetView(digest, options_.verify);
}

Result<BlobView> BlobStore::GetView(const std::string& digest,
                                    VerifyMode mode) const {
  if (digest.size() != 64) {
    return Status::InvalidArgument("blob digest must be 64 hex chars");
  }
  std::string path = PathFor(digest);
  if (!fs_->FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  // Transient read faults (Unavailable) retry with backoff; corruption
  // below never does — rereading wrong bytes cannot make them right.
  MLAKE_ASSIGN_OR_RETURN(
      BlobView view,
      RetryTransient<BlobView>(options_.retry, [&]() -> Result<BlobView> {
        return OpenView(path);
      }));
  if (NeedsVerify(digest, mode)) {
    MLAKE_RETURN_NOT_OK(VerifyView(view, digest));
  }
  return view;
}

Result<std::string> BlobStore::Get(const std::string& digest) const {
  MLAKE_ASSIGN_OR_RETURN(BlobView view, GetView(digest));
  return std::string(view.bytes());
}

bool BlobStore::Contains(const std::string& digest) const {
  return digest.size() == 64 && fs_->FileExists(PathFor(digest));
}

Status BlobStore::Delete(const std::string& digest) {
  std::string path = PathFor(digest);
  if (!fs_->FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  {
    std::lock_guard<std::mutex> lock(verified_->mu);
    verified_->digests.erase(digest);
  }
  return fs_->RemoveFile(path);
}

Status BlobStore::Quarantine(const std::string& digest) {
  std::string path = PathFor(digest);
  std::string qpath = QuarantinePathFor(digest);
  if (!fs_->FileExists(path)) {
    if (fs_->FileExists(qpath)) return Status::OK();  // already moved
    return Status::NotFound("blob not found: " + digest);
  }
  MLAKE_RETURN_NOT_OK(fs_->CreateDirs(JoinPath(root_, "quarantine")));
  MLAKE_RETURN_NOT_OK(fs_->Rename(path, qpath));
  if (FsyncEnabled()) {
    // Make the disappearance from objects/ durable: a crash must not
    // resurrect a blob the catalog already marked degraded.
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(
        JoinPath(JoinPath(root_, "objects"), digest.substr(0, 2))));
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(JoinPath(root_, "quarantine")));
  }
  std::lock_guard<std::mutex> lock(verified_->mu);
  verified_->digests.erase(digest);
  return Status::OK();
}

Result<std::vector<std::string>> BlobStore::ListQuarantined() const {
  std::string dir = JoinPath(root_, "quarantine");
  if (!fs_->FileExists(dir)) return std::vector<std::string>{};
  return fs_->ListDir(dir);
}

Status BlobStore::RemoveStrayTmp(size_t* removed) {
  std::string objects = JoinPath(root_, "objects");
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> buckets,
                         fs_->ListSubdirs(objects));
  for (const std::string& bucket : buckets) {
    MLAKE_RETURN_NOT_OK(
        RemoveStrayTmpFiles(fs_, JoinPath(objects, bucket), removed));
  }
  return Status::OK();
}

Result<std::vector<std::string>> BlobStore::List() const {
  std::string objects = JoinPath(root_, "objects");
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> buckets,
                         fs_->ListSubdirs(objects));
  std::vector<std::string> digests;
  for (const std::string& bucket : buckets) {
    MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           fs_->ListDir(JoinPath(objects, bucket)));
    for (const std::string& name : names) {
      // Skip non-blob residue (stray temp files awaiting cleanup).
      if (IsHexDigest(name)) digests.push_back(name);
    }
  }
  std::sort(digests.begin(), digests.end());
  return digests;
}

Result<std::vector<std::string>> BlobStore::VerifyAll() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  std::vector<std::string> corrupted;
  for (const std::string& digest : digests) {
    // Force a re-hash regardless of the store policy or verified set:
    // VerifyAll is the integrity audit, not a cached read.
    auto view = GetView(digest, VerifyMode::kAlways);
    if (!view.ok()) corrupted.push_back(digest);
  }
  return corrupted;
}

Result<uint64_t> BlobStore::TotalBytes() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  uint64_t total = 0;
  for (const std::string& digest : digests) {
    MLAKE_ASSIGN_OR_RETURN(uint64_t size, fs_->FileSize(PathFor(digest)));
    total += size;
  }
  return total;
}

size_t BlobStore::NumVerified() const {
  std::lock_guard<std::mutex> lock(verified_->mu);
  return verified_->digests.size();
}

}  // namespace mlake::storage
