#include "storage/blob_store.h"

#include <algorithm>
#include <filesystem>

#include "common/file_util.h"
#include "common/hash.h"

namespace mlake::storage {

namespace fs = std::filesystem;

Result<BlobStore> BlobStore::Open(const std::string& root,
                                  const BlobStoreOptions& options) {
  MLAKE_RETURN_NOT_OK(CreateDirs(JoinPath(root, "objects")));
  return BlobStore(root, options);
}

std::string BlobStore::PathFor(const std::string& digest) const {
  return JoinPath(JoinPath(root_, "objects"),
                  digest.substr(0, 2) + "/" + digest);
}

Result<std::string> BlobStore::Put(std::string_view bytes) {
  std::string digest = Sha256::HexDigest(bytes);
  std::string path = PathFor(digest);
  if (FileExists(path)) return digest;  // dedup
  MLAKE_RETURN_NOT_OK(
      CreateDirs(JoinPath(JoinPath(root_, "objects"), digest.substr(0, 2))));
  MLAKE_RETURN_NOT_OK(WriteFileAtomic(path, bytes));
  return digest;
}

bool BlobStore::NeedsVerify(const std::string& digest,
                            VerifyMode mode) const {
  switch (mode) {
    case VerifyMode::kAlways:
      return true;
    case VerifyMode::kNever:
      return false;
    case VerifyMode::kOnFirstRead: {
      std::lock_guard<std::mutex> lock(verified_->mu);
      return verified_->digests.count(digest) == 0;
    }
  }
  return true;
}

Status BlobStore::VerifyView(const BlobView& view,
                             const std::string& digest) const {
  // Hash outside the lock: concurrent first reads of distinct blobs
  // must not serialize on a whole-file SHA-256.
  bool match = Sha256::HexDigest(view.bytes()) == digest;
  std::lock_guard<std::mutex> lock(verified_->mu);
  if (!match) {
    // Drop any stale verification (a blob can rot after its first
    // read; a later kAlways audit must not leave it whitelisted).
    verified_->digests.erase(digest);
    return Status::Corruption("blob content mismatch: " + digest);
  }
  verified_->digests.insert(digest);
  return Status::OK();
}

Result<BlobView> BlobStore::GetView(const std::string& digest) const {
  return GetView(digest, options_.verify);
}

Result<BlobView> BlobStore::GetView(const std::string& digest,
                                    VerifyMode mode) const {
  if (digest.size() != 64) {
    return Status::InvalidArgument("blob digest must be 64 hex chars");
  }
  std::string path = PathFor(digest);
  if (!FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  BlobView view;
  if (options_.use_mmap) {
    auto mapped = MmapFile::Open(path);
    if (mapped.ok()) {
      view = BlobView(mapped.MoveValueUnsafe());
    }
  }
  if (!view.mmapped()) {
    // Copying fallback: mmap disabled, unavailable on this platform, or
    // refused by the filesystem.
    MLAKE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
    view = BlobView(std::move(bytes));
  }
  if (NeedsVerify(digest, mode)) {
    MLAKE_RETURN_NOT_OK(VerifyView(view, digest));
  }
  return view;
}

Result<std::string> BlobStore::Get(const std::string& digest) const {
  MLAKE_ASSIGN_OR_RETURN(BlobView view, GetView(digest));
  return std::string(view.bytes());
}

bool BlobStore::Contains(const std::string& digest) const {
  return digest.size() == 64 && FileExists(PathFor(digest));
}

Status BlobStore::Delete(const std::string& digest) {
  std::string path = PathFor(digest);
  if (!FileExists(path)) {
    return Status::NotFound("blob not found: " + digest);
  }
  {
    std::lock_guard<std::mutex> lock(verified_->mu);
    verified_->digests.erase(digest);
  }
  return RemoveFile(path);
}

Result<std::vector<std::string>> BlobStore::List() const {
  std::vector<std::string> digests;
  std::error_code ec;
  fs::path objects = fs::path(root_) / "objects";
  for (const auto& bucket : fs::directory_iterator(objects, ec)) {
    if (!bucket.is_directory()) continue;
    std::error_code ec2;
    for (const auto& blob : fs::directory_iterator(bucket.path(), ec2)) {
      if (blob.is_regular_file()) {
        digests.push_back(blob.path().filename().string());
      }
    }
  }
  if (ec) return Status::IOError("cannot list blob store");
  std::sort(digests.begin(), digests.end());
  return digests;
}

Result<std::vector<std::string>> BlobStore::VerifyAll() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  std::vector<std::string> corrupted;
  for (const std::string& digest : digests) {
    // Force a re-hash regardless of the store policy or verified set:
    // VerifyAll is the integrity audit, not a cached read.
    auto view = GetView(digest, VerifyMode::kAlways);
    if (!view.ok()) corrupted.push_back(digest);
  }
  return corrupted;
}

Result<uint64_t> BlobStore::TotalBytes() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, List());
  uint64_t total = 0;
  for (const std::string& digest : digests) {
    MLAKE_ASSIGN_OR_RETURN(uint64_t size, FileSize(PathFor(digest)));
    total += size;
  }
  return total;
}

size_t BlobStore::NumVerified() const {
  std::lock_guard<std::mutex> lock(verified_->mu);
  return verified_->digests.size();
}

}  // namespace mlake::storage
