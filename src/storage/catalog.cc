#include "storage/catalog.h"

namespace mlake::storage {

Result<std::unique_ptr<Catalog>> Catalog::Open(const std::string& path,
                                               Fs* fs) {
  MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<KvStore> kv,
                         KvStore::Open(path, {}, fs));
  return std::unique_ptr<Catalog>(new Catalog(std::move(kv)));
}

Status Catalog::PutDoc(const std::string& kind, const std::string& id,
                       const Json& doc) {
  if (kind.empty() || id.empty()) {
    return Status::InvalidArgument("catalog: empty kind or id");
  }
  if (kind.find('/') != std::string::npos) {
    return Status::InvalidArgument("catalog: kind must not contain '/'");
  }
  return kv_->Put(KeyFor(kind, id), doc.Dump());
}

Result<Json> Catalog::GetDoc(const std::string& kind,
                             const std::string& id) const {
  MLAKE_ASSIGN_OR_RETURN(std::string raw, kv_->Get(KeyFor(kind, id)));
  return Json::Parse(raw);
}

bool Catalog::Contains(const std::string& kind, const std::string& id) const {
  return kv_->Contains(KeyFor(kind, id));
}

Status Catalog::DeleteDoc(const std::string& kind, const std::string& id) {
  return kv_->Delete(KeyFor(kind, id));
}

std::vector<std::string> Catalog::ListIds(const std::string& kind) const {
  std::string prefix = kind + "/";
  std::vector<std::string> ids;
  for (const std::string& key : kv_->ScanPrefix(prefix)) {
    ids.push_back(key.substr(prefix.size()));
  }
  return ids;
}

}  // namespace mlake::storage
