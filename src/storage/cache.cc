#include "storage/cache.h"

namespace mlake::storage {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  bytes += other.bytes;
  entries += other.entries;
  capacity += other.capacity;
  return *this;
}

double CacheStats::HitRate() const {
  uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

Json CacheStatsToJson(const CacheStats& stats) {
  Json out = Json::MakeObject();
  out.Set("hits", static_cast<int64_t>(stats.hits));
  out.Set("misses", static_cast<int64_t>(stats.misses));
  out.Set("evictions", static_cast<int64_t>(stats.evictions));
  out.Set("bytes", static_cast<int64_t>(stats.bytes));
  out.Set("entries", static_cast<int64_t>(stats.entries));
  out.Set("capacity", static_cast<int64_t>(stats.capacity));
  out.Set("hit_rate", stats.HitRate());
  return out;
}

}  // namespace mlake::storage
