#include "storage/intent_journal.h"

#include <algorithm>

#include "common/file_util.h"

namespace mlake::storage {

namespace {
constexpr std::string_view kIntentSuffix = ".intent";
constexpr std::string_view kCommittedSuffix = ".op";
// Durable truncation floor: Truncate() writes the highest GC'd seq here
// before removing anything, so a crashed GC can't resurrect entries and
// a fully-truncated journal still reopens with strictly-increasing seqs.
constexpr std::string_view kTruncatedMarker = "TRUNCATED";
// Durable replication epoch (term) for fencing stale leaders.
constexpr std::string_view kEpochMarker = "EPOCH";

/// Parses "<seq><suffix>" -> seq; 0 when the name doesn't match.
uint64_t SeqFromName(const std::string& name, std::string_view suffix) {
  if (name.size() <= suffix.size()) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return 0;
  }
  std::string stem = name.substr(0, name.size() - suffix.size());
  if (stem.empty()) return 0;
  uint64_t seq = 0;
  for (char c : stem) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

Result<uint64_t> ReadCounterFile(Fs* fs, const std::string& path) {
  if (!fs->FileExists(path)) return uint64_t{0};
  MLAKE_ASSIGN_OR_RETURN(std::string raw, fs->ReadFile(path));
  uint64_t value = 0;
  for (char c : raw) {
    if (c == '\n' || c == '\r') break;
    if (c < '0' || c > '9') {
      return Status::Corruption("journal marker " + path +
                                ": non-numeric content");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}
}  // namespace

Json Intent::ToJson() const {
  Json ids_json = Json::MakeArray();
  for (const std::string& id : ids) ids_json.Append(Json(id));
  Json digests_json = Json::MakeArray();
  for (const std::string& d : digests) digests_json.Append(Json(d));
  Json j = Json::MakeObject();
  j.Set("seq", Json(seq));
  if (epoch != 0) j.Set("epoch", Json(epoch));
  j.Set("op", Json(op));
  j.Set("ids", std::move(ids_json));
  j.Set("digests", std::move(digests_json));
  if (!payload.is_null()) j.Set("payload", payload);
  return j;
}

Result<Intent> Intent::FromJson(const Json& j) {
  if (!j.is_object()) return Status::Corruption("intent: not an object");
  Intent intent;
  intent.seq = static_cast<uint64_t>(j.GetInt64("seq", 0));
  intent.epoch = static_cast<uint64_t>(j.GetInt64("epoch", 0));
  intent.op = j.GetString("op");
  if (intent.op.empty()) return Status::Corruption("intent: missing op");
  const Json* ids = j.Find("ids");
  if (ids != nullptr && ids->is_array()) {
    for (const Json& id : ids->AsArray()) {
      if (!id.is_string()) return Status::Corruption("intent: non-string id");
      intent.ids.push_back(id.AsString());
    }
  }
  const Json* digests = j.Find("digests");
  if (digests != nullptr && digests->is_array()) {
    for (const Json& d : digests->AsArray()) {
      if (!d.is_string()) {
        return Status::Corruption("intent: non-string digest");
      }
      intent.digests.push_back(d.AsString());
    }
  }
  const Json* payload = j.Find("payload");
  if (payload != nullptr) intent.payload = *payload;
  return intent;
}

Result<IntentJournal> IntentJournal::Open(const std::string& dir, Fs* fs,
                                          bool retain_committed) {
  if (fs == nullptr) fs = RealFs();
  IntentJournal journal(dir, fs, retain_committed);
  MLAKE_RETURN_NOT_OK(fs->CreateDirs(dir));
  // Resume the sequence above every file present — pending *and*
  // committed, including ones whose content is unreadable, so neither a
  // corrupt pending intent nor a retained log entry can cause a seq
  // collision on reopen.
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    uint64_t committed = SeqFromName(name, kCommittedSuffix);
    if (committed > journal.last_committed_seq_) {
      journal.last_committed_seq_ = committed;
    }
    uint64_t seq = SeqFromName(name, kIntentSuffix);
    if (seq == 0) seq = committed;
    if (seq >= journal.next_seq_) journal.next_seq_ = seq + 1;
  }
  MLAKE_ASSIGN_OR_RETURN(
      journal.truncated_upto_,
      ReadCounterFile(fs, JoinPath(dir, std::string(kTruncatedMarker))));
  if (journal.truncated_upto_ >= journal.next_seq_) {
    journal.next_seq_ = journal.truncated_upto_ + 1;
  }
  if (journal.truncated_upto_ > journal.last_committed_seq_) {
    journal.last_committed_seq_ = journal.truncated_upto_;
  }
  MLAKE_ASSIGN_OR_RETURN(
      journal.epoch_,
      ReadCounterFile(fs, JoinPath(dir, std::string(kEpochMarker))));
  return journal;
}

std::string IntentJournal::PathFor(uint64_t seq) const {
  return JoinPath(dir_, std::to_string(seq) + std::string(kIntentSuffix));
}

std::string IntentJournal::CommittedPathFor(uint64_t seq) const {
  return JoinPath(dir_, std::to_string(seq) + std::string(kCommittedSuffix));
}

Result<uint64_t> IntentJournal::Begin(const Intent& intent) {
  uint64_t seq = next_seq_++;
  Intent stamped = intent;
  stamped.seq = seq;
  stamped.epoch = epoch_;
  // WriteFileAtomic fsyncs the file and the journal dir, so the intent
  // is on disk before the caller mutates anything it describes.
  MLAKE_RETURN_NOT_OK(
      WriteFileAtomic(fs_, PathFor(seq), stamped.ToJson().Dump()));
  return seq;
}

Result<uint64_t> IntentJournal::BeginAt(uint64_t seq, const Intent& intent) {
  if (seq == 0) return Status::InvalidArgument("BeginAt: seq must be > 0");
  if (seq <= truncated_upto_) {
    return Status::FailedPrecondition(
        "BeginAt: seq " + std::to_string(seq) + " already truncated (floor " +
        std::to_string(truncated_upto_) + ")");
  }
  if (fs_->FileExists(PathFor(seq)) ||
      fs_->FileExists(CommittedPathFor(seq))) {
    return Status::AlreadyExists("BeginAt: seq " + std::to_string(seq) +
                                 " already in the journal");
  }
  Intent stamped = intent;
  stamped.seq = seq;  // epoch kept: the originating leader's stamp
  MLAKE_RETURN_NOT_OK(
      WriteFileAtomic(fs_, PathFor(seq), stamped.ToJson().Dump()));
  if (seq >= next_seq_) next_seq_ = seq + 1;
  return seq;
}

Status IntentJournal::Commit(uint64_t seq) {
  std::string path = PathFor(seq);
  if (!fs_->FileExists(path)) return Status::OK();
  if (retain_committed_) {
    // The rename is the commit record: the entry leaves the pending set
    // atomically but stays on disk as a replayable log entry.
    MLAKE_RETURN_NOT_OK(fs_->Rename(path, CommittedPathFor(seq)));
  } else {
    // The removal is the commit record.
    MLAKE_RETURN_NOT_OK(fs_->RemoveFile(path));
  }
  if (FsyncEnabled()) {
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(dir_));
  }
  if (seq > last_committed_seq_) last_committed_seq_ = seq;
  return Status::OK();
}

Status IntentJournal::Abort(uint64_t seq) {
  std::string path = PathFor(seq);
  if (!fs_->FileExists(path)) return Status::OK();
  MLAKE_RETURN_NOT_OK(fs_->RemoveFile(path));
  if (FsyncEnabled()) {
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(dir_));
  }
  return Status::OK();
}

Result<std::vector<Intent>> IntentJournal::Pending() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = SeqFromName(name, kIntentSuffix);
    if (seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  std::vector<Intent> pending;
  for (uint64_t seq : seqs) {
    MLAKE_ASSIGN_OR_RETURN(std::string raw, fs_->ReadFile(PathFor(seq)));
    MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(raw));
    MLAKE_ASSIGN_OR_RETURN(Intent intent, Intent::FromJson(j));
    intent.seq = seq;  // the file name is authoritative
    pending.push_back(std::move(intent));
  }
  return pending;
}

Result<std::vector<Intent>> IntentJournal::Committed(uint64_t from_seq,
                                                     size_t max) const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = SeqFromName(name, kCommittedSuffix);
    if (seq >= from_seq && seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  if (seqs.size() > max) seqs.resize(max);
  std::vector<Intent> committed;
  for (uint64_t seq : seqs) {
    MLAKE_ASSIGN_OR_RETURN(std::string raw,
                           fs_->ReadFile(CommittedPathFor(seq)));
    MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(raw));
    MLAKE_ASSIGN_OR_RETURN(Intent intent, Intent::FromJson(j));
    intent.seq = seq;  // the file name is authoritative
    committed.push_back(std::move(intent));
  }
  return committed;
}

Status IntentJournal::Truncate(uint64_t upto_seq) {
  if (upto_seq <= truncated_upto_) return Status::OK();
  // Persist the floor before removing anything: after a crash anywhere
  // past this write, reopen sees the marker and keeps next_seq_ above
  // the truncated range even if every entry file is already gone.
  MLAKE_RETURN_NOT_OK(
      WriteFileAtomic(fs_, JoinPath(dir_, std::string(kTruncatedMarker)),
                      std::to_string(upto_seq) + "\n"));
  truncated_upto_ = upto_seq;
  if (upto_seq > last_committed_seq_) last_committed_seq_ = upto_seq;
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  for (const std::string& name : names) {
    uint64_t seq = SeqFromName(name, kCommittedSuffix);
    if (seq != 0 && seq <= upto_seq) {
      MLAKE_RETURN_NOT_OK(fs_->RemoveFile(JoinPath(dir_, name)));
    }
  }
  // One dir fsync covers every removal: the GC is durable, so a crash
  // can't resurrect an applied entry into a later Committed() scan.
  if (FsyncEnabled()) {
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(dir_));
  }
  return Status::OK();
}

Status IntentJournal::SetEpoch(uint64_t epoch) {
  if (epoch < epoch_) {
    return Status::FailedPrecondition(
        "journal epoch is monotonic: have " + std::to_string(epoch_) +
        ", refusing " + std::to_string(epoch));
  }
  if (epoch == epoch_) return Status::OK();
  MLAKE_RETURN_NOT_OK(
      WriteFileAtomic(fs_, JoinPath(dir_, std::string(kEpochMarker)),
                      std::to_string(epoch) + "\n"));
  epoch_ = epoch;
  return Status::OK();
}

Status IntentJournal::RemoveStrayTmp(size_t* removed) {
  return RemoveStrayTmpFiles(fs_, dir_, removed);
}

}  // namespace mlake::storage
