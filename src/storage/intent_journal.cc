#include "storage/intent_journal.h"

#include <algorithm>

#include "common/file_util.h"

namespace mlake::storage {

namespace {
constexpr std::string_view kIntentSuffix = ".intent";

/// Parses "<seq>.intent" -> seq; 0 when the name is not an intent file.
uint64_t SeqFromName(const std::string& name) {
  if (name.size() <= kIntentSuffix.size()) return 0;
  if (name.compare(name.size() - kIntentSuffix.size(), kIntentSuffix.size(),
                   kIntentSuffix) != 0) {
    return 0;
  }
  std::string stem = name.substr(0, name.size() - kIntentSuffix.size());
  if (stem.empty()) return 0;
  uint64_t seq = 0;
  for (char c : stem) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}
}  // namespace

Json Intent::ToJson() const {
  Json ids_json = Json::MakeArray();
  for (const std::string& id : ids) ids_json.Append(Json(id));
  Json digests_json = Json::MakeArray();
  for (const std::string& d : digests) digests_json.Append(Json(d));
  Json j = Json::MakeObject();
  j.Set("seq", Json(seq));
  j.Set("op", Json(op));
  j.Set("ids", std::move(ids_json));
  j.Set("digests", std::move(digests_json));
  return j;
}

Result<Intent> Intent::FromJson(const Json& j) {
  if (!j.is_object()) return Status::Corruption("intent: not an object");
  Intent intent;
  intent.seq = static_cast<uint64_t>(j.GetInt64("seq", 0));
  intent.op = j.GetString("op");
  if (intent.op.empty()) return Status::Corruption("intent: missing op");
  const Json* ids = j.Find("ids");
  if (ids != nullptr && ids->is_array()) {
    for (const Json& id : ids->AsArray()) {
      if (!id.is_string()) return Status::Corruption("intent: non-string id");
      intent.ids.push_back(id.AsString());
    }
  }
  const Json* digests = j.Find("digests");
  if (digests != nullptr && digests->is_array()) {
    for (const Json& d : digests->AsArray()) {
      if (!d.is_string()) {
        return Status::Corruption("intent: non-string digest");
      }
      intent.digests.push_back(d.AsString());
    }
  }
  return intent;
}

Result<IntentJournal> IntentJournal::Open(const std::string& dir, Fs* fs) {
  if (fs == nullptr) fs = RealFs();
  IntentJournal journal(dir, fs);
  MLAKE_RETURN_NOT_OK(fs->CreateDirs(dir));
  // Resume the sequence above every file present — including ones whose
  // content is unreadable, so a corrupt pending intent cannot cause a
  // seq collision.
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    uint64_t seq = SeqFromName(name);
    if (seq >= journal.next_seq_) journal.next_seq_ = seq + 1;
  }
  return journal;
}

std::string IntentJournal::PathFor(uint64_t seq) const {
  return JoinPath(dir_, std::to_string(seq) + std::string(kIntentSuffix));
}

Result<uint64_t> IntentJournal::Begin(const Intent& intent) {
  uint64_t seq = next_seq_++;
  Intent stamped = intent;
  stamped.seq = seq;
  // WriteFileAtomic fsyncs the file and the journal dir, so the intent
  // is on disk before the caller mutates anything it describes.
  MLAKE_RETURN_NOT_OK(
      WriteFileAtomic(fs_, PathFor(seq), stamped.ToJson().Dump()));
  return seq;
}

Status IntentJournal::Commit(uint64_t seq) {
  std::string path = PathFor(seq);
  if (!fs_->FileExists(path)) return Status::OK();
  MLAKE_RETURN_NOT_OK(fs_->RemoveFile(path));
  // The removal is the commit record; it must survive a crash or the
  // next open would roll back a fully-applied mutation.
  if (FsyncEnabled()) {
    MLAKE_RETURN_NOT_OK(fs_->SyncDir(dir_));
  }
  return Status::OK();
}

Result<std::vector<Intent>> IntentJournal::Pending() const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs_->ListDir(dir_));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = SeqFromName(name);
    if (seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  std::vector<Intent> pending;
  for (uint64_t seq : seqs) {
    MLAKE_ASSIGN_OR_RETURN(std::string raw, fs_->ReadFile(PathFor(seq)));
    MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(raw));
    MLAKE_ASSIGN_OR_RETURN(Intent intent, Intent::FromJson(j));
    intent.seq = seq;  // the file name is authoritative
    pending.push_back(std::move(intent));
  }
  return pending;
}

Status IntentJournal::RemoveStrayTmp(size_t* removed) {
  return RemoveStrayTmpFiles(fs_, dir_, removed);
}

}  // namespace mlake::storage
