#include "storage/model_artifact.h"

#include "common/hash.h"
#include "common/string_util.h"
#include "tensor/serialize.h"

namespace mlake::storage {

namespace {
constexpr char kMagic[8] = {'M', 'L', 'A', 'K', 'E', 'A', 'R', '1'};

void AppendSection(std::string* out, std::string_view name,
                   std::string_view payload) {
  PutLengthPrefixed(out, name);
  PutU32(out, Crc32(payload));
  PutLengthPrefixed(out, payload);
}
}  // namespace

std::string SerializeArtifact(const ModelArtifact& artifact) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kArtifactFormatVersion);
  uint32_t sections = 2 + static_cast<uint32_t>(artifact.weights.size());
  PutU32(&out, sections);
  AppendSection(&out, "arch", artifact.spec.ToJson().Dump());
  AppendSection(&out, "meta", artifact.meta.Dump());
  for (const auto& [name, tensor] : artifact.weights) {
    AppendSection(&out, "w:" + name, TensorToBytes(tensor));
  }
  return out;
}

Result<ModelArtifact> ParseArtifact(std::string_view bytes) {
  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.GetBytes(sizeof(kMagic), &magic) ||
      magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::Corruption("artifact: bad magic");
  }
  uint32_t version;
  if (!reader.GetU32(&version)) {
    return Status::Corruption("artifact: truncated version");
  }
  if (version != kArtifactFormatVersion) {
    return Status::Corruption(
        StrFormat("artifact: unsupported format version %u", version));
  }
  uint32_t sections;
  if (!reader.GetU32(&sections)) {
    return Status::Corruption("artifact: truncated section count");
  }
  ModelArtifact artifact;
  bool saw_arch = false;
  for (uint32_t i = 0; i < sections; ++i) {
    std::string_view name, payload;
    uint32_t crc;
    if (!reader.GetLengthPrefixed(&name) || !reader.GetU32(&crc) ||
        !reader.GetLengthPrefixed(&payload)) {
      return Status::Corruption("artifact: truncated section");
    }
    if (Crc32(payload) != crc) {
      return Status::Corruption("artifact: crc mismatch in section '" +
                                std::string(name) + "'");
    }
    if (name == "arch") {
      MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(payload));
      MLAKE_ASSIGN_OR_RETURN(artifact.spec, nn::ArchSpec::FromJson(j));
      saw_arch = true;
    } else if (name == "meta") {
      MLAKE_ASSIGN_OR_RETURN(artifact.meta, Json::Parse(payload));
    } else if (StartsWith(name, "w:")) {
      MLAKE_ASSIGN_OR_RETURN(Tensor t, TensorFromBytes(payload));
      artifact.weights.emplace_back(std::string(name.substr(2)),
                                    std::move(t));
    } else {
      // Unknown sections are skipped for forward compatibility.
    }
  }
  if (!reader.Done()) {
    return Status::Corruption("artifact: trailing bytes");
  }
  if (!saw_arch) return Status::Corruption("artifact: missing arch section");
  return artifact;
}

Status VerifyArtifact(std::string_view bytes) {
  ByteReader reader(bytes);
  std::string_view magic;
  if (!reader.GetBytes(sizeof(kMagic), &magic) ||
      magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::Corruption("artifact: bad magic");
  }
  uint32_t version;
  if (!reader.GetU32(&version)) {
    return Status::Corruption("artifact: truncated version");
  }
  if (version != kArtifactFormatVersion) {
    return Status::Corruption(
        StrFormat("artifact: unsupported format version %u", version));
  }
  uint32_t sections;
  if (!reader.GetU32(&sections)) {
    return Status::Corruption("artifact: truncated section count");
  }
  bool saw_arch = false;
  for (uint32_t i = 0; i < sections; ++i) {
    std::string_view name, payload;
    uint32_t crc;
    if (!reader.GetLengthPrefixed(&name) || !reader.GetU32(&crc) ||
        !reader.GetLengthPrefixed(&payload)) {
      return Status::Corruption("artifact: truncated section");
    }
    if (Crc32(payload) != crc) {
      return Status::Corruption("artifact: crc mismatch in section '" +
                                std::string(name) + "'");
    }
    if (name == "arch") saw_arch = true;
  }
  if (!reader.Done()) {
    return Status::Corruption("artifact: trailing bytes");
  }
  if (!saw_arch) return Status::Corruption("artifact: missing arch section");
  return Status::OK();
}

size_t ArtifactMemoryBytes(const ModelArtifact& artifact) {
  size_t bytes = sizeof(ModelArtifact);
  for (const auto& [name, tensor] : artifact.weights) {
    bytes += name.size() + sizeof(Tensor) +
             static_cast<size_t>(tensor.NumElements()) * sizeof(float);
  }
  bytes += artifact.meta.Dump().size();
  return bytes;
}

ModelArtifact ArtifactFromModel(const nn::Model& model, Json meta) {
  ModelArtifact artifact;
  artifact.spec = model.spec();
  artifact.meta = std::move(meta);
  for (const auto& [name, tensor] : model.NamedParams()) {
    artifact.weights.emplace_back(name, *tensor);
  }
  return artifact;
}

Result<std::unique_ptr<nn::Model>> ModelFromArtifact(
    const ModelArtifact& artifact) {
  Rng rng(1);
  MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                         nn::BuildModel(artifact.spec, &rng));
  MLAKE_RETURN_NOT_OK(model->LoadStateDict(artifact.weights));
  return model;
}

}  // namespace mlake::storage
