#include "storage/kv_store.h"

#include <filesystem>

#include "common/file_util.h"
#include "common/hash.h"
#include "common/logging.h"
#include "tensor/serialize.h"

namespace mlake::storage {

namespace {
constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeDelete = 2;
}  // namespace

Result<std::unique_ptr<KvStore>> KvStore::Open(
    const std::string& path, const KvCompactionPolicy& policy, Fs* fs) {
  if (fs == nullptr) fs = RealFs();
  std::unique_ptr<KvStore> store(new KvStore(path, policy, fs));
  MLAKE_RETURN_NOT_OK(store->Replay());
  MLAKE_RETURN_NOT_OK(store->MaybeAutoCompact());
  return store;
}

uint64_t KvStore::RecordSize(const std::string& key, std::string_view value) {
  // crc (4) + type (1) + two length prefixes (4 each) + payloads.
  return 13 + key.size() + value.size();
}

Status KvStore::MaybeAutoCompact() {
  if (!policy_.automatic) return Status::OK();
  if (log_bytes_ <= policy_.min_log_bytes) return Status::OK();
  if (static_cast<double>(log_bytes_) <=
      policy_.max_garbage_ratio *
          static_cast<double>(live_bytes_ > 0 ? live_bytes_ : 1)) {
    return Status::OK();
  }
  MLAKE_RETURN_NOT_OK(Compact());
  ++compaction_count_;
  return Status::OK();
}

std::string KvStore::EncodeRecord(uint8_t type, const std::string& key,
                                  std::string_view value) {
  std::string body;
  body.push_back(static_cast<char>(type));
  PutLengthPrefixed(&body, key);
  PutLengthPrefixed(&body, value);
  std::string record;
  PutU32(&record, Crc32(body));
  record += body;
  return record;
}

Status KvStore::Replay() {
  index_.clear();
  log_bytes_ = 0;
  live_bytes_ = 0;
  if (!fs_->FileExists(path_)) return Status::OK();
  MLAKE_ASSIGN_OR_RETURN(std::string log, fs_->ReadFile(path_));
  ByteReader reader(log);
  size_t valid_end = 0;
  while (!reader.Done()) {
    uint32_t crc;
    size_t record_start = reader.position();
    if (!reader.GetU32(&crc)) break;
    std::string_view type_byte;
    if (!reader.GetBytes(1, &type_byte)) break;
    std::string_view key, value;
    if (!reader.GetLengthPrefixed(&key)) break;
    if (!reader.GetLengthPrefixed(&value)) break;
    // CRC covers [type..value-end].
    std::string_view body(log.data() + record_start + 4,
                          reader.position() - record_start - 4);
    if (Crc32(body) != crc) break;
    uint8_t type = static_cast<uint8_t>(type_byte[0]);
    if (type == kTypePut) {
      std::string key_str(key);
      auto it = index_.find(key_str);
      if (it != index_.end()) {
        live_bytes_ -= RecordSize(key_str, it->second);
      }
      live_bytes_ += RecordSize(key_str, value);
      index_[std::move(key_str)] = std::string(value);
    } else if (type == kTypeDelete) {
      std::string key_str(key);
      auto it = index_.find(key_str);
      if (it != index_.end()) {
        live_bytes_ -= RecordSize(key_str, it->second);
        index_.erase(it);
      }
    } else {
      break;  // unknown record: treat as corrupt tail
    }
    valid_end = reader.position();
  }
  if (valid_end < log.size()) {
    MLAKE_LOG_WARNING << "kv store " << path_ << ": truncating "
                      << (log.size() - valid_end)
                      << " corrupt tail bytes (torn write recovery)";
    MLAKE_RETURN_NOT_OK(fs_->Truncate(path_, valid_end));
    // The repair must itself be durable: without the file+dir sync a
    // second crash could resurrect the torn tail (or lose the inode
    // size change) and re-poison the next replay.
    if (FsyncEnabled()) {
      MLAKE_RETURN_NOT_OK(fs_->SyncFile(path_));
      MLAKE_RETURN_NOT_OK(
          fs_->SyncDir(std::filesystem::path(path_).parent_path().string()));
    }
  }
  log_bytes_ = valid_end;
  return Status::OK();
}

Status KvStore::AppendRecord(uint8_t type, const std::string& key,
                             std::string_view value) {
  std::string record = EncodeRecord(type, key, value);
  Status st = fs_->AppendFile(path_, record);
  if (!st.ok()) {
    // The append may have landed partially (short write). Cut the log
    // back to the last known-good length so later appends do not write
    // behind a torn record — CRC replay would stop at the tear and
    // silently drop everything after it.
    if (fs_->FileExists(path_)) {
      Status trunc = fs_->Truncate(path_, log_bytes_);
      if (!trunc.ok()) {
        MLAKE_LOG_WARNING << "kv store " << path_
                          << ": cannot truncate after failed append ("
                          << trunc.ToString()
                          << "); store is read-consistent but the log "
                             "tail is dirty until next reopen";
      }
    }
    return st;
  }
  log_bytes_ += record.size();
  return Status::OK();
}

Status KvStore::Put(const std::string& key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  MLAKE_RETURN_NOT_OK(AppendRecord(kTypePut, key, value));
  auto it = index_.find(key);
  if (it != index_.end()) {
    live_bytes_ -= RecordSize(key, it->second);
  }
  live_bytes_ += RecordSize(key, value);
  index_[key] = std::string(value);
  return MaybeAutoCompact();
}

Result<std::string> KvStore::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second;
}

bool KvStore::Contains(const std::string& key) const {
  return index_.count(key) > 0;
}

Status KvStore::Delete(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::OK();
  // Tombstone lands in the log before the index forgets the key (same
  // order as Put): a failed append is then a clean no-op, instead of an
  // in-memory delete that a reopen silently resurrects.
  MLAKE_RETURN_NOT_OK(AppendRecord(kTypeDelete, key, ""));
  live_bytes_ -= RecordSize(key, it->second);
  index_.erase(it);
  return MaybeAutoCompact();
}

std::vector<std::string> KvStore::ScanPrefix(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

Status KvStore::Compact() {
  std::string compacted;
  for (const auto& [key, value] : index_) {
    compacted += EncodeRecord(kTypePut, key, value);
  }
  MLAKE_RETURN_NOT_OK(WriteFileAtomic(fs_, path_, compacted));
  log_bytes_ = compacted.size();
  return Status::OK();
}

Status KvStore::Sync() {
  if (!FsyncEnabled()) return Status::OK();
  if (!fs_->FileExists(path_)) return Status::OK();
  return fs_->SyncFile(path_);
}

}  // namespace mlake::storage
