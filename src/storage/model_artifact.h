#ifndef MLAKE_STORAGE_MODEL_ARTIFACT_H_
#define MLAKE_STORAGE_MODEL_ARTIFACT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "nn/model.h"
#include "tensor/tensor.h"

namespace mlake::storage {

/// A serialized model checkpoint: architecture spec, named weight
/// tensors, and free-form metadata. This is "the file you upload to the
/// lake" — the intrinsic viewpoint (f*, θ) of the paper, detached from
/// any in-memory Model.
struct ModelArtifact {
  nn::ArchSpec spec;
  std::vector<std::pair<std::string, Tensor>> weights;
  Json meta;  // free-form (creator, notes); never trusted as history
};

/// Binary artifact codec.
///
/// Layout:
///   magic "MLAKEAR1" (8 bytes)
///   u32 format_version
///   u32 section_count
///   per section: length-prefixed name, u32 crc32(payload),
///                length-prefixed payload
/// Sections: "arch" (JSON), "meta" (JSON), "w:<param-name>" (tensor
/// codec). Every section carries its own CRC so partial corruption is
/// pinpointed to a section on read.
std::string SerializeArtifact(const ModelArtifact& artifact);

/// Parses and CRC-verifies an artifact. Takes a borrowed view — pair
/// with `BlobStore::GetView` to decode straight out of the page cache
/// with no whole-file copy (tensor payloads are copied into their
/// Tensors; everything else is read in place).
Result<ModelArtifact> ParseArtifact(std::string_view bytes);

/// Structural + CRC check without decoding: walks the section table and
/// verifies every checksum but never materializes JSON or tensors.
/// Over an mmap view this makes artifact fsck O(1) resident memory.
Status VerifyArtifact(std::string_view bytes);

/// Approximate heap footprint of a decoded artifact (tensor payloads +
/// names + metadata); the byte weight used by the lake's artifact
/// cache.
size_t ArtifactMemoryBytes(const ModelArtifact& artifact);

/// Snapshots a live model into an artifact.
ModelArtifact ArtifactFromModel(const nn::Model& model, Json meta);

/// Rebuilds a live model from an artifact (spec + weights).
Result<std::unique_ptr<nn::Model>> ModelFromArtifact(
    const ModelArtifact& artifact);

/// Current (and only) artifact format version.
inline constexpr uint32_t kArtifactFormatVersion = 1;

}  // namespace mlake::storage

#endif  // MLAKE_STORAGE_MODEL_ARTIFACT_H_
