#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"

namespace mlake::server {

namespace {

using Clock = std::chrono::steady_clock;

bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reused_ = false;
}

Status HttpClient::Connect() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reused_ = false;
  return Status::OK();
}

Result<HttpResponse> HttpClient::Get(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers,
    int timeout_ms) {
  // GETs don't mutate; the keep-alive-race retry is always safe.
  return RoundTrip("GET", path, "", headers, timeout_ms,
                   /*idempotent=*/true);
}

Result<HttpResponse> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    int timeout_ms, bool idempotent) {
  return RoundTrip("POST", path, body, headers, timeout_ms, idempotent);
}

Result<HttpResponse> HttpClient::RoundTrip(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    int timeout_ms, bool idempotent) {
  if (timeout_ms <= 0) timeout_ms = timeout_ms_;
  auto start = Clock::now();
  std::string wire = SerializeHttpRequest(method, path, body, headers);

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) MLAKE_RETURN_NOT_OK(Connect());
    // Only a reused connection may have been closed under us; a request
    // that dies on a fresh connection is a real error. And even on a
    // reused connection, a non-idempotent POST is never resent — the
    // server may have applied the half-delivered request before the
    // connection died, and a silent resend would double-apply it.
    // Mutating callers carry an idempotency key / sequence and retry at
    // their own layer instead.
    bool may_retry = reused_ && attempt == 0 && idempotent;

    bool sent = WriteAll(fd_, wire);
    std::string buf;
    HttpResponse response;
    bool got_bytes = false;
    bool dead = !sent;
    while (!dead) {
      auto parsed = ParseHttpResponse(buf, 256u << 20, &response);
      if (!parsed.ok()) return parsed.status();
      if (parsed.ValueUnsafe() > 0) {
        reused_ = true;
        if (EqualsIgnoreCase(response.Header("connection"), "close")) {
          Close();
        }
        return response;
      }
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - start)
                         .count();
      if (elapsed >= timeout_ms) {
        Close();
        return Status::DeadlineExceeded("no response within " +
                                        std::to_string(timeout_ms) + " ms");
      }
      pollfd pfd{fd_, POLLIN, 0};
      int ready =
          ::poll(&pfd, 1, static_cast<int>(timeout_ms - elapsed));
      if (ready < 0 && errno != EINTR) {
        dead = true;
        break;
      }
      if (ready <= 0) continue;
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        dead = true;
        break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        dead = true;
        break;
      }
      got_bytes = true;
      buf.append(chunk, static_cast<size_t>(n));
    }
    Close();
    if (got_bytes) {
      return Status::Unavailable("connection closed mid-response");
    }
    if (!may_retry) {
      return Status::Unavailable("connection closed before response");
    }
    // Stale keep-alive connection: reconnect and resend once.
  }
  return Status::Internal("unreachable");
}

HttpClientPool::HttpClientPool(size_t max_idle_per_endpoint)
    : max_idle_(max_idle_per_endpoint == 0 ? 1 : max_idle_per_endpoint) {}

HttpClientPool::Lease& HttpClientPool::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    key_ = std::move(other.key_);
    client_ = std::move(other.client_);
    other.pool_ = nullptr;
    other.client_.reset();
  }
  return *this;
}

void HttpClientPool::Lease::Discard() {
  client_.reset();
  pool_ = nullptr;
}

void HttpClientPool::Lease::Release() {
  if (pool_ != nullptr && client_ != nullptr) {
    pool_->Return(key_, std::move(client_));
  }
  pool_ = nullptr;
  client_.reset();
}

HttpClientPool::Lease HttpClientPool::Acquire(const std::string& host,
                                              int port) {
  std::string key = host + ":" + std::to_string(port);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<HttpClient> client = std::move(it->second.back());
      it->second.pop_back();
      return Lease(this, std::move(key), std::move(client));
    }
  }
  return Lease(this, std::move(key),
               std::make_unique<HttpClient>(host, port));
}

size_t HttpClientPool::IdleCount(const std::string& host, int port) const {
  std::string key = host + ":" + std::to_string(port);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = idle_.find(key);
  return it == idle_.end() ? 0 : it->second.size();
}

void HttpClientPool::Return(const std::string& key,
                            std::unique_ptr<HttpClient> client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& list = idle_[key];
  if (list.size() >= max_idle_) return;  // excess: drop, socket closes
  list.push_back(std::move(client));
}

}  // namespace mlake::server
