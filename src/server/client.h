#ifndef MLAKE_SERVER_CLIENT_H_
#define MLAKE_SERVER_CLIENT_H_

// Minimal blocking HTTP/1.1 client over POSIX sockets — what the server
// tests and bench/micro_server drive the lake server with. One client
// owns one keep-alive connection; it reconnects transparently when the
// server rotates the connection (max_requests_per_connection) or an
// idle timeout closed it.

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/http.h"

namespace mlake::server {

class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Blocking GET/POST. A request on a reused connection that dies
  /// before any response byte arrives is retried once on a fresh
  /// connection (the keep-alive race: the server may close between our
  /// send and its read).
  Result<HttpResponse> Get(
      const std::string& path,
      const std::vector<std::pair<std::string, std::string>>& headers = {});
  Result<HttpResponse> Post(
      const std::string& path, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Per-round-trip timeout (connect + response), default 30 s.
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  void Close();

 private:
  Status Connect();
  Result<HttpResponse> RoundTrip(
      const std::string& method, const std::string& path,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers);

  std::string host_;
  int port_;
  int fd_ = -1;
  bool reused_ = false;  // current connection already served a request
  int timeout_ms_ = 30000;
};

}  // namespace mlake::server

#endif  // MLAKE_SERVER_CLIENT_H_
