#ifndef MLAKE_SERVER_CLIENT_H_
#define MLAKE_SERVER_CLIENT_H_

// Minimal blocking HTTP/1.1 client over POSIX sockets — what the server
// tests and bench/micro_server drive the lake server with. One client
// owns one keep-alive connection; it reconnects transparently when the
// server rotates the connection (max_requests_per_connection) or an
// idle timeout closed it. HttpClientPool adds a small keyed keep-alive
// pool on top — the router leases a warm connection per backend call
// (hedged retries need two concurrent connections to distinct
// replicas, which a single shared client cannot provide).

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/http.h"

namespace mlake::server {

class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Blocking GET/POST. A request on a reused connection that dies
  /// before any response byte arrives *may* be retried once on a fresh
  /// connection (the keep-alive race: the server may close between our
  /// send and its read) — but only when the request is idempotent:
  /// always for GET, and for POST only when the caller passes
  /// `idempotent = true`. A non-idempotent POST (ingest, replication
  /// ship) is never silently re-sent, because the server may have
  /// applied the half-delivered request before the connection died;
  /// such callers attach an idempotency key / sequence instead and
  /// retry at their own layer. `timeout_ms` overrides the client
  /// default for this one round trip (<= 0 keeps the default) —
  /// scatter-gather callers derive it per request from the caller's
  /// deadline.
  Result<HttpResponse> Get(
      const std::string& path,
      const std::vector<std::pair<std::string, std::string>>& headers = {},
      int timeout_ms = 0);
  Result<HttpResponse> Post(
      const std::string& path, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {},
      int timeout_ms = 0, bool idempotent = false);

  /// Per-round-trip timeout (connect + response), default 30 s.
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  const std::string& host() const { return host_; }
  int port() const { return port_; }
  /// True when the connection is open and already served a request
  /// (i.e. a pool reuse would ride an existing keep-alive socket).
  bool connected() const { return fd_ >= 0; }

  void Close();

 private:
  Status Connect();
  Result<HttpResponse> RoundTrip(
      const std::string& method, const std::string& path,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers,
      int timeout_ms, bool idempotent);

  std::string host_;
  int port_;
  int fd_ = -1;
  bool reused_ = false;  // current connection already served a request
  int timeout_ms_ = 30000;
};

/// A small keyed keep-alive connection pool. `Acquire` hands out an
/// exclusive `Lease` on a warm HttpClient for host:port (or a fresh one
/// when the idle list is empty); the lease returns the client — with
/// its keep-alive socket still open — when destroyed. At most
/// `max_idle_per_endpoint` idle clients are kept per endpoint; excess
/// returns simply close. Thread-safe; leases themselves are not shared.
class HttpClientPool {
 public:
  explicit HttpClientPool(size_t max_idle_per_endpoint = 4);

  HttpClientPool(const HttpClientPool&) = delete;
  HttpClientPool& operator=(const HttpClientPool&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    HttpClient* operator->() { return client_.get(); }
    HttpClient& operator*() { return *client_; }
    explicit operator bool() const { return client_ != nullptr; }

    /// Drops the connection instead of pooling it (call after a
    /// transport error so the next lease starts from a clean socket).
    void Discard();

   private:
    friend class HttpClientPool;
    Lease(HttpClientPool* pool, std::string key,
          std::unique_ptr<HttpClient> client)
        : pool_(pool), key_(std::move(key)), client_(std::move(client)) {}
    void Release();

    HttpClientPool* pool_ = nullptr;
    std::string key_;
    std::unique_ptr<HttpClient> client_;
  };

  Lease Acquire(const std::string& host, int port);

  /// Idle connections currently pooled for host:port (test/stats hook).
  size_t IdleCount(const std::string& host, int port) const;

 private:
  void Return(const std::string& key, std::unique_ptr<HttpClient> client);

  mutable std::mutex mu_;
  size_t max_idle_;
  std::unordered_map<std::string, std::vector<std::unique_ptr<HttpClient>>>
      idle_;
};

}  // namespace mlake::server

#endif  // MLAKE_SERVER_CLIENT_H_
