#ifndef MLAKE_SERVER_METRICS_H_
#define MLAKE_SERVER_METRICS_H_

// Request metrics for mlaked (and reusable by the CLI and benches):
// per-endpoint counters and fixed-bucket latency histograms behind a
// lock-striped registry. Recording takes one short critical section on
// the recording thread's stripe; snapshots merge all stripes, so a
// /statsz scrape never stalls the request path on a global lock.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace mlake::server {

/// Upper bucket bounds in microseconds; the last bucket is unbounded.
/// Roughly log-spaced from 50us to 1s — the range an in-process lake
/// call can plausibly take.
inline constexpr uint64_t kLatencyBucketBoundsUs[] = {
    50,     100,    200,    500,     1000,    2000,    5000,
    10000,  20000,  50000,  100000,  200000,  500000,  1000000};
inline constexpr size_t kLatencyBucketCount =
    sizeof(kLatencyBucketBoundsUs) / sizeof(kLatencyBucketBoundsUs[0]) + 1;

/// Fixed-bucket latency histogram. Percentiles are estimated by linear
/// interpolation inside the bucket that crosses the requested rank
/// (exact `max` is tracked separately, so p100 never overshoots it).
struct LatencyHistogram {
  uint64_t buckets[kLatencyBucketCount] = {};
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t max_us = 0;

  void Record(uint64_t us);
  void Merge(const LatencyHistogram& other);
  /// p in [0, 100]; 0 when the histogram is empty.
  double PercentileUs(double p) const;
  /// Evaluates `n` percentiles (ascending `ps`, each in [0, 100]) in a
  /// single pass over the buckets — the cheap form heartbeat payloads
  /// use to get p50/p95/p99 without re-walking the histogram per value.
  void PercentilesUs(const double* ps, double* out, size_t n) const;
  double MeanUs() const { return count == 0 ? 0.0 : double(sum_us) / count; }

  /// {"count", "mean_us", "p50_us", "p90_us", "p95_us", "p99_us",
  ///  "max_us"}.
  Json ToJson() const;
};

/// Upper bucket bounds for batch-size (occupancy) histograms; the last
/// bucket is unbounded. Covers 1..64, the plausible coalescing range of
/// the search batcher.
inline constexpr uint64_t kSizeBucketBounds[] = {1,  2,  3,  4,  6,  8,
                                                 12, 16, 24, 32, 48, 64};
inline constexpr size_t kSizeBucketCount =
    sizeof(kSizeBucketBounds) / sizeof(kSizeBucketBounds[0]) + 1;

/// Fixed-bucket size histogram (batch occupancy, queue depths): exact
/// counts for sizes 1..4, log-spaced above.
struct SizeHistogram {
  uint64_t buckets[kSizeBucketCount] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Record(uint64_t size);
  void Merge(const SizeHistogram& other);
  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }

  /// {"count", "mean", "max", "buckets": {"<=1": n, ..., ">64": n}}.
  Json ToJson() const;
};

/// Counters of one endpoint (e.g. "POST /v1/search").
struct EndpointStats {
  uint64_t requests = 0;
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  /// 429 admission rejections (a subset of responses_4xx).
  uint64_t rejected = 0;
  /// 504 deadline expiries (a subset of responses_5xx).
  uint64_t deadline_exceeded = 0;
  LatencyHistogram latency;

  void Merge(const EndpointStats& other);
  Json ToJson() const;
};

/// Lock-striped endpoint registry. A recording thread locks only the
/// stripe its thread id hashes to; `Snapshot`/`ToJson` lock stripes one
/// at a time and merge. Endpoint labels should be route templates
/// ("GET /v1/models/{id}"), not raw paths, to keep cardinality bounded.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t stripes = 8);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Record(std::string_view endpoint, int http_status,
              uint64_t latency_us);

  /// Merged per-endpoint view (stable order: endpoint name).
  std::map<std::string, EndpointStats> Snapshot() const;

  /// Merged stats of every endpoint whose label starts with `prefix`
  /// (empty prefix = everything). One pass over the stripes; used by
  /// the heartbeat to report a single search latency histogram across
  /// the "POST /v1/search*" label family.
  EndpointStats AggregateSnapshot(std::string_view prefix) const;

  /// {"<endpoint>": EndpointStats json, ...} plus an "_total" rollup.
  Json ToJson() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, EndpointStats, std::less<>> by_endpoint;
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace mlake::server

#endif  // MLAKE_SERVER_METRICS_H_
