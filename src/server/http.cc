#include "server/http.h"

#include <array>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace mlake::server {

namespace {

std::string_view FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (EqualsIgnoreCase(k, name)) return v;
  }
  return {};
}

/// Decodes a chunked-transfer body starting at `pos` (just past the
/// header block). Returns consumed bytes through the final CRLF, 0 for
/// incomplete, error for malformed framing or an oversized body.
Result<size_t> ParseChunkedBody(std::string_view buf, size_t pos,
                                size_t max_body_bytes, std::string* body) {
  body->clear();
  while (true) {
    size_t eol = buf.find("\r\n", pos);
    if (eol == std::string_view::npos) return size_t{0};  // need more
    std::string_view size_line = buf.substr(pos, eol - pos);
    if (size_t semi = size_line.find(';'); semi != std::string_view::npos) {
      size_line = size_line.substr(0, semi);  // drop chunk extensions
    }
    size_line = Trim(size_line);
    if (size_line.empty() || size_line.size() > 16) {
      return Status::InvalidArgument("malformed chunk size");
    }
    uint64_t chunk_size = 0;
    for (char c : size_line) {
      if (!std::isxdigit(static_cast<unsigned char>(c))) {
        return Status::InvalidArgument("malformed chunk size");
      }
      int digit = std::isdigit(static_cast<unsigned char>(c))
                      ? c - '0'
                      : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
      chunk_size = chunk_size * 16 + static_cast<uint64_t>(digit);
    }
    pos = eol + 2;
    if (chunk_size == 0) break;
    if (body->size() + chunk_size > max_body_bytes) {
      return Status::ResourceExhausted("chunked body exceeds " +
                                       std::to_string(max_body_bytes) +
                                       " bytes");
    }
    if (buf.size() - pos < chunk_size + 2) return size_t{0};  // need more
    body->append(buf.substr(pos, chunk_size));
    if (buf.substr(pos + chunk_size, 2) != "\r\n") {
      return Status::InvalidArgument("chunk data not CRLF-terminated");
    }
    pos += chunk_size + 2;
  }
  // Trailer section: lines until the blank line. mlaked sends none,
  // but skipping them keeps the parser conforming.
  while (true) {
    size_t eol = buf.find("\r\n", pos);
    if (eol == std::string_view::npos) return size_t{0};  // need more
    bool blank = eol == pos;
    pos = eol + 2;
    if (blank) break;
  }
  return pos;
}

/// Parses the shared "headers then Content-Length body" tail of both
/// requests and responses. `head_end` points just past "\r\n\r\n".
/// Returns consumed bytes, 0 for incomplete, error for malformed.
/// `allow_chunked` admits a chunked body (responses only: the server
/// streams exports but never accepts a streamed request).
Result<size_t> ParseHeadersAndBody(
    std::string_view buf, size_t header_start, size_t head_end,
    size_t max_body_bytes,
    std::vector<std::pair<std::string, std::string>>* headers,
    std::string* body, bool allow_chunked = false) {
  headers->clear();
  size_t pos = header_start;
  while (pos < head_end) {
    size_t eol = buf.find("\r\n", pos);
    if (eol == std::string_view::npos || eol > head_end) break;
    if (eol == pos) {
      pos += 2;
      break;  // blank line: end of headers
    }
    std::string_view line = buf.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    headers->emplace_back(ToLower(Trim(line.substr(0, colon))),
                          std::string(Trim(line.substr(colon + 1))));
    pos = eol + 2;
  }
  std::string_view te = FindHeader(*headers, "transfer-encoding");
  if (!te.empty()) {
    if (!allow_chunked || !EqualsIgnoreCase(te, "chunked")) {
      return Status::Unimplemented("chunked transfer encoding not supported");
    }
    return ParseChunkedBody(buf, pos, max_body_bytes, body);
  }
  size_t content_length = 0;
  std::string_view cl = FindHeader(*headers, "content-length");
  if (!cl.empty()) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(std::string(cl).c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("malformed Content-Length");
    }
    content_length = static_cast<size_t>(v);
  }
  if (content_length > max_body_bytes) {
    return Status::ResourceExhausted("request body exceeds " +
                                     std::to_string(max_body_bytes) +
                                     " bytes");
  }
  if (buf.size() - pos < content_length) return size_t{0};  // need more
  body->assign(buf.substr(pos, content_length));
  return pos + content_length;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

std::string HttpRequest::QueryParam(std::string_view key,
                                    std::string_view fallback) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

bool HttpRequest::KeepAlive() const {
  return !EqualsIgnoreCase(Header("connection"), "close");
}

std::string_view HttpResponse::Header(std::string_view name) const {
  return FindHeader(headers, name);
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && std::isxdigit(s[i + 1]) &&
               std::isxdigit(s[i + 2])) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        return std::tolower(c) - 'a' + 10;
      };
      out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

Result<size_t> ParseHttpRequest(std::string_view buf, size_t max_body_bytes,
                                HttpRequest* out) {
  size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("request head exceeds 64 KiB");
    }
    return size_t{0};
  }
  head_end += 4;
  size_t line_end = buf.find("\r\n");
  std::string_view line = buf.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (out->target.empty() || out->target[0] != '/') {
    return Status::InvalidArgument("malformed request target");
  }

  out->query.clear();
  size_t qmark = out->target.find('?');
  out->path = UrlDecode(std::string_view(out->target).substr(0, qmark));
  if (qmark != std::string::npos) {
    for (const std::string& pair :
         Split(std::string_view(out->target).substr(qmark + 1), '&')) {
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out->query.emplace_back(UrlDecode(pair), "");
      } else {
        out->query.emplace_back(
            UrlDecode(std::string_view(pair).substr(0, eq)),
            UrlDecode(std::string_view(pair).substr(eq + 1)));
      }
    }
  }
  return ParseHeadersAndBody(buf, line_end + 2, head_end, max_body_bytes,
                             &out->headers, &out->body);
}

Result<size_t> ParseHttpResponse(std::string_view buf, size_t max_body_bytes,
                                 HttpResponse* out) {
  size_t head_end = buf.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("response head exceeds 64 KiB");
    }
    return size_t{0};
  }
  head_end += 4;
  size_t line_end = buf.find("\r\n");
  std::string_view line = buf.substr(0, line_end);
  if (!StartsWith(line, "HTTP/1.")) {
    return Status::InvalidArgument("malformed status line");
  }
  size_t sp = line.find(' ');
  if (sp == std::string_view::npos || line.size() < sp + 4) {
    return Status::InvalidArgument("malformed status line");
  }
  out->status = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
      return Status::InvalidArgument("malformed status code");
    }
    out->status = out->status * 10 + (line[i] - '0');
  }
  MLAKE_ASSIGN_OR_RETURN(
      size_t consumed,
      ParseHeadersAndBody(buf, line_end + 2, head_end, max_body_bytes,
                          &out->headers, &out->body,
                          /*allow_chunked=*/true));
  if (consumed > 0) {
    out->content_type = std::string(FindHeader(out->headers, "content-type"));
  }
  return consumed;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         std::string(HttpStatusText(response.status)) + "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  if (response.is_streaming()) {
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [k, v] : response.headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  if (!response.is_streaming()) out += response.body;
  return out;
}

std::string SerializeChunk(std::string_view data) {
  std::string out;
  out.reserve(data.size() + 20);
  out += StrFormat("%zx", data.size());
  out += "\r\n";
  out += data;
  out += "\r\n";
  return out;
}

std::string_view FinalChunk() { return "0\r\n\r\n"; }

std::string SerializeHttpRequest(
    std::string_view method, std::string_view target, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out;
  out.reserve(body.size() + 256);
  out += std::string(method) + " " + std::string(target) + " HTTP/1.1\r\n";
  out += "Host: mlaked\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (!body.empty()) out += "Content-Type: application/json\r\n";
  for (const auto& [k, v] : headers) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  out += std::string(body);
  return out;
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kOutOfRange: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kIOError: return 500;
    case StatusCode::kCorruption: return 500;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

std::string_view StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

HttpResponse ErrorResponse(const Status& status) {
  Json error = Json::MakeObject();
  error.Set("code", std::string(StatusCodeToken(status.code())));
  error.Set("message", status.message());
  Json body = Json::MakeObject();
  body.Set("error", std::move(error));
  HttpResponse response;
  response.status = HttpStatusForStatus(status);
  response.body = body.Dump() + "\n";
  if (response.status == 429) {
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

HttpResponse JsonResponse(Json body, int status) {
  HttpResponse response;
  response.status = status;
  response.body = body.Dump() + "\n";
  return response;
}

namespace {
constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= bytes.size()) {
    uint32_t v = (static_cast<uint8_t>(bytes[i]) << 16) |
                 (static_cast<uint8_t>(bytes[i + 1]) << 8) |
                 static_cast<uint8_t>(bytes[i + 2]);
    out.push_back(kBase64Chars[(v >> 18) & 63]);
    out.push_back(kBase64Chars[(v >> 12) & 63]);
    out.push_back(kBase64Chars[(v >> 6) & 63]);
    out.push_back(kBase64Chars[v & 63]);
    i += 3;
  }
  size_t rem = bytes.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint8_t>(bytes[i]) << 16;
    out.push_back(kBase64Chars[(v >> 18) & 63]);
    out.push_back(kBase64Chars[(v >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    uint32_t v = (static_cast<uint8_t>(bytes[i]) << 16) |
                 (static_cast<uint8_t>(bytes[i + 1]) << 8);
    out.push_back(kBase64Chars[(v >> 18) & 63]);
    out.push_back(kBase64Chars[(v >> 12) & 63]);
    out.push_back(kBase64Chars[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view text) {
  static const auto value_of = [] {
    std::array<int8_t, 256> table;
    table.fill(-1);
    for (int i = 0; i < 64; ++i) {
      table[static_cast<uint8_t>(kBase64Chars[i])] = static_cast<int8_t>(i);
    }
    return table;
  }();
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=' && i + 4 == text.size() && j >= 2) {
        ++pad;
        v <<= 6;
        continue;
      }
      int8_t d = value_of[static_cast<uint8_t>(c)];
      if (d < 0 || pad > 0) {
        return Status::InvalidArgument("invalid base64 character");
      }
      v = (v << 6) | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(v & 0xff));
  }
  return out;
}

}  // namespace mlake::server
