#include "server/batcher.h"

namespace mlake::server {

Result<std::vector<search::RankedModel>> SearchBatcher::RelatedModels(
    const std::string& id, size_t k) {
  return RunBatched(&ann_forming_, id, k,
                    [this](const std::vector<std::string>& ids, size_t kk) {
                      return lake_->RelatedModelsBatch(ids, kk);
                    });
}

Result<std::vector<std::pair<std::string, double>>>
SearchBatcher::KeywordScores(const std::string& text, size_t k) {
  return RunBatched(&keyword_forming_, text, k,
                    [this](const std::vector<std::string>& texts, size_t kk) {
                      return lake_->KeywordScoresBatch(texts, kk);
                    });
}

Json SearchBatcher::StatsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::MakeObject();
  out.Set("enabled", true);
  out.Set("window_us", static_cast<int64_t>(options_.batch_window_us));
  out.Set("max_batch", static_cast<int64_t>(options_.max_batch));
  out.Set("batches", batches_);
  out.Set("batched_requests", batched_requests_);
  out.Set("occupancy", occupancy_.ToJson());
  return out;
}

}  // namespace mlake::server
