#include "server/metrics.h"

#include <algorithm>
#include <thread>

namespace mlake::server {

namespace {

size_t BucketFor(uint64_t us) {
  size_t bucket = 0;
  while (bucket < kLatencyBucketCount - 1 &&
         us > kLatencyBucketBoundsUs[bucket]) {
    ++bucket;
  }
  return bucket;
}

}  // namespace

void LatencyHistogram::Record(uint64_t us) {
  ++buckets[BucketFor(us)];
  ++count;
  sum_us += us;
  max_us = std::max(max_us, us);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kLatencyBucketCount; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
}

double LatencyHistogram::PercentileUs(double p) const {
  double out = 0.0;
  PercentilesUs(&p, &out, 1);
  return out;
}

void LatencyHistogram::PercentilesUs(const double* ps, double* out,
                                     size_t n) const {
  if (n == 0) return;
  if (count == 0) {
    std::fill(out, out + n, 0.0);
    return;
  }
  size_t pi = 0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBucketCount && pi < n; ++i) {
    if (buckets[i] == 0) continue;
    uint64_t below = seen;  // samples strictly before this bucket
    seen += buckets[i];
    double lo =
        i == 0 ? 0.0 : static_cast<double>(kLatencyBucketBoundsUs[i - 1]);
    double hi = i == kLatencyBucketCount - 1
                    ? static_cast<double>(max_us)
                    : static_cast<double>(kLatencyBucketBoundsUs[i]);
    hi = std::min(hi, static_cast<double>(max_us));
    if (hi < lo) hi = lo;
    while (pi < n) {
      // Rank of the requested percentile, 1-based (nearest-rank
      // method, interpolated within the crossing bucket).
      double p = std::clamp(ps[pi], 0.0, 100.0);
      double rank = p / 100.0 * static_cast<double>(count);
      if (rank < 1.0) rank = 1.0;
      if (rank > static_cast<double>(seen)) break;
      // frac spans (0, 1] across the bucket's own samples, so the
      // bucket's last sample lands exactly on `hi` — in particular a
      // lone sample in the overflow bucket reports max_us, not the
      // bucket's lower bound.
      double frac = (rank - static_cast<double>(below)) /
                    static_cast<double>(buckets[i]);
      out[pi++] = lo + (hi - lo) * frac;
    }
  }
  for (; pi < n; ++pi) out[pi] = static_cast<double>(max_us);
}

Json LatencyHistogram::ToJson() const {
  static constexpr double kPs[] = {50, 90, 95, 99};
  double vals[4];
  PercentilesUs(kPs, vals, 4);
  Json out = Json::MakeObject();
  out.Set("count", count);
  out.Set("mean_us", MeanUs());
  out.Set("p50_us", vals[0]);
  out.Set("p90_us", vals[1]);
  out.Set("p95_us", vals[2]);
  out.Set("p99_us", vals[3]);
  out.Set("max_us", max_us);
  return out;
}

void SizeHistogram::Record(uint64_t size) {
  size_t bucket = 0;
  while (bucket < kSizeBucketCount - 1 && size > kSizeBucketBounds[bucket]) {
    ++bucket;
  }
  ++buckets[bucket];
  ++count;
  sum += size;
  max = std::max(max, size);
}

void SizeHistogram::Merge(const SizeHistogram& other) {
  for (size_t i = 0; i < kSizeBucketCount; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

Json SizeHistogram::ToJson() const {
  Json buckets_json = Json::MakeObject();
  for (size_t i = 0; i < kSizeBucketCount; ++i) {
    std::string label = i == kSizeBucketCount - 1 ? ">" : "<=";
    label += std::to_string(
        kSizeBucketBounds[i == kSizeBucketCount - 1 ? i - 1 : i]);
    buckets_json.Set(label, buckets[i]);
  }
  Json out = Json::MakeObject();
  out.Set("count", count);
  out.Set("mean", Mean());
  out.Set("max", max);
  out.Set("buckets", buckets_json);
  return out;
}

void EndpointStats::Merge(const EndpointStats& other) {
  requests += other.requests;
  responses_2xx += other.responses_2xx;
  responses_4xx += other.responses_4xx;
  responses_5xx += other.responses_5xx;
  rejected += other.rejected;
  deadline_exceeded += other.deadline_exceeded;
  latency.Merge(other.latency);
}

Json EndpointStats::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("requests", requests);
  out.Set("responses_2xx", responses_2xx);
  out.Set("responses_4xx", responses_4xx);
  out.Set("responses_5xx", responses_5xx);
  out.Set("rejected", rejected);
  out.Set("deadline_exceeded", deadline_exceeded);
  out.Set("latency", latency.ToJson());
  return out;
}

MetricsRegistry::MetricsRegistry(size_t stripes) {
  if (stripes == 0) stripes = 1;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

void MetricsRegistry::Record(std::string_view endpoint, int http_status,
                             uint64_t latency_us) {
  size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      stripes_.size();
  Stripe& stripe = *stripes_[index];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.by_endpoint.find(endpoint);
  if (it == stripe.by_endpoint.end()) {
    it = stripe.by_endpoint.emplace(std::string(endpoint), EndpointStats{})
             .first;
  }
  EndpointStats& stats = it->second;
  ++stats.requests;
  if (http_status >= 500) {
    ++stats.responses_5xx;
  } else if (http_status >= 400) {
    ++stats.responses_4xx;
  } else {
    ++stats.responses_2xx;
  }
  if (http_status == 429) ++stats.rejected;
  if (http_status == 504) ++stats.deadline_exceeded;
  stats.latency.Record(latency_us);
}

std::map<std::string, EndpointStats> MetricsRegistry::Snapshot() const {
  std::map<std::string, EndpointStats> merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [endpoint, stats] : stripe->by_endpoint) {
      merged[endpoint].Merge(stats);
    }
  }
  return merged;
}

EndpointStats MetricsRegistry::AggregateSnapshot(
    std::string_view prefix) const {
  EndpointStats merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [endpoint, stats] : stripe->by_endpoint) {
      if (endpoint.size() < prefix.size() ||
          std::string_view(endpoint).substr(0, prefix.size()) != prefix) {
        continue;
      }
      merged.Merge(stats);
    }
  }
  return merged;
}

Json MetricsRegistry::ToJson() const {
  Json out = Json::MakeObject();
  EndpointStats total;
  for (const auto& [endpoint, stats] : Snapshot()) {
    total.Merge(stats);
    out.Set(endpoint, stats.ToJson());
  }
  out.Set("_total", total.ToJson());
  return out;
}

}  // namespace mlake::server
