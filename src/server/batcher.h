#ifndef MLAKE_SERVER_BATCHER_H_
#define MLAKE_SERVER_BATCHER_H_

// SearchBatcher — coalesces compatible concurrent /v1/search probes
// into one batched index probe, trading a bounded queueing delay for
// index-level batch efficiency (shared adjacency walks, one GEMM over
// the whole query block, shared BM25 posting decodes).
//
// State machine (per batch group, keyed by (search kind, k) so every
// member runs with the identical effective ef / over-fetch and results
// stay bit-identical to solo execution):
//
//   FORMING  first arrival creates the group and becomes its leader;
//            later arrivals append their query and wait. The leader
//            sleeps up to batch_window_us, woken early when the group
//            reaches max_batch.
//   CLOSED   the leader detaches the group from the forming map (new
//            arrivals start a fresh group) and executes one
//            ModelLake::*Batch probe outside the batcher lock.
//   DONE     per-slot results are published; every member (leader
//            included) picks up exactly its own slot.
//
// A member's result is bit-identical to the solo lake call because the
// lake's solo search paths delegate to the same SearchBatch code with a
// batch of one — batching changes scheduling, never scoring.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "core/model_lake.h"
#include "server/metrics.h"

namespace mlake::server {

struct BatcherOptions {
  /// How long a batch leader waits for followers before probing.
  int64_t batch_window_us = 250;
  /// A full group probes immediately without waiting out the window.
  size_t max_batch = 16;
};

class SearchBatcher {
 public:
  SearchBatcher(core::ModelLake* lake, BatcherOptions options)
      : lake_(lake), options_(options) {}

  SearchBatcher(const SearchBatcher&) = delete;
  SearchBatcher& operator=(const SearchBatcher&) = delete;

  /// Batched equivalent of lake->RelatedModels(id, k) (bit-identical).
  Result<std::vector<search::RankedModel>> RelatedModels(
      const std::string& id, size_t k);

  /// Batched equivalent of lake->KeywordScores(text, k) (bit-identical).
  Result<std::vector<std::pair<std::string, double>>> KeywordScores(
      const std::string& text, size_t k);

  /// {"window_us", "max_batch", "batches", "batched_requests",
  ///  "occupancy": SizeHistogram json} — the /statsz batching block.
  Json StatsJson() const;

 private:
  /// One in-flight batch (see the state machine above). `closed` bars
  /// new members; `done` publishes `results` (slot i answers keys[i]).
  template <typename R>
  struct Group {
    std::vector<std::string> keys;
    std::vector<Result<R>> results;
    bool closed = false;
    bool done = false;
    std::condition_variable cv;
  };

  /// The leader/follower protocol, shared by both search kinds.
  /// `probe(keys, k)` is the lake's batch call; it runs outside mu_.
  template <typename R, typename Probe>
  Result<R> RunBatched(std::map<size_t, std::shared_ptr<Group<R>>>* forming,
                       const std::string& key, size_t k, Probe&& probe) {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = forming->find(k);
    if (it != forming->end() && !it->second->closed &&
        it->second->keys.size() < options_.max_batch) {
      // ---- follower: join, maybe complete the batch, await results.
      std::shared_ptr<Group<R>> group = it->second;
      size_t slot = group->keys.size();
      group->keys.push_back(key);
      if (group->keys.size() >= options_.max_batch) {
        group->closed = true;
        forming->erase(k);
        group->cv.notify_all();  // wake the leader early
      }
      group->cv.wait(lock, [&] { return group->done; });
      return std::move(group->results[slot]);
    }
    // ---- leader: open a group, wait out the window, probe, publish.
    auto group = std::make_shared<Group<R>>();
    group->keys.push_back(key);
    (*forming)[k] = group;
    group->cv.wait_for(lock, std::chrono::microseconds(options_.batch_window_us),
                       [&] { return group->closed; });
    if (!group->closed) {
      group->closed = true;
      auto self = forming->find(k);
      if (self != forming->end() && self->second == group) {
        forming->erase(self);
      }
    }
    std::vector<std::string> keys = group->keys;
    lock.unlock();
    std::vector<Result<R>> results = probe(keys, k);
    lock.lock();
    ++batches_;
    batched_requests_ += keys.size();
    occupancy_.Record(keys.size());
    group->results = std::move(results);
    group->done = true;
    group->cv.notify_all();
    return std::move(group->results[0]);
  }

  core::ModelLake* lake_;
  BatcherOptions options_;

  /// One lock for group formation and stats; the probe itself runs
  /// unlocked, so a slow index call never blocks other groups forming.
  mutable std::mutex mu_;
  std::map<size_t, std::shared_ptr<Group<std::vector<search::RankedModel>>>>
      ann_forming_;
  std::map<size_t, std::shared_ptr<
                       Group<std::vector<std::pair<std::string, double>>>>>
      keyword_forming_;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  SizeHistogram occupancy_;
};

}  // namespace mlake::server

#endif  // MLAKE_SERVER_BATCHER_H_
