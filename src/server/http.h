#ifndef MLAKE_SERVER_HTTP_H_
#define MLAKE_SERVER_HTTP_H_

// Minimal HTTP/1.1 wire format shared by the lake server and its
// client: request/response framing (Content-Length bodies, plus
// chunked transfer for streamed responses — the governance export),
// header lookup, query-string decoding, the Status -> HTTP code
// mapping, and base64 (artifact bytes travel inside JSON ingest
// bodies). Everything here is transport-agnostic — sockets live in
// server.cc / client.cc.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace mlake::server {

/// Hard parser limits: a request line + headers larger than this is
/// rejected as malformed (64 KiB), and bodies are bounded by the
/// caller-supplied budget (ServerOptions.max_body_bytes server-side).
inline constexpr size_t kMaxHeaderBytes = 64 * 1024;

/// One parsed HTTP/1.1 request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // raw request target, e.g. "/v1/search?k=5"
  std::string path;    // decoded path without query string
  std::vector<std::pair<std::string, std::string>> query;    // decoded
  std::vector<std::pair<std::string, std::string>> headers;  // name lowercased
  std::string body;

  /// Case-insensitive header lookup (names are stored lowercased);
  /// empty string when absent.
  std::string_view Header(std::string_view name) const;

  /// First query parameter with `key`, or `fallback`.
  std::string QueryParam(std::string_view key,
                         std::string_view fallback = "") const;

  /// HTTP/1.1 defaults to keep-alive; "Connection: close" opts out.
  bool KeepAlive() const;
};

/// One HTTP response (server side: to serialize; client side: parsed).
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  // extra headers
  std::string body;

  /// When set, the response body is produced incrementally: the
  /// serializer frames the head with `Transfer-Encoding: chunked` (no
  /// Content-Length, `body` ignored) and the connection loop pumps
  /// this callback — each call fills `*chunk` with the next block and
  /// returns false when the stream is done. This is how O(1)-memory
  /// responses (the governance export) leave the server.
  std::function<bool(std::string*)> streamer;

  bool is_streaming() const { return static_cast<bool>(streamer); }

  std::string_view Header(std::string_view name) const;
};

/// Incremental request parser. Returns the number of bytes of `buf`
/// consumed when a complete request was parsed into `*out`, 0 when more
/// bytes are needed, and a Status error on malformed input (bad request
/// line, oversized headers, body above `max_body_bytes`, or chunked
/// encoding, which mlaked does not speak).
Result<size_t> ParseHttpRequest(std::string_view buf, size_t max_body_bytes,
                                HttpRequest* out);

/// Incremental response parser with the same 0 = "need more" contract.
/// Unlike requests, responses may arrive chunked (the server's
/// streamed export); the decoded body lands in `out->body` like any
/// other, still bounded by `max_body_bytes`.
Result<size_t> ParseHttpResponse(std::string_view buf, size_t max_body_bytes,
                                 HttpResponse* out);

/// Serializes a response with Content-Length and Connection headers.
/// For a streaming response (see HttpResponse::streamer) this emits
/// only the head with `Transfer-Encoding: chunked`; the caller pumps
/// the streamer through SerializeChunk and finishes with FinalChunk.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// One chunk of a chunked-transfer body (hex size line + data + CRLF).
std::string SerializeChunk(std::string_view data);

/// The terminating zero-chunk ("0\r\n\r\n").
std::string_view FinalChunk();

/// Serializes a request (always with Content-Length, even when empty —
/// keeps server-side framing trivial).
std::string SerializeHttpRequest(
    std::string_view method, std::string_view target, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers);

/// Reason phrase for the handful of codes mlaked emits ("OK",
/// "Not Found", ...); "Unknown" otherwise.
std::string_view HttpStatusText(int status);

/// The canonical Status -> HTTP mapping (the gRPC transcoding table,
/// which the DESIGN.md §10 table mirrors):
///
///   OK                  200    AlreadyExists       409
///   InvalidArgument     400    ResourceExhausted   429
///   NotFound            404    Internal/IOError    500
///   FailedPrecondition  409    Corruption          500
///   OutOfRange          400    Unimplemented       501
///   DeadlineExceeded    504    Unavailable         503
int HttpStatusForStatus(const Status& status);

/// Stable PascalCase token for a status code ("NotFound",
/// "DeadlineExceeded") — the machine-matchable `error.code` field of
/// error bodies.
std::string_view StatusCodeToken(StatusCode code);

/// `{"error": {"code": "<token>", "message": ...}}` with the mapped
/// HTTP status — every handler error takes this shape.
HttpResponse ErrorResponse(const Status& status);

/// JSON 200/`status` response helper.
HttpResponse JsonResponse(Json body, int status = 200);

/// Percent-decodes a URL component ("%2F" -> "/", "+" -> " ").
std::string UrlDecode(std::string_view s);

/// Standard base64 (RFC 4648, with padding).
std::string Base64Encode(std::string_view bytes);
Result<std::string> Base64Decode(std::string_view text);

}  // namespace mlake::server

#endif  // MLAKE_SERVER_HTTP_H_
