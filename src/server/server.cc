#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"
#include "common/sharding.h"
#include "common/string_util.h"
#include "index/snapshot.h"
#include "storage/model_artifact.h"
#include "versioning/model_graph.h"

namespace mlake::server {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

uint64_t ElapsedUs(Clock::time_point since) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - since)
                .count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

/// Writes the whole buffer, retrying on EINTR/partial writes.
/// MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE, not a
/// process-killing SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// True once the connection cannot produce a response anymore: the peer
/// closed, or ForceCloseConnections() shut the socket down at the drain
/// deadline. A pipelined next request (recv > 0) is not death.
bool SocketDead(int fd) {
  char probe;
  ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  return n == 0;
}

Json RankedModelsJson(const std::vector<search::RankedModel>& models) {
  Json arr = Json::MakeArray();
  for (const auto& m : models) {
    Json j = Json::MakeObject();
    j.Set("id", m.id);
    j.Set("score", m.score);
    arr.Append(std::move(j));
  }
  return arr;
}

template <typename Score>
Json ScoredPairsJson(const std::vector<std::pair<std::string, Score>>& hits) {
  Json arr = Json::MakeArray();
  for (const auto& [id, score] : hits) {
    Json j = Json::MakeObject();
    j.Set("id", id);
    j.Set("score", static_cast<double>(score));
    arr.Append(std::move(j));
  }
  return arr;
}

/// Body parse failures are the client's fault: remap the codec's
/// Corruption to InvalidArgument so they surface as 400, not 500.
Status BodyError(const Status& status, const char* what) {
  return Status::InvalidArgument(std::string(what) + ": " + status.message());
}

/// Parses a JSON float array ([0.25, -1.5, ...]) into a vector<float>.
/// Exact round trip: Json::Dump prints doubles with %.17g, and every
/// float widens to a double and narrows back without loss.
Result<std::vector<float>> FloatVecFromJson(const Json& arr,
                                            const char* what) {
  if (!arr.is_array()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a float array");
  }
  std::vector<float> vec;
  vec.reserve(arr.size());
  for (const Json& v : arr.AsArray()) {
    if (!v.is_number()) {
      return Status::InvalidArgument(std::string(what) +
                                     " must hold numbers only");
    }
    vec.push_back(static_cast<float>(v.AsDouble()));
  }
  return vec;
}

/// Parses the wire form of Bm25Stats ({"live_docs": n, "total_tokens":
/// n, "df": {"term": n, ...}}). Integer-valued throughout, so summed
/// router-side stats arrive bit-exact.
Result<index::Bm25Stats> Bm25StatsFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("stats must be an object");
  }
  index::Bm25Stats stats;
  stats.live_docs = static_cast<uint64_t>(j.GetInt64("live_docs", 0));
  stats.total_tokens = static_cast<uint64_t>(j.GetInt64("total_tokens", 0));
  const Json* df = j.Find("df");
  if (df != nullptr && df->is_object()) {
    for (const auto& [term, count] : df->AsObject()) {
      if (!count.is_number()) continue;
      stats.df[term] = static_cast<uint64_t>(count.AsInt64());
    }
  }
  return stats;
}

Json Bm25StatsToJson(const index::Bm25Stats& stats) {
  Json out = Json::MakeObject();
  out.Set("live_docs", static_cast<int64_t>(stats.live_docs));
  out.Set("total_tokens", static_cast<int64_t>(stats.total_tokens));
  Json df = Json::MakeObject();
  for (const auto& [term, count] : stats.df) {
    df.Set(term, static_cast<int64_t>(count));
  }
  out.Set("df", std::move(df));
  return out;
}

}  // namespace

LakeServer::LakeServer(core::ModelLake* lake, ServerOptions options)
    : lake_(lake), options_(std::move(options)) {
  if (options_.threads <= 0) options_.threads = 8;
  if (options_.max_inflight <= 0) options_.max_inflight = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  // CI hook: force batching on with a chosen window so the TSan job
  // exercises the coalescing path deterministically.
  if (const char* forced = std::getenv("MLAKE_TEST_BATCH_WINDOW_US")) {
    char* end = nullptr;
    long v = std::strtol(forced, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      options_.enable_batching = true;
      options_.batch_window_us = v;
    }
  }
  if (options_.batch_window_us < 0) options_.batch_window_us = 0;
  if (options_.max_batch <= 0) options_.max_batch = 1;
  if (options_.enable_batching) {
    BatcherOptions bopts;
    bopts.batch_window_us = options_.batch_window_us;
    bopts.max_batch = static_cast<size_t>(options_.max_batch);
    batcher_ = std::make_unique<SearchBatcher>(lake_, bopts);
  }
}

LakeServer::~LakeServer() { (void)Stop(); }

Status LakeServer::Start() {
  if (started_.load()) return Status::FailedPrecondition("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  draining_.store(false);
  start_time_ = Clock::now();
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_.store(true);
  return Status::OK();
}

Status LakeServer::Stop() {
  if (!started_.load()) return Status::OK();
  draining_.store(true);

  // Wake the accept thread out of accept() (shutdown, then close after
  // the join — closing a blocking-accept fd does not reliably wake it).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Drain: workers notice draining_ within one poll tick (idle
  // connections close; busy ones finish their in-flight request, send
  // Connection: close, and exit).
  auto deadline = Clock::now() +
                  std::chrono::milliseconds(options_.drain_deadline_ms);
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    drain_cv_.wait_until(lock, deadline, [this] {
      return active_conns_.load() == 0 && queued_conns_.load() == 0;
    });
  }
  if (active_conns_.load() != 0) {
    // Drain deadline expired: sever the remaining connections. Their
    // handlers observe the dead socket and unwind.
    ForceCloseConnections();
  }
  // Joins workers; still-queued connection tasks run first, see
  // draining_ and answer 503 immediately.
  pool_.reset();
  started_.store(false);
  return Status::OK();
}

void LakeServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or fatal accept error
    }
    if (draining_.load()) {
      ::close(fd);
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    SetNoDelay(fd);

    // Queue-depth admission: connections beyond what the pool will pick
    // up soon are turned away right here with the overload answer.
    if (queued_conns_.load(std::memory_order_relaxed) >= options_.max_queue) {
      rejected_queue_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = ErrorResponse(
          Status::ResourceExhausted("server overloaded: connection queue full"));
      WriteAll(fd, SerializeHttpResponse(response, /*keep_alive=*/false));
      ::close(fd);
      metrics_.Record("(admission)", response.status, 0);
      continue;
    }

    queued_conns_.fetch_add(1, std::memory_order_relaxed);
    RegisterConnection(fd);
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void LakeServer::RegisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  open_conns_.insert(fd);
}

void LakeServer::UnregisterConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  open_conns_.erase(fd);
}

void LakeServer::ForceCloseConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (int fd : open_conns_) ::shutdown(fd, SHUT_RDWR);
}

LakeServer::ReadOutcome LakeServer::ReadRequest(int fd, std::string* buf,
                                                HttpRequest* request,
                                                Status* parse_error) {
  auto entered = Clock::now();
  for (;;) {
    if (!buf->empty()) {
      auto parsed = ParseHttpRequest(*buf, options_.max_body_bytes, request);
      if (!parsed.ok()) {
        *parse_error = parsed.status();
        return ReadOutcome::kMalformed;
      }
      size_t consumed = parsed.ValueUnsafe();
      if (consumed > 0) {
        buf->erase(0, consumed);
        return ReadOutcome::kRequest;
      }
    }

    pollfd pfd{fd, POLLIN, 0};
    if (draining_.load() && buf->empty()) {
      // Grace probe: bytes may already sit in the kernel buffer — a
      // request we committed to by accepting it. Only close when the
      // connection is genuinely quiet.
      int ready = ::poll(&pfd, 1, 0);
      if (ready <= 0) return ReadOutcome::kDrainingIdle;
    } else {
      int ready = ::poll(&pfd, 1, 100);
      if (ready < 0 && errno != EINTR) return ReadOutcome::kClosed;
      if (ready == 0) {
        if (ElapsedMs(entered) >=
            static_cast<int64_t>(options_.keep_alive_timeout_ms)) {
          return ReadOutcome::kIdleTimeout;
        }
        continue;
      }
    }

    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadOutcome::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadOutcome::kClosed;
    }
    buf->append(chunk, static_cast<size_t>(n));
  }
}

void LakeServer::HandleConnection(int fd) {
  queued_conns_.fetch_sub(1, std::memory_order_relaxed);
  active_conns_.fetch_add(1, std::memory_order_relaxed);

  std::string buf;
  int served = 0;
  if (draining_.load()) {
    // Accepted before the drain began but never picked up: refuse
    // cleanly instead of silently dropping the connection.
    HttpResponse response =
        ErrorResponse(Status::Unavailable("server shutting down"));
    WriteAll(fd, SerializeHttpResponse(response, /*keep_alive=*/false));
  } else {
    for (;;) {
      HttpRequest request;
      Status parse_error;
      ReadOutcome outcome = ReadRequest(fd, &buf, &request, &parse_error);
      if (outcome == ReadOutcome::kMalformed) {
        HttpResponse response = ErrorResponse(parse_error);
        WriteAll(fd, SerializeHttpResponse(response, /*keep_alive=*/false));
        metrics_.Record("(malformed)", response.status, 0);
        break;
      }
      if (outcome != ReadOutcome::kRequest) break;

      auto arrival = Clock::now();
      ++served;
      std::string endpoint;
      HttpResponse response = Dispatch(request, arrival, &endpoint, fd);
      bool keep_alive = request.KeepAlive() && !draining_.load() &&
                        (options_.max_requests_per_connection <= 0 ||
                         served < options_.max_requests_per_connection);
      bool wrote =
          WriteAll(fd, SerializeHttpResponse(response, keep_alive));
      if (wrote && response.is_streaming()) {
        // Chunked body: pump the streamer until it runs dry, then the
        // zero-chunk terminator. A mid-stream write failure means the
        // peer is gone — the framing is now broken, so just close.
        std::string chunk;
        while (wrote && response.streamer(&chunk)) {
          wrote = WriteAll(fd, SerializeChunk(chunk));
          chunk.clear();
        }
        if (wrote) wrote = WriteAll(fd, std::string(FinalChunk()));
        // Drop the streamer eagerly: it owns a shared lock on the lake
        // snapshot, which should not outlive the response.
        response.streamer = nullptr;
      }
      metrics_.Record(endpoint, response.status, ElapsedUs(arrival));
      if (!wrote || !keep_alive) break;
    }
  }

  UnregisterConnection(fd);
  ::close(fd);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    drain_cv_.notify_all();
  }
}

HttpResponse LakeServer::Dispatch(const HttpRequest& request,
                                  Clock::time_point arrival,
                                  std::string* endpoint_label, int fd) {
  // ---- route ----------------------------------------------------------
  const std::string& path = request.path;
  std::string id;
  enum class Route {
    kHealthz, kHeartbeat, kStatsz, kModelList, kModelGet, kLineage,
    kEmbedding, kSearch, kIngest, kCitation, kModelDoc, kAudit, kExport,
    kReplLog, kReplBlob, kReplFingerprint, kReplSeed, kReplShip,
    kReplPromote, kDebugSleep, kUnmatched
  } route = Route::kUnmatched;
  if (request.method == "GET" && path == "/healthz") {
    route = Route::kHealthz;
    *endpoint_label = "GET /healthz";
  } else if (request.method == "GET" && path == "/v1/heartbeat") {
    route = Route::kHeartbeat;
    *endpoint_label = "GET /v1/heartbeat";
  } else if (request.method == "GET" && StartsWith(path, "/v1/embedding/")) {
    route = Route::kEmbedding;
    *endpoint_label = "GET /v1/embedding/{id}";
    id = path.substr(std::strlen("/v1/embedding/"));
  } else if (request.method == "GET" && path == "/statsz") {
    route = Route::kStatsz;
    *endpoint_label = "GET /statsz";
  } else if (request.method == "GET" && path == "/v1/models") {
    route = Route::kModelList;
    *endpoint_label = "GET /v1/models";
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/") &&
             EndsWith(path, "/citation") &&
             path.size() >
                 std::strlen("/v1/models/") + std::strlen("/citation")) {
    // Suffix routes must match before the bare model get below.
    route = Route::kCitation;
    *endpoint_label = "GET /v1/models/{id}/citation";
    id = path.substr(std::strlen("/v1/models/"),
                     path.size() - std::strlen("/v1/models/") -
                         std::strlen("/citation"));
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/") &&
             EndsWith(path, "/doc") &&
             path.size() > std::strlen("/v1/models/") + std::strlen("/doc")) {
    route = Route::kModelDoc;
    *endpoint_label = "GET /v1/models/{id}/doc";
    id = path.substr(
        std::strlen("/v1/models/"),
        path.size() - std::strlen("/v1/models/") - std::strlen("/doc"));
  } else if (request.method == "GET" && StartsWith(path, "/v1/models/")) {
    route = Route::kModelGet;
    *endpoint_label = "GET /v1/models/{id}";
    id = path.substr(std::strlen("/v1/models/"));
  } else if (request.method == "GET" && StartsWith(path, "/v1/audit/")) {
    route = Route::kAudit;
    *endpoint_label = "GET /v1/audit/{id}";
    id = path.substr(std::strlen("/v1/audit/"));
  } else if (request.method == "GET" && path == "/v1/export") {
    route = Route::kExport;
    *endpoint_label = "GET /v1/export";
  } else if (request.method == "GET" && StartsWith(path, "/v1/lineage/")) {
    route = Route::kLineage;
    *endpoint_label = "GET /v1/lineage/{id}";
    id = path.substr(std::strlen("/v1/lineage/"));
  } else if (request.method == "POST" && path == "/v1/search") {
    route = Route::kSearch;
    *endpoint_label = "POST /v1/search";
  } else if (request.method == "POST" && path == "/v1/ingest") {
    route = Route::kIngest;
    *endpoint_label = "POST /v1/ingest";
  } else if (request.method == "GET" && path == "/v1/replication/log") {
    route = Route::kReplLog;
    *endpoint_label = "GET /v1/replication/log";
  } else if (request.method == "GET" &&
             StartsWith(path, "/v1/replication/blob/")) {
    route = Route::kReplBlob;
    *endpoint_label = "GET /v1/replication/blob/{digest}";
    id = path.substr(std::strlen("/v1/replication/blob/"));
  } else if (request.method == "GET" &&
             path == "/v1/replication/fingerprint") {
    route = Route::kReplFingerprint;
    *endpoint_label = "GET /v1/replication/fingerprint";
  } else if (request.method == "GET" && path == "/v1/replication/seed") {
    route = Route::kReplSeed;
    *endpoint_label = "GET /v1/replication/seed";
  } else if (request.method == "POST" && path == "/v1/replication/ship") {
    route = Route::kReplShip;
    *endpoint_label = "POST /v1/replication/ship";
  } else if (request.method == "POST" &&
             path == "/v1/replication/promote") {
    route = Route::kReplPromote;
    *endpoint_label = "POST /v1/replication/promote";
  } else if (options_.enable_debug_endpoints && request.method == "GET" &&
             path == "/debug/sleep") {
    route = Route::kDebugSleep;
    *endpoint_label = "GET /debug/sleep";
  } else {
    *endpoint_label = "(unmatched)";
    return ErrorResponse(
        Status::NotFound(request.method + " " + path + " has no handler"));
  }

  // ---- health + heartbeat are exempt from admission and deadlines -----
  // (the router must be able to read a saturated backend's load; a 429
  // heartbeat would blind the rebalancer exactly when it matters).
  if (route == Route::kHealthz) return HandleHealthz();
  if (route == Route::kHeartbeat) return HandleHeartbeat();

  // ---- admission ------------------------------------------------------
  int inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (inflight > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    rejected_inflight_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(Status::ResourceExhausted(
        "server overloaded: " + std::to_string(inflight - 1) +
        " requests in flight"));
  }
  struct InflightRelease {
    std::atomic<int>* counter;
    ~InflightRelease() { counter->fetch_sub(1, std::memory_order_relaxed); }
  } release{&inflight_};

  // ---- deadline -------------------------------------------------------
  int64_t deadline_ms = options_.default_deadline_ms;
  std::string_view header = request.Header("x-mlake-deadline-ms");
  if (!header.empty()) {
    char* end = nullptr;
    long v = std::strtol(std::string(header).c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v <= 0) {
      return ErrorResponse(
          Status::InvalidArgument("malformed X-Mlake-Deadline-Ms header"));
    }
    deadline_ms = v;
  }
  bool has_deadline = deadline_ms > 0;
  auto deadline = arrival + std::chrono::milliseconds(deadline_ms);
  if (has_deadline && Clock::now() >= deadline) {
    return ErrorResponse(Status::DeadlineExceeded(
        "deadline of " + std::to_string(deadline_ms) +
        " ms expired before execution"));
  }

  // ---- handler --------------------------------------------------------
  HttpResponse response;
  switch (route) {
    case Route::kStatsz: response = HandleStatsz(); break;
    case Route::kModelList: response = HandleModelList(); break;
    case Route::kModelGet: response = HandleModelGet(id); break;
    case Route::kLineage: response = HandleLineage(id); break;
    case Route::kEmbedding: response = HandleEmbedding(id); break;
    case Route::kSearch:
      response = HandleSearch(request, endpoint_label);
      break;
    case Route::kIngest: response = HandleIngest(request); break;
    case Route::kCitation: response = HandleCitation(request, id); break;
    case Route::kModelDoc: response = HandleModelDoc(id); break;
    case Route::kAudit: response = HandleAudit(id); break;
    case Route::kExport: response = HandleExport(request); break;
    case Route::kReplLog: response = HandleReplicationLog(request); break;
    case Route::kReplBlob: response = HandleReplicationBlob(id); break;
    case Route::kReplFingerprint:
      response = HandleReplicationFingerprint();
      break;
    case Route::kReplSeed: response = HandleReplicationSeed(); break;
    case Route::kReplShip: response = HandleReplicationShip(request); break;
    case Route::kReplPromote: response = HandleReplicationPromote(); break;
    case Route::kDebugSleep:
      response = HandleDebugSleep(request, deadline, has_deadline, fd);
      break;
    case Route::kHealthz:
    case Route::kHeartbeat:
    case Route::kUnmatched:
      response = ErrorResponse(Status::Internal("unreachable route"));
      break;
  }

  // The handler itself may have spent the deadline; a late answer is a
  // missed deadline, not a success.
  if (has_deadline && response.status < 400 && Clock::now() >= deadline) {
    return ErrorResponse(Status::DeadlineExceeded(
        "deadline of " + std::to_string(deadline_ms) +
        " ms expired during execution"));
  }
  return response;
}

HttpResponse LakeServer::HandleHealthz() const {
  Json body = Json::MakeObject();
  bool draining = draining_.load();
  body.Set("status", draining ? "draining" : "ok");
  return JsonResponse(std::move(body), draining ? 503 : 200);
}

HttpResponse LakeServer::HandleHeartbeat() const {
  Json body = Json::MakeObject();
  body.Set("shard_id", options_.shard_id);
  body.Set("cluster_size", options_.cluster_size);
  body.Set("models", lake_->NumModels());
  body.Set("index_generation",
           static_cast<int64_t>(lake_->IndexGeneration()));
  body.Set("draining", draining_.load());
  body.Set("inflight", inflight_.load());
  // Replication role, for the router's read routing and failover: a
  // "replica" serves reads (with a watermark), a "leader" also takes
  // writes, a "standalone" node predates replication and does both.
  bool is_replica =
      options_.replication != nullptr && options_.replication->IsReplica();
  body.Set("role", is_replica ? "replica"
                              : (lake_->ReplicationLogEnabled()
                                     ? "leader"
                                     : "standalone"));
  if (lake_->ReplicationLogEnabled()) {
    body.Set("replication_epoch", lake_->ReplicationEpoch());
    body.Set("applied_seq", is_replica
                                ? options_.replication->AppliedSeq()
                                : lake_->ReplicationLastSeq());
  }
  // The search-family p95 (all "POST /v1/search:*" kinds merged) is
  // what the router's hedging policy keys its per-shard delay off.
  EndpointStats search = metrics_.AggregateSnapshot("POST /v1/search");
  body.Set("search_requests", search.requests);
  body.Set("search_p95_us", search.latency.PercentileUs(95));
  return JsonResponse(std::move(body));
}

HttpResponse LakeServer::HandleEmbedding(const std::string& id) const {
  auto vec = lake_->EmbeddingFor(id);
  if (!vec.ok()) return ErrorResponse(vec.status());
  Json arr = Json::MakeArray();
  for (float f : vec.ValueUnsafe()) {
    arr.Append(Json(static_cast<double>(f)));
  }
  Json body = Json::MakeObject();
  body.Set("id", id);
  body.Set("embedding", std::move(arr));
  return JsonResponse(std::move(body));
}

HttpResponse LakeServer::HandleStatsz() const { return JsonResponse(StatszJson()); }

Json LakeServer::StatszJson() const {
  Json out = Json::MakeObject();
  out.Set("models", lake_->NumModels());

  // Quarantine visibility (PR 4): degraded ids and the last recovery.
  std::vector<std::string> degraded = lake_->DegradedModels();
  Json degraded_json = Json::MakeArray();
  for (const std::string& d : degraded) degraded_json.Append(Json(d));
  out.Set("degraded_models", degraded.size());
  out.Set("degraded_model_ids", std::move(degraded_json));
  out.Set("recovery", lake_->recovery().ToJson());

  out.Set("caches", lake_->CacheStatsJson());
  out.Set("index", lake_->IndexStatsJson());
  out.Set("planner", lake_->PlannerStatsJson());

  if (batcher_ != nullptr) {
    out.Set("batching", batcher_->StatsJson());
  } else {
    Json batching = Json::MakeObject();
    batching.Set("enabled", false);
    out.Set("batching", std::move(batching));
  }

  Json server = Json::MakeObject();
  server.Set("uptime_ms", ElapsedMs(start_time_));
  server.Set("threads", options_.threads);
  server.Set("draining", draining_.load());
  server.Set("connections_accepted", connections_accepted_.load());
  server.Set("inflight", inflight_.load());
  server.Set("max_inflight", options_.max_inflight);
  server.Set("queued_connections", queued_conns_.load());
  server.Set("max_queue", options_.max_queue);
  server.Set("rejected_inflight", rejected_inflight_.load());
  server.Set("rejected_queue", rejected_queue_.load());
  out.Set("server", std::move(server));

  if (options_.replication != nullptr) {
    out.Set("replication", options_.replication->StatszJson());
  } else if (lake_->ReplicationLogEnabled()) {
    Json repl = Json::MakeObject();
    repl.Set("role", "leader");
    repl.Set("epoch", lake_->ReplicationEpoch());
    repl.Set("last_seq", lake_->ReplicationLastSeq());
    out.Set("replication", std::move(repl));
  }

  out.Set("governance", governance_stats_.ToJson());

  out.Set("endpoints", metrics_.ToJson());
  return out;
}

HttpResponse LakeServer::HandleModelList() const {
  std::vector<std::string> ids = lake_->ListModels();
  Json arr = Json::MakeArray();
  for (const std::string& model_id : ids) {
    Json entry = Json::MakeObject();
    entry.Set("id", model_id);
    auto card = lake_->CardFor(model_id);
    entry.Set("task", card.ok() ? card.ValueUnsafe().task : "");
    entry.Set("degraded", lake_->IsDegraded(model_id));
    arr.Append(std::move(entry));
  }
  Json body = Json::MakeObject();
  body.Set("count", ids.size());
  body.Set("models", std::move(arr));
  return JsonResponse(std::move(body));
}

HttpResponse LakeServer::HandleModelGet(const std::string& id) const {
  auto card = lake_->CardFor(id);
  if (!card.ok()) return ErrorResponse(card.status());
  Json body = Json::MakeObject();
  body.Set("id", id);
  body.Set("card", card.ValueUnsafe().ToJson());
  body.Set("degraded", lake_->IsDegraded(id));
  auto lineage = lake_->Lineage(id);
  body.Set("lineage", lineage.ok() ? lineage.MoveValueUnsafe() : Json());
  return JsonResponse(std::move(body));
}

HttpResponse LakeServer::HandleLineage(const std::string& id) const {
  auto lineage = lake_->Lineage(id);
  if (!lineage.ok()) return ErrorResponse(lineage.status());
  return JsonResponse(lineage.MoveValueUnsafe());
}

bool LakeServer::RejectStaleGovernanceRead(HttpResponse* response) const {
  if (options_.replication == nullptr) return false;
  if (!options_.replication->IsReplica()) return false;
  if (options_.replication->CaughtUp()) return false;
  governance_stats_.stale_rejected.fetch_add(1, std::memory_order_relaxed);
  uint64_t lag = options_.replication->LagEntries();
  *response = ErrorResponse(Status::Unavailable(
      "replica not caught up (lag " + std::to_string(lag) +
      " entries); retry against this node shortly or read the leader"));
  response->headers.emplace_back(
      "Retry-After",
      std::to_string(options_.replication->StaleRetryAfterSeconds()));
  return true;
}

HttpResponse LakeServer::HandleCitation(const HttpRequest& request,
                                        const std::string& id) const {
  HttpResponse stale;
  if (RejectStaleGovernanceRead(&stale)) return stale;
  auto doc = governance::CitationDoc(*lake_, id);
  if (!doc.ok()) return ErrorResponse(doc.status());
  governance_stats_.citations.fetch_add(1, std::memory_order_relaxed);
  std::string format = request.QueryParam("format", "json");
  if (format == "text" || format == "bibtex") {
    HttpResponse response;
    response.content_type = "text/plain; charset=utf-8";
    response.body = doc.ValueUnsafe().GetString(format);
    response.body.push_back('\n');
    return response;
  }
  if (format != "json") {
    return ErrorResponse(Status::InvalidArgument(
        "format must be one of json, text, bibtex; got \"" + format + "\""));
  }
  return JsonResponse(doc.MoveValueUnsafe());
}

HttpResponse LakeServer::HandleModelDoc(const std::string& id) const {
  HttpResponse stale;
  if (RejectStaleGovernanceRead(&stale)) return stale;
  auto doc = governance::GeneratedDoc(*lake_, id);
  if (!doc.ok()) return ErrorResponse(doc.status());
  governance_stats_.docs.fetch_add(1, std::memory_order_relaxed);
  return JsonResponse(doc.MoveValueUnsafe());
}

HttpResponse LakeServer::HandleAudit(const std::string& id) const {
  HttpResponse stale;
  if (RejectStaleGovernanceRead(&stale)) return stale;
  auto doc = governance::AuditDoc(*lake_, id);
  if (!doc.ok()) return ErrorResponse(doc.status());
  governance_stats_.audits.fetch_add(1, std::memory_order_relaxed);
  return JsonResponse(doc.MoveValueUnsafe());
}

HttpResponse LakeServer::HandleExport(const HttpRequest& request) const {
  HttpResponse stale;
  if (RejectStaleGovernanceRead(&stale)) return stale;

  // Conditional fast path: the change key is (mutation_epoch,
  // index_generation) — cheap to read without opening a snapshot. If
  // the client's tag still matches, nothing observable changed since
  // its last pull.
  std::string current_etag =
      governance::ExportEtag(lake_->MutationEpoch(), lake_->IndexGeneration());
  std::string_view if_none_match = request.Header("if-none-match");
  if (!if_none_match.empty() && if_none_match == current_etag) {
    governance_stats_.export_not_modified.fetch_add(
        1, std::memory_order_relaxed);
    HttpResponse response;
    response.status = 304;
    response.content_type.clear();
    response.headers.emplace_back("ETag", current_etag);
    return response;
  }

  // The iterator pins a consistent snapshot (shared lock) and carries
  // the change key it observed at acquisition, so the tag we send
  // always describes the body we stream — even if a writer slips in
  // between the cheap read above and here.
  auto iterator = std::shared_ptr<core::ModelLake::ExportIterator>(
      lake_->OpenExport());
  governance_stats_.exports.fetch_add(1, std::memory_order_relaxed);

  HttpResponse response;
  response.content_type = "application/x-ndjson";
  response.headers.emplace_back(
      "ETag", governance::ExportEtag(iterator->mutation_epoch(),
                                     iterator->index_generation()));
  response.streamer =
      governance::MakeExportStreamer(std::move(iterator), &governance_stats_);
  return response;
}

HttpResponse LakeServer::HandleSearch(const HttpRequest& request,
                                      std::string* endpoint_label) const {
  // Test/bench seam: idle (non-CPU) delay modeling per-shard service
  // time, or slowing one shard so the router's hedge fires.
  if (options_.test_search_delay_us != nullptr) {
    int64_t delay =
        options_.test_search_delay_us->load(std::memory_order_relaxed);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(BodyError(parsed.status(), "malformed JSON body"));
  }
  const Json& body = parsed.ValueUnsafe();
  if (!body.is_object()) {
    return ErrorResponse(Status::InvalidArgument("body must be an object"));
  }
  std::string type = body.GetString("type", "mlql");
  if (endpoint_label != nullptr &&
      (type == "mlql" || type == "ann" || type == "keyword" ||
       type == "hybrid" || type == "ann_vec" || type == "keyword_stats" ||
       type == "hybrid_parts")) {
    // Per-kind latency split in /statsz ("POST /v1/search:ann", ...);
    // unknown types stay under the bare route to bound cardinality.
    endpoint_label->append(":").append(type);
  }
  size_t k = static_cast<size_t>(body.GetInt64("k", 5));
  if (k == 0 || k > 10000) {
    return ErrorResponse(Status::InvalidArgument("k must be in [1, 10000]"));
  }

  Json out = Json::MakeObject();
  out.Set("type", type);
  if (type == "mlql") {
    std::string query = body.GetString("query");
    if (query.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("mlql search requires \"query\""));
    }
    // Cluster-internal: a scatter leg may carry an overlay — hint
    // embeddings for off-shard query models plus global BM25 stats —
    // so this shard scores its documents exactly as a merged lake
    // would.
    const Json* overlay_json = body.Find("overlay");
    search::SearchOverlay overlay;
    bool has_overlay = false;
    if (overlay_json != nullptr) {
      if (!overlay_json->is_object()) {
        return ErrorResponse(
            Status::InvalidArgument("overlay must be an object"));
      }
      has_overlay = true;
      if (const Json* embs = overlay_json->Find("embeddings");
          embs != nullptr && embs->is_object()) {
        for (const auto& [emb_id, arr] : embs->AsObject()) {
          auto vec = FloatVecFromJson(arr, "overlay embedding");
          if (!vec.ok()) return ErrorResponse(vec.status());
          overlay.embeddings[emb_id] = vec.MoveValueUnsafe();
        }
      }
      if (const Json* bm25 = overlay_json->Find("bm25");
          bm25 != nullptr && bm25->is_object()) {
        const Json* stats_json = bm25->Find("stats");
        if (stats_json == nullptr) {
          return ErrorResponse(
              Status::InvalidArgument("overlay bm25 requires \"stats\""));
        }
        auto stats = Bm25StatsFromJson(*stats_json);
        if (!stats.ok()) return ErrorResponse(stats.status());
        overlay.has_bm25 = true;
        overlay.bm25_text = bm25->GetString("text");
        overlay.bm25_stats = stats.MoveValueUnsafe();
      }
    }
    auto result = has_overlay ? lake_->QueryWithOverlay(query, overlay)
                              : lake_->Query(query);
    if (!result.ok()) return ErrorResponse(result.status());
    out.Set("plan", result.ValueUnsafe().plan);
    out.Set("models", RankedModelsJson(result.ValueUnsafe().models));
  } else if (type == "ann") {
    std::string query_id = body.GetString("id");
    if (query_id.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("ann search requires \"id\""));
    }
    auto result = batcher_ != nullptr ? batcher_->RelatedModels(query_id, k)
                                      : lake_->RelatedModels(query_id, k);
    if (!result.ok()) return ErrorResponse(result.status());
    out.Set("models", RankedModelsJson(result.ValueUnsafe()));
  } else if (type == "keyword") {
    std::string query = body.GetString("query");
    if (query.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("keyword search requires \"query\""));
    }
    // Cluster-internal: with global "stats" attached, this shard's
    // documents score exactly as they would in the merged corpus
    // (bypasses the batcher — stats-carrying probes don't coalesce).
    if (const Json* stats_json = body.Find("stats"); stats_json != nullptr) {
      auto stats = Bm25StatsFromJson(*stats_json);
      if (!stats.ok()) return ErrorResponse(stats.status());
      auto result =
          lake_->KeywordScoresWithStats(query, k, stats.ValueUnsafe());
      if (!result.ok()) return ErrorResponse(result.status());
      out.Set("models", ScoredPairsJson(result.ValueUnsafe()));
      return JsonResponse(std::move(out));
    }
    auto result = batcher_ != nullptr ? batcher_->KeywordScores(query, k)
                                      : lake_->KeywordScores(query, k);
    if (!result.ok()) return ErrorResponse(result.status());
    out.Set("models", ScoredPairsJson(result.ValueUnsafe()));
  } else if (type == "keyword_stats") {
    // Cluster-internal phase 1 of distributed BM25: this shard's
    // integer contribution to the query's corpus statistics.
    std::string query = body.GetString("query");
    if (query.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("keyword_stats requires \"query\""));
    }
    out.Set("stats", Bm25StatsToJson(lake_->CollectBm25Stats(query)));
  } else if (type == "ann_vec") {
    // Cluster-internal: ann search by raw vector (the router resolves
    // the query model's embedding on its owning shard first).
    const Json* vec_json = body.Find("vec");
    if (vec_json == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("ann_vec search requires \"vec\""));
    }
    auto vec = FloatVecFromJson(*vec_json, "vec");
    if (!vec.ok()) return ErrorResponse(vec.status());
    auto result = lake_->RelatedModelsByVector(
        vec.ValueUnsafe(), k, body.GetString("exclude_id"));
    if (!result.ok()) return ErrorResponse(result.status());
    out.Set("models", RankedModelsJson(result.ValueUnsafe()));
  } else if (type == "hybrid_parts") {
    // Cluster-internal: this shard's WHERE-filtered candidates with
    // their dot products against the query vector — the raw material
    // the router fuses with the global keyword ranking (RRF).
    std::string query = body.GetString("query");
    const Json* vec_json = body.Find("vec");
    if (query.empty() || vec_json == nullptr) {
      return ErrorResponse(Status::InvalidArgument(
          "hybrid_parts requires \"query\" and \"vec\""));
    }
    auto vec = FloatVecFromJson(*vec_json, "vec");
    if (!vec.ok()) return ErrorResponse(vec.status());
    auto parts = lake_->HybridParts(query, vec.ValueUnsafe());
    if (!parts.ok()) return ErrorResponse(parts.status());
    Json arr = Json::MakeArray();
    for (const search::HybridCandidate& c : parts.ValueUnsafe()) {
      Json j = Json::MakeObject();
      j.Set("id", c.id);
      if (c.has_dot) j.Set("dot", c.dot);
      arr.Append(std::move(j));
    }
    out.Set("candidates", std::move(arr));
  } else if (type == "hybrid") {
    std::string query = body.GetString("query");
    std::string query_id = body.GetString("id");
    if (query.empty() || query_id.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "hybrid search requires \"query\" and \"id\""));
    }
    auto result = lake_->HybridSearch(query, query_id, k);
    if (!result.ok()) return ErrorResponse(result.status());
    out.Set("models", RankedModelsJson(result.ValueUnsafe()));
  } else {
    return ErrorResponse(Status::InvalidArgument(
        "unknown search type \"" + type +
        "\" (want mlql | ann | keyword | hybrid | ann_vec | "
        "keyword_stats | hybrid_parts)"));
  }
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleIngest(const HttpRequest& request) const {
  // A read replica's state is exactly the leader's log; a direct write
  // here would fork it. Promote the node first.
  if (options_.replication != nullptr && options_.replication->IsReplica()) {
    return ErrorResponse(Status::FailedPrecondition(
        "read replica: ingest via the leader, or promote this node"));
  }
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(BodyError(parsed.status(), "malformed JSON body"));
  }
  const Json& body = parsed.ValueUnsafe();
  if (!body.is_object()) {
    return ErrorResponse(Status::InvalidArgument("body must be an object"));
  }
  const Json* card_json = body.Find("card");
  if (card_json == nullptr) {
    return ErrorResponse(Status::InvalidArgument("ingest requires \"card\""));
  }
  auto card = metadata::ModelCard::FromJson(*card_json);
  if (!card.ok()) {
    return ErrorResponse(BodyError(card.status(), "malformed card"));
  }
  std::string artifact_b64 = body.GetString("artifact_b64");
  if (artifact_b64.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("ingest requires \"artifact_b64\""));
  }
  auto bytes = Base64Decode(artifact_b64);
  if (!bytes.ok()) {
    return ErrorResponse(BodyError(bytes.status(), "malformed artifact_b64"));
  }
  std::string digest = Sha256::HexDigest(bytes.ValueUnsafe());
  // Idempotency: a router (or any client) that could not tell whether a
  // half-delivered ingest applied retries with the artifact digest as
  // X-Mlake-Idempotency-Key. If the model already exists with exactly
  // these bytes, answer success instead of AlreadyExists — the retry
  // and the original are the same logical request.
  if (std::string_view key = request.Header("x-mlake-idempotency-key");
      !key.empty() && key == digest) {
    auto existing = lake_->ArtifactDigest(card.ValueUnsafe().model_id);
    if (existing.ok() && existing.ValueUnsafe() == digest) {
      Json out = Json::MakeObject();
      out.Set("id", card.ValueUnsafe().model_id);
      out.Set("deduped", true);
      return JsonResponse(std::move(out));
    }
  }
  // Shard guard: in a cluster a model lives on the shard its content
  // digest routes to. A misdirected write would fork the lake (the
  // router could never find the model again), so reject it here — the
  // router retries against the owner.
  if (options_.shard_id >= 0 && options_.cluster_size > 1) {
    uint64_t owner = ShardSlotForDigest(
        digest, static_cast<uint64_t>(options_.cluster_size));
    if (owner != static_cast<uint64_t>(options_.shard_id)) {
      return ErrorResponse(Status::FailedPrecondition(
          "artifact digest routes to shard " + std::to_string(owner) +
          ", not this shard (" + std::to_string(options_.shard_id) + ")"));
    }
  }
  auto artifact = storage::ParseArtifact(bytes.ValueUnsafe());
  if (!artifact.ok()) {
    return ErrorResponse(BodyError(artifact.status(), "malformed artifact"));
  }
  auto model = storage::ModelFromArtifact(artifact.ValueUnsafe());
  if (!model.ok()) {
    return ErrorResponse(BodyError(model.status(), "artifact has no model"));
  }
  auto ingested = lake_->IngestModel(*model.ValueUnsafe(), card.ValueUnsafe());
  if (!ingested.ok()) return ErrorResponse(ingested.status());

  Json out = Json::MakeObject();
  out.Set("id", ingested.ValueUnsafe());

  // Optional one-edge lineage claim: {"parent": ..., "edge_type": ...}.
  // The model is already durably ingested at this point, so an edge
  // failure is reported in-band instead of failing the request.
  std::string parent = body.GetString("parent");
  if (!parent.empty()) {
    auto type =
        versioning::EdgeTypeFromString(body.GetString("edge_type", "finetune"));
    Status edge_status =
        type.ok()
            ? lake_->RecordEdge({parent, ingested.ValueUnsafe(),
                                 type.ValueUnsafe(), Json(), 1.0})
            : type.status();
    out.Set("edge_recorded", edge_status.ok());
    if (!edge_status.ok()) out.Set("edge_error", edge_status.ToString());
  }
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleReplicationLog(
    const HttpRequest& request) const {
  char* end = nullptr;
  uint64_t from = std::strtoull(request.QueryParam("from", "1").c_str(),
                                &end, 10);
  if (from == 0) from = 1;
  uint64_t max = std::strtoull(request.QueryParam("max", "64").c_str(),
                               &end, 10);
  if (max == 0 || max > 4096) max = 64;
  auto out = lake_->ReplicationLogJson(from, static_cast<size_t>(max));
  if (!out.ok()) return ErrorResponse(out.status());
  return JsonResponse(out.MoveValueUnsafe());
}

HttpResponse LakeServer::HandleReplicationBlob(
    const std::string& digest) const {
  auto bytes = lake_->ReadBlob(digest);
  if (!bytes.ok()) return ErrorResponse(bytes.status());
  Json out = Json::MakeObject();
  out.Set("digest", digest);
  out.Set("bytes_b64", Base64Encode(bytes.ValueUnsafe()));
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleReplicationFingerprint() const {
  if (!lake_->ReplicationLogEnabled()) {
    return ErrorResponse(Status::FailedPrecondition(
        "replication log disabled on this lake"));
  }
  // last_seq rides along so a replica only compares fingerprints when
  // its watermark has caught up to the state the fingerprint describes.
  Json out = Json::MakeObject();
  out.Set("fingerprint", lake_->ReplicationFingerprint());
  out.Set("epoch", lake_->ReplicationEpoch());
  out.Set("last_seq", lake_->ReplicationLastSeq());
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleReplicationSeed() const {
  auto manifest = lake_->ReplicationSeedJson();
  if (!manifest.ok()) return ErrorResponse(manifest.status());
  // Framed in the PR-6 snapshot container (magic, CRC'd TOC), so the
  // replica validates integrity before trusting a multi-megabyte seed.
  uint64_t upto = static_cast<uint64_t>(
      manifest.ValueUnsafe().GetInt64("upto_seq", 0));
  index::SnapshotWriter writer(index::SnapshotKind::kReplicationSeed, upto);
  std::string dump = manifest.ValueUnsafe().Dump();
  writer.AddSection("manifest", dump.data(), dump.size());
  auto container = writer.Serialize();
  if (!container.ok()) return ErrorResponse(container.status());
  Json out = Json::MakeObject();
  out.Set("upto_seq", Json(upto));
  out.Set("container_b64", Base64Encode(container.ValueUnsafe()));
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleReplicationShip(
    const HttpRequest& request) const {
  if (options_.replication == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "not a replica: nothing accepts shipped log entries here"));
  }
  auto parsed = Json::Parse(request.body);
  if (!parsed.ok()) {
    return ErrorResponse(BodyError(parsed.status(), "malformed JSON body"));
  }
  auto out = options_.replication->Ship(parsed.ValueUnsafe());
  if (!out.ok()) return ErrorResponse(out.status());
  return JsonResponse(out.MoveValueUnsafe());
}

HttpResponse LakeServer::HandleReplicationPromote() const {
  if (options_.replication == nullptr) {
    return ErrorResponse(Status::FailedPrecondition(
        "not a replica: already " +
        std::string(lake_->ReplicationLogEnabled() ? "a leader"
                                                   : "standalone")));
  }
  Status promoted = options_.replication->Promote();
  if (!promoted.ok()) return ErrorResponse(promoted);
  Json out = Json::MakeObject();
  out.Set("role", "leader");
  out.Set("epoch", lake_->ReplicationEpoch());
  out.Set("applied_seq", options_.replication->AppliedSeq());
  return JsonResponse(std::move(out));
}

HttpResponse LakeServer::HandleDebugSleep(const HttpRequest& request,
                                          Clock::time_point deadline,
                                          bool has_deadline, int fd) const {
  long ms = std::strtol(request.QueryParam("ms", "100").c_str(), nullptr, 10);
  if (ms < 0) ms = 0;
  if (ms > 10000) ms = 10000;
  auto wake = Clock::now() + std::chrono::milliseconds(ms);
  // Sliced sleep so an expired deadline — or a severed connection (the
  // drain deadline's force-close) — is noticed promptly mid-nap.
  while (Clock::now() < wake) {
    if (has_deadline && Clock::now() >= deadline) {
      return ErrorResponse(
          Status::DeadlineExceeded("deadline expired while sleeping"));
    }
    if (SocketDead(fd)) {
      return ErrorResponse(Status::Unavailable("connection severed"));
    }
    auto next = std::min(wake, Clock::now() + std::chrono::milliseconds(5));
    std::this_thread::sleep_until(next);
  }
  Json body = Json::MakeObject();
  body.Set("slept_ms", static_cast<int64_t>(ms));
  return JsonResponse(std::move(body));
}

}  // namespace mlake::server
