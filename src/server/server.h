#ifndef MLAKE_SERVER_SERVER_H_
#define MLAKE_SERVER_SERVER_H_

// mlaked — the lake's serving layer: a thread-pool HTTP/1.1 server
// (portable POSIX sockets, no external dependencies) exposing a
// ModelLake as a JSON API.
//
//   GET  /healthz            liveness (503 while draining)
//   GET  /v1/heartbeat       cluster heartbeat (shard identity, load,
//                            search p95) — admission-exempt
//   GET  /statsz             request metrics, admission counters, cache
//                            stats, recovery report, degraded models
//   GET  /v1/models          model listing (id, task, degraded)
//   GET  /v1/models/{id}     card + lineage
//   GET  /v1/lineage/{id}    version-graph neighborhood of one model
//
// Governance endpoints (DESIGN.md §15; on a replica these answer 503 +
// Retry-After until the watermark catches up to the leader):
//   GET  /v1/models/{id}/citation   citation document (?format=json|
//                                   text|bibtex)
//   GET  /v1/models/{id}/doc        generated model card + lineage +
//                                   audit evidence
//   GET  /v1/audit/{id}             audit questionnaire over HTTP
//   GET  /v1/export                 streaming NDJSON metadata dump of
//                                   the whole lake (chunked transfer,
//                                   O(1) memory; ETag/If-None-Match
//                                   keyed by (mutation_epoch,
//                                   index_generation) -> 304)
//   GET  /v1/embedding/{id}  raw embedding vector (cluster-internal)
//   POST /v1/search          {"type": "mlql"|"ann"|"keyword"|"hybrid", ...}
//                            plus the cluster-internal scatter types
//                            "ann_vec" | "keyword_stats" | "hybrid_parts"
//   POST /v1/ingest          {"card": {...}, "artifact_b64": "..."}
//                            (rejected with 409 on a read replica; an
//                            X-Mlake-Idempotency-Key header carrying the
//                            artifact digest makes a routed retry dedup)
//
// Replication endpoints (active when the lake keeps a replication log
// and/or ServerOptions.replication is set — see src/replication/):
//   GET  /v1/replication/log?from=N&max=M    committed log entries
//   GET  /v1/replication/blob/{digest}       artifact bytes (b64)
//   GET  /v1/replication/fingerprint         logical-state fingerprint
//   GET  /v1/replication/seed                re-seed snapshot container
//   POST /v1/replication/ship                leader-pushed log batch
//   POST /v1/replication/promote             replica -> leader
//
// Threading model: one blocking accept thread plus a worker pool
// (common/thread_pool) running thread-per-connection keep-alive loops.
// The lake's shared_mutex contract does the rest: search/read handlers
// run concurrently under the shared lock, ingest serializes under the
// exclusive lock.
//
// Admission control bounds both queue depth (connections accepted but
// not yet picked up by a worker) and in-flight requests (currently
// executing handlers); overload is answered with 429 + Retry-After,
// the HTTP face of Status::ResourceExhausted. Per-request deadlines
// (X-Mlake-Deadline-Ms header, or ServerOptions.default_deadline_ms)
// are enforced server-side before and after the lake call and map to
// 504 / Status::DeadlineExceeded.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/model_lake.h"
#include "governance/governance.h"
#include "server/batcher.h"
#include "server/http.h"
#include "server/metrics.h"

namespace mlake::server {

/// Seam between the server and the replication subsystem. The
/// replication library links against the server (it follows a leader
/// over HttpClient), so the server can only see it through this
/// interface. All methods must be thread-safe; the implementation must
/// outlive the server.
class ReplicationControl {
 public:
  virtual ~ReplicationControl() = default;
  /// True while this node is a read replica (direct ingest rejected).
  virtual bool IsReplica() const = 0;
  /// Last log seq durably applied on this node (the watermark).
  virtual uint64_t AppliedSeq() const = 0;
  /// The /statsz "replication" block: role, watermark, lag, epoch.
  virtual Json StatszJson() const = 0;
  /// Applies a leader-pushed log batch (ReplicationLogJson shape);
  /// epoch-fenced — a stale leader's ship answers FailedPrecondition.
  /// Returns {"applied_seq": N}.
  virtual Result<Json> Ship(const Json& batch) = 0;
  /// Manual promotion: stop following, durably bump the epoch, start
  /// accepting writes.
  virtual Status Promote() = 0;

  // Watermark-staleness surface (governance reads; defaults describe a
  // node that never lags, so pre-existing implementations stay valid).

  /// Entries this node still trails the leader's last known log seq by
  /// (0 when caught up — but see CaughtUp: before the first completed
  /// sync the lag is unknown and also reads 0).
  virtual uint64_t LagEntries() const { return 0; }
  /// True once this node has completed at least one sync against the
  /// leader and applied everything the leader had. Governance reads on
  /// a replica that is not caught up answer 503 instead of silently
  /// serving stale data.
  virtual bool CaughtUp() const { return true; }
  /// Client back-off to advertise with that 503, in whole seconds —
  /// implementations derive it from the watermark lag and their pull
  /// cadence (governance::RetryAfterSeconds).
  virtual int StaleRetryAfterSeconds() const { return 1; }
};

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see LakeServer::port()).
  int port = 0;
  /// Worker pool size — the maximum number of concurrently served
  /// connections (thread-per-connection).
  int threads = 8;
  /// Maximum concurrently executing requests; the excess is rejected
  /// with 429 + Retry-After (ResourceExhausted).
  int max_inflight = 64;
  /// Maximum connections accepted but not yet picked up by a worker;
  /// beyond it the accept thread answers 429 directly and closes.
  int max_queue = 128;
  /// A keep-alive connection is closed after this many requests so a
  /// saturated pool rotates to queued connections (fairness; clients
  /// reconnect transparently). 0 = unlimited.
  int max_requests_per_connection = 1000;
  /// Idle keep-alive connections are closed after this long, freeing
  /// their worker.
  int keep_alive_timeout_ms = 30000;
  /// Deadline applied when a request carries no X-Mlake-Deadline-Ms
  /// header. 0 = none.
  int default_deadline_ms = 0;
  /// How long Stop() waits for in-flight requests to finish before
  /// force-closing their connections.
  int drain_deadline_ms = 5000;
  size_t max_body_bytes = 64u << 20;
  /// Enables GET /debug/sleep?ms=N (deterministic slow handler used by
  /// the shutdown/admission/deadline tests and nothing else).
  bool enable_debug_endpoints = false;
  /// Coalesces compatible concurrent ann/keyword /v1/search probes
  /// into one batched index probe (see server/batcher.h). Results are
  /// bit-identical to solo execution; only scheduling changes. The env
  /// var MLAKE_TEST_BATCH_WINDOW_US (set by the TSan CI job) overrides
  /// the window and forces batching on.
  bool enable_batching = true;
  int64_t batch_window_us = 250;
  int max_batch = 16;
  /// Cluster identity. shard_id >= 0 marks this backend as shard
  /// `shard_id` of a `cluster_size`-way digest-sharded lake:
  /// /v1/ingest rejects artifacts whose digest routes to another shard
  /// (a misdirected write would silently fork the lake), and
  /// /v1/heartbeat reports the identity to the router. shard_id < 0 =
  /// standalone server, no guard.
  int shard_id = -1;
  int cluster_size = 0;
  /// Replication seam (see ReplicationControl above). Null on a
  /// standalone server or a pure leader; set on replicas so ingest is
  /// fenced and ship/promote have somewhere to land.
  ReplicationControl* replication = nullptr;
  /// Test/bench seam: extra per-request delay (µs of idle wait, not
  /// CPU) injected at the top of every /v1/search handler. Shared and
  /// atomic so tests and the cluster bench can retune a *running*
  /// server — e.g. slow one shard down so the router's hedged retry
  /// fires deterministically, or model per-shard service time in the
  /// sim_node scaling experiment. Null or <= 0 = no delay.
  std::shared_ptr<std::atomic<int64_t>> test_search_delay_us;
};

/// A running lake server. The lake must outlive the server; the server
/// only ever calls the lake's public (self-locking) API.
class LakeServer {
 public:
  LakeServer(core::ModelLake* lake, ServerOptions options);
  ~LakeServer();

  LakeServer(const LakeServer&) = delete;
  LakeServer& operator=(const LakeServer&) = delete;

  /// Binds, listens and starts the accept thread + worker pool.
  Status Start();

  /// Graceful shutdown: stops accepting, lets in-flight requests finish
  /// (bounded by drain_deadline_ms, then force-closes), joins all
  /// threads. Idempotent; also run by the destructor.
  Status Stop();

  /// The bound port (the actual one when options.port was 0). Valid
  /// after Start().
  int port() const { return port_; }

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  const ServerOptions& options() const { return options_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The /statsz document (also printed by `mlake serve` on shutdown).
  Json StatszJson() const;

 private:
  /// How one connection's read loop ended.
  enum class ReadOutcome { kRequest, kClosed, kIdleTimeout, kDrainingIdle,
                           kMalformed };

  void AcceptLoop();
  void HandleConnection(int fd);
  ReadOutcome ReadRequest(int fd, std::string* buf, HttpRequest* request,
                          Status* parse_error);
  HttpResponse Dispatch(const HttpRequest& request,
                        std::chrono::steady_clock::time_point arrival,
                        std::string* endpoint_label, int fd);

  HttpResponse HandleHealthz() const;
  /// Cluster heartbeat: shard identity, model count, index generation,
  /// inflight/draining, and the search-family p95 the router's hedging
  /// policy keys off. Admission- and deadline-exempt like /healthz.
  HttpResponse HandleHeartbeat() const;
  HttpResponse HandleStatsz() const;
  /// Raw embedding vector for one model (router-side ann resolve: the
  /// owning shard answers, every other shard 404s).
  HttpResponse HandleEmbedding(const std::string& id) const;
  HttpResponse HandleModelList() const;
  HttpResponse HandleModelGet(const std::string& id) const;
  HttpResponse HandleLineage(const std::string& id) const;
  // Governance handlers (DESIGN.md §15). Each begins with the replica
  // staleness guard below.
  HttpResponse HandleCitation(const HttpRequest& request,
                              const std::string& id) const;
  HttpResponse HandleModelDoc(const std::string& id) const;
  HttpResponse HandleAudit(const std::string& id) const;
  HttpResponse HandleExport(const HttpRequest& request) const;
  /// Governance reads must not silently serve stale data: on a replica
  /// whose watermark trails the leader, fills `*response` with 503 +
  /// Retry-After (derived from the lag) and returns true.
  bool RejectStaleGovernanceRead(HttpResponse* response) const;
  /// Appends ":<kind>" to *endpoint_label for known search kinds so
  /// /statsz reports a per-kind latency split under "endpoints".
  HttpResponse HandleSearch(const HttpRequest& request,
                            std::string* endpoint_label) const;
  HttpResponse HandleIngest(const HttpRequest& request) const;
  HttpResponse HandleReplicationLog(const HttpRequest& request) const;
  HttpResponse HandleReplicationBlob(const std::string& digest) const;
  HttpResponse HandleReplicationFingerprint() const;
  HttpResponse HandleReplicationSeed() const;
  HttpResponse HandleReplicationShip(const HttpRequest& request) const;
  HttpResponse HandleReplicationPromote() const;
  HttpResponse HandleDebugSleep(
      const HttpRequest& request,
      std::chrono::steady_clock::time_point deadline, bool has_deadline,
      int fd) const;

  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);
  void ForceCloseConnections();

  core::ModelLake* lake_;
  ServerOptions options_;
  MetricsRegistry metrics_;
  /// Governance counters (/statsz "governance"); mutable because const
  /// read handlers bump them.
  mutable governance::GovernanceStats governance_stats_;
  /// Search coalescing (null when options_.enable_batching is false).
  std::unique_ptr<SearchBatcher> batcher_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> queued_conns_{0};
  std::atomic<int> inflight_{0};
  std::atomic<int> active_conns_{0};
  std::atomic<uint64_t> rejected_queue_{0};
  std::atomic<uint64_t> rejected_inflight_{0};
  std::atomic<uint64_t> connections_accepted_{0};

  /// Open connection fds, for force-close at the drain deadline.
  std::mutex conns_mu_;
  std::set<int> open_conns_;
  std::condition_variable drain_cv_;

  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace mlake::server

#endif  // MLAKE_SERVER_SERVER_H_
