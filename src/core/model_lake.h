#ifndef MLAKE_CORE_MODEL_LAKE_H_
#define MLAKE_CORE_MODEL_LAKE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "embed/embedder.h"
#include "index/hnsw_index.h"
#include "index/inverted_index.h"
#include "index/minhash_lsh.h"
#include "metadata/model_card.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "search/context.h"
#include "search/executor.h"
#include "storage/blob_store.h"
#include "storage/catalog.h"
#include "storage/model_artifact.h"
#include "versioning/heritage.h"
#include "versioning/model_graph.h"

namespace mlake::core {

/// Configuration of a lake instance.
///
/// All models in one lake share an input space (input_dim) and output
/// arity (num_classes) so that the extrinsic probe set is meaningful
/// across the lake — the benchmark-lake simplification documented in
/// DESIGN.md.
struct LakeOptions {
  std::string root;

  int64_t input_dim = 32;
  int64_t num_classes = 8;

  /// Shared extrinsic probe set.
  size_t probe_count = 24;
  uint64_t probe_seed = 20250325;

  /// Model embedder used for the ANN index: "behavioral",
  /// "weight_stats" or "fisher".
  std::string embedder = "behavioral";

  index::HnswConfig hnsw;

  /// MinHash/LSH sizing for dataset-overlap search. 32 bands x 2 rows
  /// keeps recall high down to Jaccard ~0.3 (sibling-domain overlap).
  size_t minhash_bands = 32;
  size_t minhash_rows = 2;
};

/// The model lake (paper Figure 2): content-addressed model storage, a
/// JSON metadata catalog, model embeddings with an ANN index, keyword
/// search over cards, dataset-overlap search, a version graph, and the
/// application layer (MLQL queries, related-model search, documentation
/// generation, auditing, citation, benchmarking).
class ModelLake : public search::SearchContext {
 public:
  /// Opens (or creates) a lake at options.root, rebuilding in-memory
  /// indices from the catalog.
  static Result<std::unique_ptr<ModelLake>> Open(LakeOptions options);

  ModelLake(const ModelLake&) = delete;
  ModelLake& operator=(const ModelLake&) = delete;

  // ------------------------------------------------------------ ingest

  /// Stores the model artifact (content-addressed), the card, the
  /// embedding, and updates every index. The card's model_id names the
  /// model and must be unique in the lake.
  Result<std::string> IngestModel(const nn::Model& model,
                                  const metadata::ModelCard& card);

  /// Reconstructs the live model from its stored artifact.
  Result<std::unique_ptr<nn::Model>> LoadModel(const std::string& id) const;

  Status UpdateCard(const metadata::ModelCard& card);

  std::vector<std::string> ListModels() const;
  size_t NumModels() const { return catalog_->CountKind("model"); }

  /// Verifies every stored artifact against its digest; returns the ids
  /// of corrupted models (empty = healthy).
  Result<std::vector<std::string>> FsckArtifacts() const;

  // ---------------------------------------------------------- datasets

  /// Registers a dataset (its shard ids) for overlap search.
  Status RegisterDataset(const std::string& name,
                         const std::vector<std::string>& shards);
  Result<std::vector<std::string>> DatasetShards(
      const std::string& name) const;
  std::vector<std::string> ListDatasets() const;

  // ----------------------------------------------------------- lineage

  /// Records a ground-truth derivation edge and persists the graph.
  Status RecordEdge(const versioning::VersionEdge& edge);

  const versioning::ModelGraph& graph() const { return graph_; }

  /// Reconstructs lineage from stored weights alone (no history).
  Result<versioning::HeritageResult> RecoverHeritage(
      const versioning::HeritageConfig& config = {}) const;

  // ------------------------------------------------------------ search

  /// Executes an MLQL query.
  Result<search::QueryResult> Query(std::string_view mlql) const;

  /// Model-as-query related-model search via the ANN index.
  Result<std::vector<search::RankedModel>> RelatedModels(
      const std::string& id, size_t k) const;

  /// Hybrid search (§5 roadmap): reciprocal-rank fusion of BM25 keyword
  /// relevance and embedding similarity to `query_model_id`. Robust to
  /// card rot on one side and embedding blind spots on the other.
  Result<std::vector<search::RankedModel>> HybridSearch(
      const std::string& text, const std::string& query_model_id,
      size_t k) const;

  // SearchContext implementation (used by the MLQL executor).
  std::vector<std::string> AllModelIds() const override;
  Result<metadata::ModelCard> CardFor(const std::string& id) const override;
  Result<std::vector<float>> EmbeddingFor(
      const std::string& id) const override;
  Result<std::vector<std::pair<std::string, float>>> NearestModels(
      const std::vector<float>& query, size_t k) const override;
  Result<std::vector<std::pair<std::string, double>>> KeywordScores(
      const std::string& text, size_t k) const override;
  Result<std::vector<std::pair<std::string, double>>> TrainedOn(
      const std::string& dataset, double min_overlap) const override;
  bool IsDescendantOf(const std::string& id,
                      const std::string& ancestor) const override;

  // ------------------------------------------------------ benchmarking

  /// Registers an evaluation dataset under a benchmark name (in-memory;
  /// benchmark suites are regenerable from task specs).
  Status RegisterBenchmark(const std::string& name, nn::Dataset data);
  std::vector<std::string> ListBenchmarks() const;

  /// Accuracy of a stored model on a registered benchmark.
  Result<double> EvaluateModel(const std::string& id,
                               const std::string& benchmark) const;

  // ------------------------------------------------------ applications

  /// Documentation generation (paper §6): drafts a card for `id` from
  /// lake analyses — architecture/size from the artifact, metrics from
  /// registered benchmarks, lineage from the version graph, task/tags
  /// inferred by majority vote over behaviorally-nearest documented
  /// models.
  Result<metadata::ModelCard> GenerateCard(const std::string& id) const;

  /// Auditing (paper §6): evidence-backed questionnaire answers about
  /// documentation completeness, lineage consistency, artifact
  /// integrity and benchmark coverage.
  Result<Json> AuditModel(const std::string& id) const;

  /// Citation (paper §6): a citation pinned to the current version-graph
  /// revision; changes exactly when the graph changes.
  Result<Json> Cite(const std::string& id) const;

  // ------------------------------------------------------------- misc

  const Tensor& probes() const { return probes_; }
  const LakeOptions& options() const { return options_; }
  storage::Catalog* catalog() { return catalog_.get(); }

 private:
  explicit ModelLake(LakeOptions options) : options_(std::move(options)) {}

  Status Initialize();
  Status RebuildIndices();
  Status PersistGraph();
  Status IndexModel(const std::string& id, const metadata::ModelCard& card,
                    const std::vector<float>& embedding);
  index::MinHashSignature DatasetSignature(
      const std::vector<std::string>& shards) const;

  LakeOptions options_;
  std::unique_ptr<storage::BlobStore> blobs_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<embed::ModelEmbedder> embedder_;
  Tensor probes_;

  std::unique_ptr<index::HnswIndex> ann_;
  std::vector<std::string> ann_ids_;  // ANN internal id -> model id
  index::InvertedIndex bm25_;
  std::unique_ptr<index::MinHashLsh> dataset_lsh_;

  versioning::ModelGraph graph_;
  std::map<std::string, nn::Dataset> benchmarks_;
};

}  // namespace mlake::core

#endif  // MLAKE_CORE_MODEL_LAKE_H_
