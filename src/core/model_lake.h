#ifndef MLAKE_CORE_MODEL_LAKE_H_
#define MLAKE_CORE_MODEL_LAKE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fs.h"
#include "common/json.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "embed/embedder.h"
#include "index/hnsw_index.h"
#include "index/inverted_index.h"
#include "index/minhash_lsh.h"
#include "metadata/model_card.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "search/context.h"
#include "search/executor.h"
#include "storage/blob_store.h"
#include "storage/cache.h"
#include "storage/catalog.h"
#include "storage/intent_journal.h"
#include "storage/model_artifact.h"
#include "versioning/heritage.h"
#include "versioning/model_graph.h"

namespace mlake::core {

/// Configuration of a lake instance.
///
/// All models in one lake share an input space (input_dim) and output
/// arity (num_classes) so that the extrinsic probe set is meaningful
/// across the lake — the benchmark-lake simplification documented in
/// DESIGN.md.
struct LakeOptions {
  std::string root;

  int64_t input_dim = 32;
  int64_t num_classes = 8;

  /// Shared extrinsic probe set.
  size_t probe_count = 24;
  uint64_t probe_seed = 20250325;

  /// Model embedder used for the ANN index: "behavioral",
  /// "weight_stats" or "fisher".
  std::string embedder = "behavioral";

  index::HnswConfig hnsw;

  /// MinHash/LSH sizing for dataset-overlap search. 32 bands x 2 rows
  /// keeps recall high down to Jaccard ~0.3 (sibling-domain overlap).
  size_t minhash_bands = 32;
  size_t minhash_rows = 2;

  /// Execution context for every parallel path inside the lake:
  /// batch-ingest embedding, index rebuild on Open, heritage recovery,
  /// fsck. Default is serial; pass ExecutionContext::WithThreads(n) to
  /// parallelize. All parallel paths are deterministic-by-construction
  /// (statically partitioned, reduced in index order), so lake
  /// contents and query results are identical at any thread count.
  ExecutionContext exec;

  // ----------------------------------------------------- storage layer
  // (PR 3: zero-copy reads + caching. Caches sit on the read path only,
  // so lake contents are byte-identical with caches on or off.)

  /// Blob digest verification policy (see storage::VerifyMode).
  /// Default verifies each checkpoint's SHA-256 once per process
  /// instead of on every read.
  storage::VerifyMode blob_verify = storage::VerifyMode::kOnFirstRead;

  /// Serve checkpoint reads through mmap views (zero-copy); falls back
  /// to copying reads automatically where mmap is unavailable.
  bool blob_mmap = true;

  /// Byte budget of the decoded-artifact cache (keyed by content
  /// digest). 0 disables it.
  size_t artifact_cache_bytes = size_t{256} << 20;

  /// Byte budget of the embedding cache (keyed by digest + embedder
  /// config). 0 disables it.
  size_t embedding_cache_bytes = size_t{32} << 20;

  /// Shards per cache (per-shard mutexes bound reader contention).
  size_t cache_shards = 8;

  // ------------------------------------------------- robustness layer
  // (PR 4: crash-consistent mutations + graceful degradation.)

  /// Filesystem seam (common/fs.h) threaded through every durable lake
  /// component — blobs, catalog, intent journal. nullptr = the real
  /// filesystem; tests pass a FaultInjectingFs to rehearse crashes.
  Fs* fs = nullptr;

  /// Transient-I/O retry policy for blob reads/writes
  /// (Status::IsTransient errors only). RetryPolicy::None() disables.
  RetryPolicy retry;

  // ---------------------------------------------- index lifecycle
  // (PR 6: incremental disk-backed indexes + background compaction.)

  /// Serve the search indexes from the mmap-backed snapshot generation
  /// in <root>/index when a valid manifest exists (load = mmap + header
  /// validation, no per-model catalog parse), reconciling models and
  /// datasets added or removed since the snapshot incrementally.
  /// Snapshots are a pure cache: any mismatch or validation failure
  /// falls back to a full catalog rebuild, so results can never be
  /// wrong, only slower to reach.
  bool load_index_snapshots = true;

  /// Background compaction: once the ANN delta segment holds at least
  /// max(compact_min_delta, base_size * compact_growth) elements after
  /// an ingest, a background pass folds the delta into a new snapshot
  /// generation (CompactIndices). The geometric growth term keeps the
  /// amortized per-ingest index cost O(1). The default min keeps small
  /// (test-sized) lakes from ever compacting implicitly.
  bool background_compaction = true;
  size_t compact_min_delta = 4096;
  double compact_growth = 0.5;

  // ---------------------------------------------- replication layer
  // (PR 9: journal-streaming replication.)

  /// Promote the intent journal into a replayable op log: committed
  /// entries are retained as `<seq>.op` files (strictly increasing
  /// seqs, epoch-stamped) and ingest/lineage/dataset mutations record a
  /// replay payload, so a leader can stream the log to read replicas.
  /// Off by default — a standalone lake keeps the delete-on-commit
  /// journal and pays nothing.
  bool replication_log = false;
};

/// What Open() had to clean up from an earlier crash (all zeros on a
/// clean open).
struct RecoveryReport {
  /// Incomplete ingest intents rolled back (journal replay).
  size_t rolled_back_intents = 0;
  /// Model ids removed by those rollbacks.
  std::vector<std::string> rolled_back_ids;
  /// Blobs deleted because no model doc references them.
  size_t orphan_blobs_removed = 0;
  /// Stray `*.tmp.*` files removed (lake root, journal, blob buckets).
  size_t tmp_files_removed = 0;

  /// What `/statsz` exposes so operators can see recovery state without
  /// shelling into the box.
  Json ToJson() const;
};

/// Outcome of a repairing fsck pass (FsckRepair / `mlake fsck --repair`).
struct FsckReport {
  /// Model ids whose artifact failed verification this pass.
  std::vector<std::string> corrupted;
  /// Blob digests moved to quarantine (deduplicated: one digest may
  /// back several corrupted ids).
  std::vector<std::string> quarantined;
  size_t orphan_blobs_removed = 0;
  size_t tmp_files_removed = 0;

  Json ToJson() const;
};

/// One (model, card) pair of a batch ingest.
struct IngestRequest {
  const nn::Model* model = nullptr;
  metadata::ModelCard card;
};

/// One metadata-only (card, embedding) pair for IngestCards — the
/// streaming lake-generation path, which populates the catalog and
/// every index without materializing a checkpoint artifact.
struct CardIngest {
  metadata::ModelCard card;
  /// Must be EmbeddingDim() floats.
  std::vector<float> embedding;
};

/// The model lake (paper Figure 2): content-addressed model storage, a
/// JSON metadata catalog, model embeddings with an ANN index, keyword
/// search over cards, dataset-overlap search, a version graph, and the
/// application layer (MLQL queries, related-model search, documentation
/// generation, auditing, citation, benchmarking).
///
/// Thread-safety contract (the lake's first explicit one): a
/// `std::shared_mutex` guards all in-memory and on-disk state.
///   - Read APIs (`Query`, `RelatedModels`, `ListModels`, `NumModels`,
///     `LoadModel`, `CardFor`, `RecoverHeritage`, audits, ...) take the
///     lock shared: any number of threads may call them concurrently.
///   - Mutating APIs (`IngestModel`, `IngestModels`, `UpdateCard`,
///     `RecordEdge`, `RegisterDataset`, `RegisterBenchmark`) take it
///     exclusive: they serialize against each other and against all
///     readers, so a reader never observes a half-ingested batch
///     (no torn index/catalog states).
///   - Exceptions: `graph()`, `catalog()` and `probes()` hand out
///     direct references and are only safe while no ingest runs
///     concurrently; they exist for tools and tests.
class ModelLake : public search::SearchContext {
 public:
  /// Opens (or creates) a lake at options.root, rebuilding in-memory
  /// indices from the catalog (parallelized over options.exec).
  static Result<std::unique_ptr<ModelLake>> Open(LakeOptions options);

  ModelLake(const ModelLake&) = delete;
  ModelLake& operator=(const ModelLake&) = delete;

  /// Stops the background compactor (waiting for an in-flight pass).
  ~ModelLake() override;

  // ------------------------------------------------------------ ingest

  /// Stores the model artifact (content-addressed), the card, the
  /// embedding, and updates every index. The card's model_id names the
  /// model and must be unique in the lake.
  Result<std::string> IngestModel(const nn::Model& model,
                                  const metadata::ModelCard& card);

  /// Batch ingest: validates the whole batch up front (duplicate ids —
  /// in the lake or within the batch — reject the batch atomically
  /// before anything is written), then pipelines it: artifact
  /// serialization and embedding run in parallel on `options().exec`,
  /// catalog writes and index updates apply sequentially in batch
  /// order, and the ANN index is extended with one bulk `Build`.
  /// Holds the exclusive lock for the duration; readers block but
  /// never observe a partial batch. Returns the ingested ids in batch
  /// order.
  Result<std::vector<std::string>> IngestModels(
      const std::vector<IngestRequest>& batch);

  /// Metadata-only batch ingest: stores cards and embeddings (no
  /// artifact — LoadModel/LoadArtifact on such ids fail with
  /// FailedPrecondition) and updates every index incrementally.
  /// Journaled and all-or-nothing like IngestModels, but O(batch)
  /// memory and time regardless of lake size: no artifact
  /// serialization, no forward passes, no index rebuild. This is the
  /// streaming lake-generation path. Returns the ingested ids in batch
  /// order.
  Result<std::vector<std::string>> IngestCards(
      const std::vector<CardIngest>& batch);

  /// Embedding dimensionality of this lake's embedder — what
  /// CardIngest.embedding must supply.
  int64_t EmbeddingDim() const;

  /// Reconstructs the live model from its stored artifact (served from
  /// the decoded-artifact cache when resident).
  Result<std::unique_ptr<nn::Model>> LoadModel(const std::string& id) const;

  /// The decoded artifact itself — the cheap path for read-heavy lake
  /// tasks (weight comparison, CKA, heritage) that never need a live
  /// model. Shared with the artifact cache: the pointer stays valid
  /// after eviction.
  Result<std::shared_ptr<const storage::ModelArtifact>> LoadArtifact(
      const std::string& id) const;

  Status UpdateCard(const metadata::ModelCard& card);

  /// ListModels and NumModels share one catalog scan path under the
  /// shared lock, so they agree with each other (and with the indices)
  /// even while another thread's ingest batch is pending.
  std::vector<std::string> ListModels() const;
  size_t NumModels() const;

  /// Verifies every stored artifact against its digest (parallel over
  /// options.exec); returns the ids of corrupted models (empty =
  /// healthy). Models already quarantined are skipped — they are known
  /// bad and no longer served.
  Result<std::vector<std::string>> FsckArtifacts() const;

  /// Repair mode (`mlake fsck --repair`): verifies every artifact,
  /// quarantines corrupt blobs (marking their models degraded so the
  /// rest of the lake stays searchable), garbage-collects orphan blobs
  /// and removes stray temp files. Exclusive lock; safe to run on a
  /// live lake.
  Result<FsckReport> FsckRepair();

  /// Moves `id`'s blob to quarantine and marks every model sharing that
  /// content digest degraded. Degraded models stop being served by
  /// LoadModel/search/heritage but keep their catalog entries for
  /// forensics; re-ingesting repaired bytes under a new id restores the
  /// content.
  Status QuarantineModel(const std::string& id);

  /// Ids currently degraded (quarantined artifact), sorted.
  std::vector<std::string> DegradedModels() const;

  bool IsDegraded(const std::string& id) const;

  /// What the last Open() recovered (rolled-back intents, GC'd blobs).
  const RecoveryReport& recovery() const { return recovery_; }

  // ---------------------------------------------------------- datasets

  /// Registers a dataset (its shard ids) for overlap search.
  Status RegisterDataset(const std::string& name,
                         const std::vector<std::string>& shards);
  Result<std::vector<std::string>> DatasetShards(
      const std::string& name) const;
  std::vector<std::string> ListDatasets() const;

  // ----------------------------------------------------------- lineage

  /// Records a ground-truth derivation edge and persists the graph.
  Status RecordEdge(const versioning::VersionEdge& edge);

  /// Direct reference — see the thread-safety contract above.
  const versioning::ModelGraph& graph() const { return graph_; }

  /// Lineage of one model as JSON — parents, children, transitive
  /// ancestors/descendants, the recorded edges touching `id`, and the
  /// graph revision — computed in one shared-lock critical section so
  /// concurrent callers (the HTTP lineage endpoint) get a consistent
  /// snapshot without ever touching `graph()` unlocked. NotFound when
  /// `id` is not in the lake.
  Result<Json> Lineage(const std::string& id) const;

  /// Reconstructs lineage from stored weights alone (no history).
  /// Model loading and the O(n²) distance matrix run on options.exec
  /// unless config.exec carries its own pool.
  Result<versioning::HeritageResult> RecoverHeritage(
      const versioning::HeritageConfig& config = {}) const;

  // ------------------------------------------------------------ search

  /// Executes an MLQL query. The shared lock is held once for the
  /// whole plan, so the result is a consistent snapshot.
  Result<search::QueryResult> Query(std::string_view mlql) const;

  /// Query() with cross-shard context (search::SearchOverlay): hint
  /// embeddings for off-shard model ids and global BM25 statistics.
  /// With a default-constructed overlay this is exactly Query(). The
  /// cluster scatter path — each shard answers with scores
  /// bit-identical to the merged lake's, so the router's (score desc,
  /// id asc) merge of per-shard top-k is the merged lake's top-k.
  Result<search::QueryResult> QueryWithOverlay(
      std::string_view mlql, const search::SearchOverlay& overlay) const;

  /// This shard's integer contribution to `text`'s BM25 corpus
  /// statistics (phase 1 of distributed keyword search; contributions
  /// sum exactly at the router).
  index::Bm25Stats CollectBm25Stats(const std::string& text) const;

  /// KeywordScores with externally supplied (global) corpus
  /// statistics — phase 2 of distributed keyword search. With
  /// `stats == CollectBm25Stats(text)` this is bit-identical to
  /// KeywordScores(text, k).
  Result<std::vector<std::pair<std::string, double>>> KeywordScoresWithStats(
      const std::string& text, size_t k, const index::Bm25Stats& stats) const;

  /// Related-model search by raw embedding vector, skipping
  /// `exclude_id` (the query model, which may live on another shard).
  /// Score = 1 - cosine distance, like RelatedModels. The cluster
  /// ann scatter probe: the router resolves the query model's
  /// embedding on its owner, then fans the vector out to every shard.
  Result<std::vector<search::RankedModel>> RelatedModelsByVector(
      const std::vector<float>& query, size_t k,
      const std::string& exclude_id) const;

  /// The shard-local half of a distributed hybrid ranking (see
  /// search::CollectHybridParts): parses `mlql` (plan cache shared
  /// with Query), evaluates its WHERE over this shard's models and
  /// returns the survivors with their dot products against
  /// `query_vec`. One shared-lock critical section.
  Result<std::vector<search::HybridCandidate>> HybridParts(
      std::string_view mlql, const std::vector<float>& query_vec) const;

  /// Model-as-query related-model search via the ANN index.
  Result<std::vector<search::RankedModel>> RelatedModels(
      const std::string& id, size_t k) const;

  /// Batched related-model search: one shared-lock acquisition and one
  /// HnswIndex::SearchBatch probe for the whole batch. results[i] is
  /// bit-identical to RelatedModels(ids[i], k); failures are per-slot
  /// (an unknown id fails its own entry, never the batch). This is the
  /// probe the server's SearchBatcher coalesces /v1/search requests
  /// into, and the probe API a distributed router would reuse.
  std::vector<Result<std::vector<search::RankedModel>>> RelatedModelsBatch(
      const std::vector<std::string>& ids, size_t k) const;

  /// Batched keyword search: results[i] is bit-identical to
  /// KeywordScores(texts[i], k), computed under one shared lock with
  /// one InvertedIndex::SearchBatch probe.
  std::vector<Result<std::vector<std::pair<std::string, double>>>>
  KeywordScoresBatch(const std::vector<std::string>& texts, size_t k) const;

  /// Hybrid search (§5 roadmap): reciprocal-rank fusion of BM25 keyword
  /// relevance and embedding similarity to `query_model_id`. Robust to
  /// card rot on one side and embedding blind spots on the other.
  Result<std::vector<search::RankedModel>> HybridSearch(
      const std::string& text, const std::string& query_model_id,
      size_t k) const;

  // SearchContext implementation (used by the MLQL executor). Each
  // call takes the shared lock itself; `Query` instead holds the lock
  // once and executes against an internal unlocked view (shared_mutex
  // is not reentrant, so nesting would deadlock against a waiting
  // writer).
  std::vector<std::string> AllModelIds() const override;
  /// Catalog statistics for the MLQL cost-based planner: model count,
  /// index live sizes, and per-field value histograms. Rebuilt lazily —
  /// one O(n) card scan per mutation epoch, then served from cache.
  search::SearchContext::CatalogStats Stats() const override;
  Result<metadata::ModelCard> CardFor(const std::string& id) const override;
  Result<std::vector<float>> EmbeddingFor(
      const std::string& id) const override;
  Result<std::vector<std::pair<std::string, float>>> NearestModels(
      const std::vector<float>& query, size_t k) const override;
  Result<std::vector<std::pair<std::string, double>>> KeywordScores(
      const std::string& text, size_t k) const override;
  Result<std::vector<std::pair<std::string, double>>> TrainedOn(
      const std::string& dataset, double min_overlap) const override;
  bool IsDescendantOf(const std::string& id,
                      const std::string& ancestor) const override;

  // ------------------------------------------------------ replication
  // (Meaningful when options().replication_log is set; see
  // DESIGN.md §14. All take the lake lock themselves.)

  /// True when the journal is retained as a replayable op log.
  bool ReplicationLogEnabled() const { return options_.replication_log; }

  /// Shippable batch of committed log entries with seq >= `from_seq`:
  /// {"epoch", "last_seq", "exhausted", "entries": [intent json...]}.
  /// Local-only ops ("compact") are filtered out of `entries` but still
  /// advance `last_seq`; `exhausted` tells the replica it may fast-
  /// forward its watermark to `last_seq` across such gaps.
  Result<Json> ReplicationLogJson(uint64_t from_seq, size_t max) const;

  /// Raw blob bytes by content digest (the replication blob fetch).
  Result<std::string> ReadBlob(const std::string& digest) const;

  /// SHA-256 over the lake's replicated logical state: sorted
  /// model/card/embedding/dataset docs plus sorted lineage edges. Index
  /// internals and the graph revision counter are deliberately excluded
  /// (compaction timing and rolled-back ingests may differ between
  /// leader and replica without any logical divergence). Equal
  /// fingerprints ⇒ the replica has converged.
  std::string ReplicationFingerprint() const;

  /// Full logical state as a re-seed manifest: {"epoch", "upto_seq",
  /// "models": [{id, card, digest|embedding, metadata_only}...],
  /// "edges": [...], "datasets": [...]}. Artifact bytes ship separately
  /// by digest.
  Result<Json> ReplicationSeedJson() const;

  /// Applies one shipped log entry at its original seq + epoch through
  /// the normal journaled all-or-nothing ingest path, so the replica's
  /// catalog, indexes and log stay byte-compatible with the leader's.
  /// `blob_bytes` maps each digest the entry references to its artifact
  /// bytes (fetched from the leader); bytes are digest-verified before
  /// anything is applied.
  Status ApplyReplicated(const storage::Intent& entry,
                         const std::map<std::string, std::string>& blob_bytes);

  /// Divergence repair: diffs this lake against a leader seed manifest
  /// (ReplicationSeedJson), deletes divergent/extra models, re-ingests
  /// missing ones (artifact bytes via `fetch_blob`), replaces lineage
  /// and datasets wholesale, rebuilds the indexes from the repaired
  /// catalog and truncates the local log to the seed's upto_seq.
  Status ReseedFromManifest(
      const Json& manifest,
      const std::function<Result<std::string>(const std::string&)>&
          fetch_blob);

  /// Replication epoch (fencing term) and log high-water mark.
  uint64_t ReplicationEpoch() const;
  uint64_t ReplicationLastSeq() const;
  /// Durably raises the epoch (monotonic; lowering is refused).
  Status SetReplicationEpoch(uint64_t epoch);
  /// Epoch+1, durably — leader promotion.
  Result<uint64_t> BumpReplicationEpoch();
  /// Log GC / reseed floor: durably removes committed entries <= upto.
  Status TruncateReplicationLog(uint64_t upto_seq);

  /// id -> artifact content digest ("" for metadata-only models).
  Result<std::string> ArtifactDigest(const std::string& id) const;

  /// Whether a recorded lineage edge exists (shared-lock safe, unlike
  /// graph()).
  bool HasEdge(const std::string& parent, const std::string& child) const;

  // ------------------------------------------------------ benchmarking

  /// Registers an evaluation dataset under a benchmark name (in-memory;
  /// benchmark suites are regenerable from task specs).
  Status RegisterBenchmark(const std::string& name, nn::Dataset data);
  std::vector<std::string> ListBenchmarks() const;

  /// Accuracy of a stored model on a registered benchmark.
  Result<double> EvaluateModel(const std::string& id,
                               const std::string& benchmark) const;

  // ------------------------------------------------------ applications

  /// Documentation generation (paper §6): drafts a card for `id` from
  /// lake analyses — architecture/size from the artifact, metrics from
  /// registered benchmarks, lineage from the version graph, task/tags
  /// inferred by majority vote over behaviorally-nearest documented
  /// models.
  Result<metadata::ModelCard> GenerateCard(const std::string& id) const;

  /// Auditing (paper §6): evidence-backed questionnaire answers about
  /// documentation completeness, lineage consistency, artifact
  /// integrity and benchmark coverage.
  Result<Json> AuditModel(const std::string& id) const;

  /// Citation (paper §6): a citation pinned to the current version-graph
  /// revision; changes exactly when the graph changes.
  Result<Json> Cite(const std::string& id) const;

  // ------------------------------------------------------- governance
  // (PR 10: online governance services; see DESIGN.md §15. The lake
  // contributes the shared-lock primitives, src/governance/ the HTTP
  // shaping.)

  /// Citation document (governance layer): the §6 citation plus the
  /// card's attribution fields, the full heritage chain with per-hop
  /// edge types, the artifact digest, quarantine state, and a
  /// BibTeX-ish text block. One shared-lock critical section, so every
  /// field describes the same snapshot. NotFound when `id` is not in
  /// the lake; degraded models still cite (flagged).
  Result<Json> CitationDoc(const std::string& id) const;

  /// Streaming point-in-time export of the lake's logical metadata as
  /// NDJSON records (schema mlake.export, see DESIGN.md §15): header,
  /// sorted model records (catalog model/card docs verbatim), sorted
  /// lineage edges, sorted datasets, footer. The iterator holds the
  /// lake's shared lock for its lifetime — writers queue behind an
  /// in-flight export, readers proceed — and emits one record per
  /// Next() call, so resident memory stays O(ids), never O(payload).
  /// Docs ship verbatim and ordering is content-determined, so two
  /// caught-up replicas produce byte-identical exports (the same
  /// property ReplicationFingerprint checks; revision/epoch counters
  /// are excluded for the same reason).
  class ExportIterator {
   public:
    ExportIterator(ExportIterator&&) = default;
    ExportIterator& operator=(ExportIterator&&) = default;

    /// Appends the next NDJSON line (record JSON + '\n') to `*line`
    /// (cleared first). Returns false when the export is complete.
    bool Next(std::string* line);

    /// Records emitted so far (header and footer included).
    size_t records_emitted() const { return records_emitted_; }

    /// Counts fixed at open time (what the header declares).
    size_t num_models() const { return model_ids_.size(); }

    /// The change key of the snapshot this export describes, captured
    /// under the same lock acquisition as the record lists — what the
    /// /v1/export ETag is derived from, so tag and body always agree.
    uint64_t mutation_epoch() const { return mutation_epoch_; }
    uint64_t index_generation() const { return index_generation_; }

   private:
    friend class ModelLake;
    explicit ExportIterator(const ModelLake* lake);

    enum class Stage { kHeader, kModels, kEdges, kDatasets, kFooter, kDone };

    const ModelLake* lake_;
    std::shared_lock<std::shared_mutex> lock_;
    std::vector<std::string> model_ids_;
    std::vector<std::string> dataset_names_;
    std::vector<versioning::VersionEdge> edges_;  // export-sorted
    uint64_t mutation_epoch_ = 0;
    uint64_t index_generation_ = 0;
    Stage stage_ = Stage::kHeader;
    size_t cursor_ = 0;
    size_t records_emitted_ = 0;
  };

  /// Opens a streaming export at the current snapshot. The returned
  /// iterator pins the snapshot (shared lock) until destroyed.
  std::unique_ptr<ExportIterator> OpenExport() const;

  /// Monotone counter bumped by every content mutation (ingest, card
  /// update, dataset registration, lineage edge, reseed). Paired with
  /// IndexGeneration() it is the change-detection key the governance
  /// export ETag uses.
  uint64_t MutationEpoch() const;

  // ------------------------------------------------------------- misc

  /// Counters of the lake's two storage caches.
  struct LakeCacheStats {
    storage::CacheStats artifacts;
    storage::CacheStats embeddings;
  };
  LakeCacheStats CacheStats() const;

  /// CacheStats as JSON ({"artifact_cache": {...}, "embedding_cache":
  /// {...}}); what `mlake stats` and the benches print.
  Json CacheStatsJson() const;

  /// Rebuilds the indexes from the catalog, writes them as a new
  /// mmap-backed snapshot generation under <root>/index (journaled: a
  /// crash at any point recovers to either the old or the new
  /// generation), and swaps the lake onto the snapshot-backed result.
  /// Because the fold is a deterministic rebuild in catalog order, the
  /// compacted index answers queries identically to a from-scratch
  /// rebuild. Safe on a live lake; returns Unavailable (and changes
  /// nothing) when a mutation lands mid-pass — the caller or the next
  /// background trigger retries.
  Status CompactIndices();

  /// Per-index base/delta/tombstone counts, the loaded snapshot
  /// generation and the last compaction duration — the index surface of
  /// `/statsz` and `mlake stats`.
  Json IndexStatsJson() const;

  /// The loaded index snapshot generation (0 = built from the catalog)
  /// — what a cluster backend reports on its heartbeat.
  uint64_t IndexGeneration() const;

  /// Counters of the parse-once MLQL plan cache behind Query().
  struct PlanCacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
  };
  PlanCacheCounters PlanCacheStats() const;

  /// Planner surface of `/statsz`: plan-cache counters and the plan the
  /// executor chose for the most recent MLQL query.
  Json PlannerStatsJson() const;

  const Tensor& probes() const { return probes_; }
  const LakeOptions& options() const { return options_; }
  storage::Catalog* catalog() { return catalog_.get(); }
  const storage::Catalog* catalog() const { return catalog_.get(); }

 private:
  /// SearchContext view without locking — what `Query` (and other
  /// composite reads that already hold the shared lock) executes
  /// against.
  class UnlockedView : public search::SearchContext {
   public:
    explicit UnlockedView(const ModelLake* lake) : lake_(lake) {}
    std::vector<std::string> AllModelIds() const override;
    search::SearchContext::CatalogStats Stats() const override;
    Result<metadata::ModelCard> CardFor(const std::string& id) const override;
    Result<std::vector<float>> EmbeddingFor(
        const std::string& id) const override;
    Result<std::vector<std::pair<std::string, float>>> NearestModels(
        const std::vector<float>& query, size_t k) const override;
    Result<std::vector<std::pair<std::string, double>>> KeywordScores(
        const std::string& text, size_t k) const override;
    Result<std::vector<std::pair<std::string, double>>> TrainedOn(
        const std::string& dataset, double min_overlap) const override;
    bool IsDescendantOf(const std::string& id,
                        const std::string& ancestor) const override;

   private:
    const ModelLake* lake_;
  };

  /// UnlockedView plus a SearchOverlay: EmbeddingFor falls back to the
  /// overlay's hint vectors when the local lookup misses, and
  /// KeywordScores on the overlay's exact text is answered with the
  /// overlay's global BM25 statistics. Everything else delegates
  /// unchanged.
  class OverlayView : public search::SearchContext {
   public:
    OverlayView(const ModelLake* lake, const search::SearchOverlay* overlay)
        : lake_(lake), overlay_(overlay) {}
    std::vector<std::string> AllModelIds() const override;
    search::SearchContext::CatalogStats Stats() const override;
    Result<metadata::ModelCard> CardFor(const std::string& id) const override;
    Result<std::vector<float>> EmbeddingFor(
        const std::string& id) const override;
    Result<std::vector<std::pair<std::string, float>>> NearestModels(
        const std::vector<float>& query, size_t k) const override;
    Result<std::vector<std::pair<std::string, double>>> KeywordScores(
        const std::string& text, size_t k) const override;
    Result<std::vector<std::pair<std::string, double>>> TrainedOn(
        const std::string& dataset, double min_overlap) const override;
    bool IsDescendantOf(const std::string& id,
                        const std::string& ancestor) const override;

   private:
    const ModelLake* lake_;
    const search::SearchOverlay* overlay_;
  };

  explicit ModelLake(LakeOptions options) : options_(std::move(options)) {}

  /// The lake's derived index state as one unit: built fresh from the
  /// catalog (rebuild, compaction) or loaded from a snapshot
  /// generation, then installed under the exclusive lock in one swap so
  /// readers never observe a half-replaced index set.
  struct IndexSet {
    std::unique_ptr<index::HnswIndex> ann;
    std::vector<std::string> ann_ids;
    index::InvertedIndex bm25;
    std::unique_ptr<index::MinHashLsh> lsh;
    std::map<std::string, std::string> digest_by_id;
    /// Dataset names the LSH holds (for the ids snapshot + reconcile).
    std::vector<std::string> dataset_names;
  };

  Status Initialize();
  Status RebuildIndices();
  /// Builds a fresh IndexSet from the catalog (parallel over
  /// options.exec, deterministic in catalog order).
  Status BuildIndexSetFromCatalog(IndexSet* out) const;
  void InstallIndexSet(IndexSet set);
  /// Open()-time index bring-up: snapshot load + reconcile when enabled
  /// and present, full catalog rebuild otherwise.
  Status LoadOrRebuildIndices();
  /// Loads the snapshot generation named by <root>/index/MANIFEST.json,
  /// reconciles it against the catalog (models/datasets ingested or
  /// rolled back since the snapshot), and installs it. NotFound when no
  /// manifest exists.
  Status LoadIndexSnapshots();
  /// Loads the four snapshot files of one generation into `out`
  /// (mmap-backed base segments, empty deltas).
  Status LoadIndexSetFromFiles(const std::string& ann_path,
                               const std::string& bm25_path,
                               const std::string& lsh_path,
                               const std::string& ids_path,
                               IndexSet* out) const;
  /// Writes the id table / digest table / dataset-name table companion
  /// snapshot (SnapshotKind::kLakeIds).
  Status WriteIdsSnapshot(const IndexSet& set, const std::string& path,
                          uint64_t generation) const;
  /// Deletes index-dir files not referenced by the current manifest —
  /// crashed-compaction debris and superseded generations. Idempotent;
  /// also the rollback action of a "compact" intent.
  Status GcIndexFilesUnlocked();
  /// Removes MANIFEST.json (durably) so the next open rebuilds from the
  /// catalog — required before any mutation the snapshot/catalog diff
  /// cannot represent (card text updates).
  Status InvalidateIndexSnapshotsUnlocked();
  /// Wakes (lazily starting) the background compactor when the delta
  /// has outgrown the compaction threshold. Caller holds mu_ exclusive.
  void MaybeScheduleCompactionLocked();
  void CompactorLoop();
  std::string IndexDir() const;
  std::string IndexManifestPath() const;
  /// Open()-time crash recovery: rolls back pending intents, removes
  /// stray temp files, garbage-collects orphan blobs. Fills recovery_.
  Status Recover();
  /// Undoes everything a (possibly partial) mutation described by
  /// `intent` may have applied on disk: catalog docs, graph nodes, and
  /// blobs no surviving model references. Idempotent — a crash during
  /// rollback just replays it on the next open.
  Status RollbackIntent(const storage::Intent& intent);
  /// Deletes blobs no model doc references; returns how many.
  Result<size_t> GcOrphanBlobsUnlocked();
  /// Quarantine under the exclusive lock (FsckRepair's per-id step).
  Status QuarantineModelLocked(const std::string& id,
                               const std::string& reason);
  Status PersistGraph();
  index::MinHashSignature DatasetSignature(
      const std::vector<std::string>& shards) const;

  // Unlocked implementations; callers hold the appropriate lock.
  Status ValidateIngest(const IngestRequest& request,
                        const std::vector<std::string>& batch_ids) const;
  Status IndexModel(const std::string& id, const metadata::ModelCard& card);
  Result<std::vector<std::string>> IngestModelsLocked(
      const std::vector<IngestRequest>& batch);
  Result<std::vector<std::string>> IngestCardsLocked(
      const std::vector<CardIngest>& batch);
  /// Journals `intent` — at forced_seq_ (replica apply, preserving the
  /// leader's seq + epoch stamp) when set, else with a fresh local seq.
  Result<uint64_t> BeginIntentLocked(const storage::Intent& intent);
  Status RecordEdgeLocked(const versioning::VersionEdge& edge);
  Status RegisterDatasetLocked(const std::string& name,
                               const std::vector<std::string>& shards);
  std::string ReplicationFingerprintUnlocked() const;
  /// The mutation phase of IngestCards (catalog docs + incremental
  /// index updates; no blobs, no graph).
  Status ApplyCards(const std::vector<CardIngest>& batch);
  /// Incremental index rollback of a failed ingest batch: removes the
  /// batch's BM25 docs and digest entries and truncates the ANN delta
  /// tail — O(batch), not O(lake). Caller holds mu_ exclusive.
  void RollbackBatchIndexesLocked(const std::vector<std::string>& ids,
                                  size_t pre_ann_ids, size_t pre_ann_delta);
  /// The mutation phase of an ingest (blobs, catalog docs, indices,
  /// graph). Runs under a journaled intent; any failure triggers
  /// rollback in IngestModelsLocked.
  Status ApplyIngest(const std::vector<IngestRequest>& batch,
                     const std::vector<std::string>& digests,
                     const std::vector<std::string>& artifact_bytes,
                     const std::vector<std::vector<float>>& embeddings);
  std::vector<std::string> ListModelsUnlocked() const;
  /// ListModelsUnlocked minus degraded ids — what search/query paths
  /// iterate so a quarantined model never surfaces in results.
  std::vector<std::string> SearchableModelIdsUnlocked() const;
  Result<std::unique_ptr<nn::Model>> LoadModelUnlocked(
      const std::string& id) const;
  /// id -> artifact digest via the in-memory map (catalog fallback).
  Result<std::string> DigestForUnlocked(const std::string& id) const;
  /// Digest -> decoded artifact through the artifact cache; the cache
  /// miss path is GetView (zero-copy) + ParseArtifact.
  Result<std::shared_ptr<const storage::ModelArtifact>> LoadArtifactUnlocked(
      const std::string& digest) const;
  Result<metadata::ModelCard> CardForUnlocked(const std::string& id) const;
  Result<std::vector<float>> EmbeddingForUnlocked(
      const std::string& id) const;
  Result<std::vector<std::pair<std::string, float>>> NearestModelsUnlocked(
      const std::vector<float>& query, size_t k) const;
  /// Maps raw ANN hits through ann_ids_, drops degraded ids, caps at k
  /// — the shared tail of NearestModelsUnlocked and the batch probe.
  std::vector<std::pair<std::string, float>> MapNeighborsUnlocked(
      const std::vector<index::Neighbor>& hits, size_t k) const;
  /// Drops degraded ids from BM25 hits and caps at k — the shared tail
  /// of KeywordScoresUnlocked and the batch probe.
  std::vector<std::pair<std::string, double>> MapTextHitsUnlocked(
      const std::vector<index::TextHit>& hits, size_t k) const;
  Result<std::vector<std::pair<std::string, double>>> KeywordScoresUnlocked(
      const std::string& text, size_t k) const;
  /// Lazily (re)computes the planner's catalog statistics for the
  /// current mutation epoch. Caller holds mu_ (shared suffices:
  /// stats_mu_ serializes the rebuild).
  search::SearchContext::CatalogStats StatsUnlocked() const;
  /// Parse-once plan-cache lookup for Query(). Caller holds mu_
  /// (shared suffices: plan_mu_ guards the map).
  Result<std::shared_ptr<const search::Query>> CachedPlanUnlocked(
      std::string_view mlql) const;
  Result<std::vector<std::pair<std::string, double>>> TrainedOnUnlocked(
      const std::string& dataset, double min_overlap) const;
  bool IsDescendantOfUnlocked(const std::string& id,
                              const std::string& ancestor) const;
  Result<std::vector<std::string>> DatasetShardsUnlocked(
      const std::string& name) const;
  Result<std::vector<search::RankedModel>> RelatedModelsUnlocked(
      const std::string& id, size_t k) const;
  /// Turns a model's mapped neighbors into RankedModels, skipping the
  /// model itself — the shared tail of RelatedModelsUnlocked and the
  /// batch probe (score = 1 - cosine distance).
  static std::vector<search::RankedModel> RelatedFromNeighbors(
      const std::string& id,
      const std::vector<std::pair<std::string, float>>& neighbors, size_t k);
  Result<double> EvaluateModelUnlocked(const std::string& id,
                                       const std::string& benchmark) const;

  LakeOptions options_;
  Fs* fs_ = nullptr;  ///< resolved from options_.fs; never null after Open
  std::unique_ptr<storage::BlobStore> blobs_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<storage::IntentJournal> journal_;
  /// Ids whose artifact is quarantined. Maintained under the writer
  /// lock; loaded from catalog kind "degraded" on Open.
  std::set<std::string> degraded_;
  RecoveryReport recovery_;
  std::unique_ptr<embed::ModelEmbedder> embedder_;
  Tensor probes_;

  /// Read-path caches. Internally synchronized (per-shard mutexes), so
  /// shared-lock readers may populate them concurrently; mutable for
  /// exactly that reason. Keys are content digests, which makes stale
  /// entries impossible: the same digest always decodes to the same
  /// artifact, and deleting/re-ingesting a model id changes the digest
  /// the catalog points at, never the digest's meaning.
  mutable std::unique_ptr<
      storage::ShardedLruCache<std::string, storage::ModelArtifact>>
      artifact_cache_;
  mutable std::unique_ptr<
      storage::ShardedLruCache<std::string, std::vector<float>>>
      embedding_cache_;
  /// Hash of (embedder name, dim, probe config): the second half of the
  /// embedding-cache key, so lakes sharing a process never mix
  /// embeddings from different embedder configurations.
  std::string embedder_key_;
  /// model id -> artifact digest, maintained under the writer lock at
  /// ingest and rebuilt on Open; saves a catalog JSON parse on every
  /// load.
  std::map<std::string, std::string> digest_by_id_;

  /// Readers/writer lock over all lake state (see class comment).
  mutable std::shared_mutex mu_;

  std::unique_ptr<index::HnswIndex> ann_;
  std::vector<std::string> ann_ids_;  // ANN internal id -> model id
  index::InvertedIndex bm25_;
  std::unique_ptr<index::MinHashLsh> dataset_lsh_;

  versioning::ModelGraph graph_;
  std::map<std::string, nn::Dataset> benchmarks_;

  /// When non-zero, BeginIntentLocked journals at this seq with this
  /// epoch instead of assigning fresh ones — the replica apply path
  /// replaying a leader entry at its original log position. Only ever
  /// set under the exclusive lock for the duration of one apply.
  uint64_t forced_seq_ = 0;
  uint64_t forced_epoch_ = 0;

  /// Generation of the snapshot the current base segments came from
  /// (0 = built from the catalog, no snapshot loaded).
  uint64_t index_generation_ = 0;
  /// Bumped under the exclusive lock by every index-affecting mutation;
  /// a compaction pass aborts its swap when the epoch moved under it.
  uint64_t mutation_epoch_ = 0;
  double last_compact_ms_ = 0.0;

  /// Background compactor, started lazily on the first trigger so
  /// small lakes never spawn a thread.
  std::thread compactor_;
  std::mutex compact_mu_;  // guards the request/stop flags below
  std::condition_variable compact_cv_;
  bool compact_requested_ = false;
  bool compact_stop_ = false;
  /// Serializes compaction passes (explicit calls vs the background
  /// thread).
  std::mutex compact_run_mu_;

  // ---- cost-based planner state (PR 7) ----

  /// Catalog statistics served to the MLQL planner, rebuilt lazily
  /// when the mutation epoch moves: one O(n) card scan per epoch, not
  /// per query. stats_mu_ serializes the rebuild; callers hold mu_
  /// shared, so the epoch they validate against cannot move under them.
  mutable std::mutex stats_mu_;
  mutable search::SearchContext::CatalogStats stats_cache_;
  mutable uint64_t stats_epoch_ = 0;
  mutable bool stats_valid_ = false;

  /// Parse-once MLQL plan cache: query text -> parsed AST, with the
  /// normalized AST rendering aliased to the same entry so formatting
  /// variants of one query share a plan. Entries are pure parses and
  /// can never be semantically stale; the cache is still cleared when
  /// the mutation epoch or snapshot generation moves (conservative
  /// hygiene, and it bounds growth alongside the entry cap).
  mutable std::mutex plan_mu_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const search::Query>>
      plan_cache_;
  mutable uint64_t plan_epoch_ = 0;
  mutable uint64_t plan_generation_ = 0;
  mutable uint64_t plan_hits_ = 0;
  mutable uint64_t plan_misses_ = 0;
  /// The plan the executor chose for the most recent Query() (under
  /// plan_mu_; surfaced by PlannerStatsJson for /statsz).
  mutable std::string last_plan_;
};

}  // namespace mlake::core

#endif  // MLAKE_CORE_MODEL_LAKE_H_
