#include "core/model_lake.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/file_util.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "index/snapshot.h"
#include "nn/loss.h"
#include "search/parser.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace mlake::core {

namespace {

/// Entry cap of the parse-once MLQL plan cache (a parsed AST is tiny;
/// the cap only bounds pathological many-distinct-query workloads).
constexpr size_t kPlanCacheCap = 512;

Json FloatsToJson(const std::vector<float>& v) {
  Json arr = Json::MakeArray();
  for (float x : v) arr.Append(Json(static_cast<double>(x)));
  return arr;
}

Result<std::vector<float>> FloatsFromJson(const Json& j) {
  if (!j.is_array()) return Status::Corruption("expected float array");
  std::vector<float> out;
  out.reserve(j.size());
  for (const Json& x : j.AsArray()) {
    if (!x.is_number()) return Status::Corruption("expected number");
    out.push_back(static_cast<float>(x.AsDouble()));
  }
  return out;
}

/// Snapshot file name of one index at one generation.
std::string SnapName(const char* prefix, uint64_t generation) {
  return StrFormat("%s.%llu.snap", prefix,
                   static_cast<unsigned long long>(generation));
}

const char kIndexManifestName[] = "MANIFEST.json";

/// Offset arrays in the ids snapshot must be non-decreasing from 0 to
/// `limit`.
bool OffsetsWellFormed(const uint64_t* off, size_t count, uint64_t limit) {
  if (count == 0 || off[0] != 0 || off[count - 1] != limit) return false;
  for (size_t i = 1; i < count; ++i) {
    if (off[i] < off[i - 1]) return false;
  }
  return true;
}

/// Flattens `items` into a CSR string table (offsets + bytes).
void BuildStringTable(const std::vector<std::string>& items,
                      std::vector<uint64_t>* offsets, std::string* bytes) {
  offsets->assign(items.size() + 1, 0);
  bytes->clear();
  for (size_t i = 0; i < items.size(); ++i) {
    *bytes += items[i];
    (*offsets)[i + 1] = bytes->size();
  }
}

}  // namespace

Result<std::unique_ptr<ModelLake>> ModelLake::Open(LakeOptions options) {
  if (options.root.empty()) {
    return Status::InvalidArgument("LakeOptions.root must be set");
  }
  std::unique_ptr<ModelLake> lake(new ModelLake(std::move(options)));
  MLAKE_RETURN_NOT_OK(lake->Initialize());
  return lake;
}

Status ModelLake::Initialize() {
  fs_ = options_.fs != nullptr ? options_.fs : RealFs();
  MLAKE_RETURN_NOT_OK(fs_->CreateDirs(options_.root));
  storage::BlobStoreOptions blob_options;
  blob_options.verify = options_.blob_verify;
  blob_options.use_mmap = options_.blob_mmap;
  blob_options.fs = fs_;
  blob_options.retry = options_.retry;
  MLAKE_ASSIGN_OR_RETURN(storage::BlobStore blobs,
                         storage::BlobStore::Open(
                             JoinPath(options_.root, "blobs"), blob_options));
  blobs_ = std::make_unique<storage::BlobStore>(std::move(blobs));
  MLAKE_ASSIGN_OR_RETURN(
      catalog_,
      storage::Catalog::Open(JoinPath(options_.root, "catalog.log"), fs_));
  MLAKE_ASSIGN_OR_RETURN(
      storage::IntentJournal journal,
      storage::IntentJournal::Open(JoinPath(options_.root, "journal"), fs_,
                                   options_.replication_log));
  journal_ = std::make_unique<storage::IntentJournal>(std::move(journal));

  artifact_cache_ = std::make_unique<
      storage::ShardedLruCache<std::string, storage::ModelArtifact>>(
      options_.artifact_cache_bytes, options_.cache_shards);
  embedding_cache_ = std::make_unique<
      storage::ShardedLruCache<std::string, std::vector<float>>>(
      options_.embedding_cache_bytes, options_.cache_shards);

  probes_ = nn::MakeProbeSet(options_.input_dim, options_.probe_count,
                             options_.probe_seed);
  MLAKE_ASSIGN_OR_RETURN(
      embedder_,
      embed::MakeEmbedder(options_.embedder, probes_, options_.num_classes));
  embedder_key_ = Sha256::HexDigest(StrFormat(
      "%s|%lld|%zu|%llu|%lld|%lld", options_.embedder.c_str(),
      static_cast<long long>(embedder_->Dim()), options_.probe_count,
      static_cast<unsigned long long>(options_.probe_seed),
      static_cast<long long>(options_.input_dim),
      static_cast<long long>(options_.num_classes)));

  ann_ = std::make_unique<index::HnswIndex>(embedder_->Dim(), options_.hnsw);
  dataset_lsh_ = std::make_unique<index::MinHashLsh>(options_.minhash_bands,
                                                     options_.minhash_rows);

  if (catalog_->Contains("graph", "main")) {
    MLAKE_ASSIGN_OR_RETURN(Json graph_doc, catalog_->GetDoc("graph", "main"));
    MLAKE_ASSIGN_OR_RETURN(graph_, versioning::ModelGraph::FromJson(
                                       graph_doc));
  }

  // Crash recovery must run before the indices are built: it edits the
  // catalog (intent rollback), and the indices must reflect the
  // recovered state, not the crashed one.
  MLAKE_RETURN_NOT_OK(Recover());

  for (const std::string& id : catalog_->ListIds("degraded")) {
    degraded_.insert(id);
  }
  return LoadOrRebuildIndices();
}

ModelLake::~ModelLake() {
  {
    std::lock_guard<std::mutex> g(compact_mu_);
    compact_stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

Status ModelLake::Recover() {
  recovery_ = RecoveryReport();

  // 1. Roll back mutations that began but never committed. Oldest
  // first; each rollback is idempotent, so a crash mid-recovery just
  // replays on the next open.
  MLAKE_ASSIGN_OR_RETURN(std::vector<storage::Intent> pending,
                         journal_->Pending());
  for (const storage::Intent& intent : pending) {
    // Apply-then-log ops (record_edge, register_dataset) journal only
    // *after* their mutation is durable, so a pending intent means the
    // mutation already applied — completing the Commit just finishes
    // the interrupted log append. Everything else is a write-ahead
    // intent: roll the mutation back and Abort so the entry never
    // enters the replayable log.
    if (intent.op == "record_edge" || intent.op == "register_dataset") {
      MLAKE_RETURN_NOT_OK(journal_->Commit(intent.seq));
      continue;
    }
    MLAKE_LOG_WARNING << "lake " << options_.root
                      << ": rolling back incomplete " << intent.op
                      << " intent #" << intent.seq << " (" << intent.ids.size()
                      << " model(s))";
    MLAKE_RETURN_NOT_OK(RollbackIntent(intent));
    MLAKE_RETURN_NOT_OK(journal_->Abort(intent.seq));
    ++recovery_.rolled_back_intents;
    recovery_.rolled_back_ids.insert(recovery_.rolled_back_ids.end(),
                                     intent.ids.begin(), intent.ids.end());
  }

  // 2. Sweep stray temp files (atomic writes that crashed between
  // temp-write and rename): lake root (catalog.log tmp), journal dir,
  // blob buckets.
  MLAKE_RETURN_NOT_OK(RemoveStrayTmpFiles(fs_, options_.root,
                                          &recovery_.tmp_files_removed));
  MLAKE_RETURN_NOT_OK(RemoveStrayTmpFiles(fs_, IndexDir(),
                                          &recovery_.tmp_files_removed));
  MLAKE_RETURN_NOT_OK(journal_->RemoveStrayTmp(&recovery_.tmp_files_removed));
  MLAKE_RETURN_NOT_OK(blobs_->RemoveStrayTmp(&recovery_.tmp_files_removed));

  // 3. Orphan blobs: content written by a crashed mutation whose intent
  // already rolled back (or pre-journal debris). Unreferenced by any
  // model doc -> unreachable -> safe to delete.
  MLAKE_ASSIGN_OR_RETURN(recovery_.orphan_blobs_removed,
                         GcOrphanBlobsUnlocked());
  return Status::OK();
}

Status ModelLake::RollbackIntent(const storage::Intent& intent) {
  if (intent.op == "record_edge" || intent.op == "register_dataset") {
    // Apply-then-log ops: the intent is written only after the mutation
    // is durable, so there is nothing to undo (see Recover).
    return Status::OK();
  }
  if (intent.op == "compact") {
    // A compaction intent names no models; the mutation is the set of
    // snapshot files plus the atomic manifest swap. Deleting every
    // index file the *current* manifest does not name lands on exactly
    // one generation — the old one if the crash hit before the rename,
    // the new one after — and is idempotent.
    return GcIndexFilesUnlocked();
  }
  for (const std::string& id : intent.ids) {
    for (const char* kind : {"model", "card", "embedding", "degraded"}) {
      if (catalog_->Contains(kind, id)) {
        MLAKE_RETURN_NOT_OK(catalog_->DeleteDoc(kind, id));
      }
    }
    graph_.RemoveModel(id);
    degraded_.erase(id);
  }
  // Blobs are content-addressed and deduplicated: only delete an intent
  // digest when no surviving model still references it.
  std::set<std::string> referenced;
  for (const std::string& id : catalog_->ListIds("model")) {
    auto digest = DigestForUnlocked(id);
    if (digest.ok()) referenced.insert(digest.MoveValueUnsafe());
  }
  for (const std::string& digest : intent.digests) {
    if (referenced.count(digest) > 0) continue;
    if (blobs_->Contains(digest)) {
      MLAKE_RETURN_NOT_OK(blobs_->Delete(digest));
    }
  }
  MLAKE_RETURN_NOT_OK(PersistGraph());
  // Make the rollback durable before the intent is committed away.
  return catalog_->Sync();
}

Result<size_t> ModelLake::GcOrphanBlobsUnlocked() {
  std::set<std::string> referenced;
  for (const std::string& id : catalog_->ListIds("model")) {
    auto digest = DigestForUnlocked(id);
    if (digest.ok()) referenced.insert(digest.MoveValueUnsafe());
  }
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> digests, blobs_->List());
  size_t removed = 0;
  for (const std::string& digest : digests) {
    if (referenced.count(digest) > 0) continue;
    MLAKE_RETURN_NOT_OK(blobs_->Delete(digest));
    ++removed;
  }
  return removed;
}

std::string ModelLake::IndexDir() const {
  return JoinPath(options_.root, "index");
}

std::string ModelLake::IndexManifestPath() const {
  return JoinPath(IndexDir(), kIndexManifestName);
}

Status ModelLake::BuildIndexSetFromCatalog(IndexSet* out) const {
  const ExecutionContext& exec = options_.exec;
  out->ann =
      std::make_unique<index::HnswIndex>(embedder_->Dim(), options_.hnsw);
  out->lsh = std::make_unique<index::MinHashLsh>(options_.minhash_bands,
                                                 options_.minhash_rows);

  // Model docs -> digest map (the load path's id -> digest hop without
  // a catalog JSON parse per load).
  {
    std::vector<std::string> ids = catalog_->ListIds("model");
    std::vector<std::string> digests(ids.size());
    MLAKE_RETURN_NOT_OK(
        ParallelFor(exec, 0, ids.size(), [&](size_t i) -> Status {
          MLAKE_ASSIGN_OR_RETURN(Json model_doc,
                                 catalog_->GetDoc("model", ids[i]));
          digests[i] = model_doc.GetString("artifact_digest");
          return Status::OK();
        }));
    for (size_t i = 0; i < ids.size(); ++i) {
      out->digest_by_id[ids[i]] = digests[i];
    }
  }

  // Cards -> BM25. Catalog reads are const and safe concurrently; the
  // JSON parse is the cost, so parse in parallel and feed the (single
  // threaded) inverted index in catalog order.
  {
    std::vector<std::string> ids = catalog_->ListIds("card");
    std::vector<std::string> texts(ids.size());
    MLAKE_RETURN_NOT_OK(
        ParallelFor(exec, 0, ids.size(), [&](size_t i) -> Status {
          MLAKE_ASSIGN_OR_RETURN(Json card_doc,
                                 catalog_->GetDoc("card", ids[i]));
          MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card,
                                 metadata::ModelCard::FromJson(card_doc));
          texts[i] = card.SearchText();
          return Status::OK();
        }));
    for (size_t i = 0; i < ids.size(); ++i) out->bm25.Add(ids[i], texts[i]);
  }

  // Embeddings -> one bulk ANN build (parallel neighbor search inside).
  {
    std::vector<std::string> ids = catalog_->ListIds("embedding");
    std::vector<std::vector<float>> vecs(ids.size());
    MLAKE_RETURN_NOT_OK(
        ParallelFor(exec, 0, ids.size(), [&](size_t i) -> Status {
          MLAKE_ASSIGN_OR_RETURN(Json doc,
                                 catalog_->GetDoc("embedding", ids[i]));
          MLAKE_ASSIGN_OR_RETURN(vecs[i], FloatsFromJson(doc));
          return Status::OK();
        }));
    std::vector<int64_t> internal_ids(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      internal_ids[i] = static_cast<int64_t>(out->ann_ids.size());
      out->ann_ids.push_back(ids[i]);
    }
    MLAKE_RETURN_NOT_OK(out->ann->Build(internal_ids, vecs, exec));
  }

  // Datasets -> MinHash/LSH (signature hashing parallel, inserts
  // sequential).
  {
    std::vector<std::string> names = catalog_->ListIds("dataset");
    std::vector<index::MinHashSignature> sigs(names.size());
    MLAKE_RETURN_NOT_OK(
        ParallelFor(exec, 0, names.size(), [&](size_t i) -> Status {
          MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> shards,
                                 DatasetShardsUnlocked(names[i]));
          sigs[i] = DatasetSignature(shards);
          return Status::OK();
        }));
    for (size_t i = 0; i < names.size(); ++i) {
      MLAKE_RETURN_NOT_OK(out->lsh->Add(names[i], sigs[i]));
      out->dataset_names.push_back(names[i]);
    }
  }
  return Status::OK();
}

void ModelLake::InstallIndexSet(IndexSet set) {
  ann_ = std::move(set.ann);
  ann_ids_ = std::move(set.ann_ids);
  bm25_ = std::move(set.bm25);
  dataset_lsh_ = std::move(set.lsh);
  digest_by_id_ = std::move(set.digest_by_id);
}

Status ModelLake::RebuildIndices() {
  IndexSet fresh;
  MLAKE_RETURN_NOT_OK(BuildIndexSetFromCatalog(&fresh));
  InstallIndexSet(std::move(fresh));
  index_generation_ = 0;
  return Status::OK();
}

Status ModelLake::LoadOrRebuildIndices() {
  if (options_.load_index_snapshots) {
    Status loaded = LoadIndexSnapshots();
    if (loaded.ok()) return Status::OK();
    if (!loaded.IsNotFound()) {
      // Snapshots are a cache of the catalog; anything wrong with them
      // (corruption, truncation, config mismatch) degrades to a full
      // rebuild rather than failing the open.
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": index snapshots unusable ("
                        << loaded.ToString() << "); rebuilding from catalog";
    }
  }
  return RebuildIndices();
}

Status ModelLake::WriteIdsSnapshot(const IndexSet& set,
                                   const std::string& path,
                                   uint64_t generation) const {
  // Sidecar for the three index snapshots: the internal-id -> model-id
  // table (HNSW rows), the parallel digest table, and the dataset names
  // behind the LSH entries. All CSR string tables.
  std::vector<std::string> digests(set.ann_ids.size());
  for (size_t i = 0; i < set.ann_ids.size(); ++i) {
    auto it = set.digest_by_id.find(set.ann_ids[i]);
    if (it != set.digest_by_id.end()) digests[i] = it->second;
  }
  std::vector<uint64_t> id_off, dig_off, ds_off;
  std::string id_bytes, dig_bytes, ds_bytes;
  BuildStringTable(set.ann_ids, &id_off, &id_bytes);
  BuildStringTable(digests, &dig_off, &dig_bytes);
  BuildStringTable(set.dataset_names, &ds_off, &ds_bytes);

  std::vector<uint64_t> meta = {set.ann_ids.size(), set.dataset_names.size()};
  index::SnapshotWriter writer(index::SnapshotKind::kLakeIds, generation);
  writer.AddArray("meta", meta);
  writer.AddArray("id_off", id_off);
  writer.AddSection("id_bytes", id_bytes.data(), id_bytes.size());
  writer.AddArray("dig_off", dig_off);
  writer.AddSection("dig_bytes", dig_bytes.data(), dig_bytes.size());
  writer.AddArray("ds_off", ds_off);
  writer.AddSection("ds_bytes", ds_bytes.data(), ds_bytes.size());
  return writer.WriteTo(fs_, path);
}

Status ModelLake::LoadIndexSetFromFiles(const std::string& ann_path,
                                        const std::string& bm25_path,
                                        const std::string& lsh_path,
                                        const std::string& ids_path,
                                        IndexSet* out) const {
  out->ann =
      std::make_unique<index::HnswIndex>(embedder_->Dim(), options_.hnsw);
  out->lsh = std::make_unique<index::MinHashLsh>(options_.minhash_bands,
                                                 options_.minhash_rows);
  MLAKE_RETURN_NOT_OK(out->ann->LoadSnapshot(fs_, ann_path));
  MLAKE_RETURN_NOT_OK(out->bm25.LoadSnapshot(fs_, bm25_path));
  MLAKE_RETURN_NOT_OK(out->lsh->LoadSnapshot(fs_, lsh_path));

  MLAKE_ASSIGN_OR_RETURN(index::SnapshotReader snap,
                         index::SnapshotReader::Open(
                             fs_, ids_path, index::SnapshotKind::kLakeIds));
  MLAKE_ASSIGN_OR_RETURN(auto meta, snap.Array<uint64_t>("meta"));
  if (meta.second != 2) {
    return Status::Corruption("ids snapshot meta malformed: " + ids_path);
  }
  const size_t n_models = static_cast<size_t>(meta.first[0]);
  const size_t n_datasets = static_cast<size_t>(meta.first[1]);
  MLAKE_ASSIGN_OR_RETURN(auto id_off, snap.Array<uint64_t>("id_off"));
  MLAKE_ASSIGN_OR_RETURN(auto id_bytes, snap.Section("id_bytes"));
  MLAKE_ASSIGN_OR_RETURN(auto dig_off, snap.Array<uint64_t>("dig_off"));
  MLAKE_ASSIGN_OR_RETURN(auto dig_bytes, snap.Section("dig_bytes"));
  MLAKE_ASSIGN_OR_RETURN(auto ds_off, snap.Array<uint64_t>("ds_off"));
  MLAKE_ASSIGN_OR_RETURN(auto ds_bytes, snap.Section("ds_bytes"));
  if (id_off.second != n_models + 1 || dig_off.second != n_models + 1 ||
      ds_off.second != n_datasets + 1 ||
      !OffsetsWellFormed(id_off.first, id_off.second, id_bytes.size()) ||
      !OffsetsWellFormed(dig_off.first, dig_off.second, dig_bytes.size()) ||
      !OffsetsWellFormed(ds_off.first, ds_off.second, ds_bytes.size())) {
    return Status::Corruption("ids snapshot tables malformed: " + ids_path);
  }
  out->ann_ids.reserve(n_models);
  for (size_t i = 0; i < n_models; ++i) {
    out->ann_ids.emplace_back(
        id_bytes.substr(static_cast<size_t>(id_off.first[i]),
                        static_cast<size_t>(id_off.first[i + 1] -
                                            id_off.first[i])));
    out->digest_by_id[out->ann_ids.back()] = std::string(
        dig_bytes.substr(static_cast<size_t>(dig_off.first[i]),
                         static_cast<size_t>(dig_off.first[i + 1] -
                                             dig_off.first[i])));
  }
  out->dataset_names.reserve(n_datasets);
  for (size_t i = 0; i < n_datasets; ++i) {
    out->dataset_names.emplace_back(
        ds_bytes.substr(static_cast<size_t>(ds_off.first[i]),
                        static_cast<size_t>(ds_off.first[i + 1] -
                                            ds_off.first[i])));
  }
  // The four files must come from one compaction pass; a torn mix of
  // generations would desynchronize internal ids from model ids.
  if (out->ann->BaseSize() != n_models || out->bm25.BaseSize() != n_models) {
    return Status::Corruption("index snapshot generations mismatched");
  }
  return Status::OK();
}

Status ModelLake::LoadIndexSnapshots() {
  if (!fs_->FileExists(IndexManifestPath())) {
    return Status::NotFound("no index manifest");
  }
  MLAKE_ASSIGN_OR_RETURN(std::string manifest_bytes,
                         fs_->ReadFile(IndexManifestPath()));
  MLAKE_ASSIGN_OR_RETURN(Json manifest, Json::Parse(manifest_bytes));
  const uint64_t gen =
      static_cast<uint64_t>(manifest.GetInt64("generation", 0));
  const std::string ann_name = manifest.GetString("ann");
  const std::string bm25_name = manifest.GetString("bm25");
  const std::string lsh_name = manifest.GetString("lsh");
  const std::string ids_name = manifest.GetString("ids");
  if (gen == 0 || ann_name.empty() || bm25_name.empty() || lsh_name.empty() ||
      ids_name.empty()) {
    return Status::Corruption("index manifest malformed");
  }
  IndexSet set;
  MLAKE_RETURN_NOT_OK(LoadIndexSetFromFiles(
      JoinPath(IndexDir(), ann_name), JoinPath(IndexDir(), bm25_name),
      JoinPath(IndexDir(), lsh_name), JoinPath(IndexDir(), ids_name), &set));

  // The snapshot is a point-in-time cache; the catalog is truth. Models
  // and datasets are immutable per id once written (card edits
  // invalidate the manifest before touching the catalog), so a
  // membership diff fully reconciles the two.
  {
    std::vector<std::string> cat_ids = catalog_->ListIds("model");
    std::set<std::string> cat(cat_ids.begin(), cat_ids.end());
    std::unordered_map<std::string, size_t> snap_pos;
    snap_pos.reserve(set.ann_ids.size());
    for (size_t i = 0; i < set.ann_ids.size(); ++i) {
      snap_pos[set.ann_ids[i]] = i;
    }
    for (const auto& [id, pos] : snap_pos) {
      if (cat.count(id) > 0) continue;
      Status removed = set.ann->Remove(static_cast<int64_t>(pos));
      if (!removed.ok() && !removed.IsNotFound()) return removed;
      set.bm25.Remove(id);
      set.digest_by_id.erase(id);
    }
    std::vector<std::string> added;
    for (const std::string& id : cat_ids) {
      if (snap_pos.count(id) == 0) added.push_back(id);
    }
    if (!added.empty()) {
      std::vector<std::string> digests(added.size());
      std::vector<std::string> texts(added.size());
      std::vector<std::vector<float>> vecs(added.size());
      MLAKE_RETURN_NOT_OK(ParallelFor(
          options_.exec, 0, added.size(), [&](size_t i) -> Status {
            MLAKE_ASSIGN_OR_RETURN(Json model_doc,
                                   catalog_->GetDoc("model", added[i]));
            digests[i] = model_doc.GetString("artifact_digest");
            MLAKE_ASSIGN_OR_RETURN(Json card_doc,
                                   catalog_->GetDoc("card", added[i]));
            MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card,
                                   metadata::ModelCard::FromJson(card_doc));
            texts[i] = card.SearchText();
            MLAKE_ASSIGN_OR_RETURN(Json emb_doc,
                                   catalog_->GetDoc("embedding", added[i]));
            MLAKE_ASSIGN_OR_RETURN(vecs[i], FloatsFromJson(emb_doc));
            return Status::OK();
          }));
      std::vector<int64_t> internal_ids(added.size());
      for (size_t i = 0; i < added.size(); ++i) {
        set.bm25.Add(added[i], texts[i]);
        set.digest_by_id[added[i]] = digests[i];
        internal_ids[i] = static_cast<int64_t>(set.ann_ids.size());
        set.ann_ids.push_back(added[i]);
      }
      MLAKE_RETURN_NOT_OK(set.ann->Build(internal_ids, vecs, options_.exec));
    }
  }
  {
    std::vector<std::string> cat_names = catalog_->ListIds("dataset");
    std::set<std::string> cat(cat_names.begin(), cat_names.end());
    std::set<std::string> snap(set.dataset_names.begin(),
                               set.dataset_names.end());
    for (const std::string& name : set.dataset_names) {
      if (cat.count(name) == 0) set.lsh->Remove(name);
    }
    for (const std::string& name : cat_names) {
      if (snap.count(name) > 0) continue;
      MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> shards,
                             DatasetShardsUnlocked(name));
      MLAKE_RETURN_NOT_OK(set.lsh->Add(name, DatasetSignature(shards)));
    }
  }
  InstallIndexSet(std::move(set));
  index_generation_ = gen;
  return Status::OK();
}

Status ModelLake::GcIndexFilesUnlocked() {
  std::set<std::string> keep = {kIndexManifestName};
  if (fs_->FileExists(IndexManifestPath())) {
    auto bytes = fs_->ReadFile(IndexManifestPath());
    if (bytes.ok()) {
      auto manifest = Json::Parse(bytes.ValueUnsafe());
      if (manifest.ok()) {
        for (const char* key : {"ann", "bm25", "lsh", "ids"}) {
          std::string name = manifest.ValueUnsafe().GetString(key);
          if (!name.empty()) keep.insert(name);
        }
      }
    }
  }
  auto files = fs_->ListDir(IndexDir());
  if (!files.ok()) return Status::OK();  // no index dir yet
  for (const std::string& name : files.ValueUnsafe()) {
    if (keep.count(name) > 0) continue;
    MLAKE_RETURN_NOT_OK(fs_->RemoveFile(JoinPath(IndexDir(), name)));
  }
  return Status::OK();
}

Status ModelLake::InvalidateIndexSnapshotsUnlocked() {
  if (!fs_->FileExists(IndexManifestPath())) return Status::OK();
  MLAKE_RETURN_NOT_OK(fs_->RemoveFile(IndexManifestPath()));
  return fs_->SyncDir(IndexDir());
}

Status ModelLake::CompactIndices() {
  // One pass at a time; the pass itself holds the lake lock only for
  // short critical sections, so reads and ingests proceed while the
  // bulk build and the file writes run.
  std::lock_guard<std::mutex> run(compact_run_mu_);
  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1 (shared lock): rebuild a fresh single-segment set from the
  // catalog. Deterministic given the catalog, so the result is
  // bit-identical to what a cold Open() would build.
  uint64_t epoch;
  IndexSet fresh;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    epoch = mutation_epoch_;
    MLAKE_RETURN_NOT_OK(BuildIndexSetFromCatalog(&fresh));
  }
  MLAKE_RETURN_NOT_OK(fs_->CreateDirs(IndexDir()));

  // Phase 2: journal the intent, then write the four snapshot files
  // (each via WriteFileAtomic) without the lake lock. A crash anywhere
  // in here leaves the intent pending; recovery deletes whatever files
  // the manifest does not name.
  storage::Intent intent;
  intent.op = "compact";
  uint64_t gen;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    gen = index_generation_ + 1;
    MLAKE_ASSIGN_OR_RETURN(intent.seq, journal_->Begin(intent));
  }
  const std::string ann_name = SnapName("ann", gen);
  const std::string bm25_name = SnapName("bm25", gen);
  const std::string lsh_name = SnapName("lsh", gen);
  const std::string ids_name = SnapName("ids", gen);
  Status wrote =
      fresh.ann->SaveSnapshot(fs_, JoinPath(IndexDir(), ann_name), gen);
  if (wrote.ok()) {
    wrote = fresh.bm25.SaveSnapshot(fs_, JoinPath(IndexDir(), bm25_name), gen);
  }
  if (wrote.ok()) {
    wrote = fresh.lsh->SaveSnapshot(fs_, JoinPath(IndexDir(), lsh_name), gen);
  }
  if (wrote.ok()) {
    wrote = WriteIdsSnapshot(fresh, JoinPath(IndexDir(), ids_name), gen);
  }

  // Phase 3 (exclusive lock): publish. If the lake mutated since phase
  // 1 the fresh set is stale — abort the swap, GC the orphaned files,
  // and let the next scheduled pass pick up the newer state.
  Status outcome;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    outcome = wrote;
    if (outcome.ok() && epoch != mutation_epoch_) {
      outcome = Status::Unavailable(
          "lake mutated during compaction; pass aborted");
    }
    if (outcome.ok()) {
      Json manifest = Json::MakeObject();
      manifest.Set("generation", static_cast<int64_t>(gen));
      manifest.Set("ann", ann_name);
      manifest.Set("bm25", bm25_name);
      manifest.Set("lsh", lsh_name);
      manifest.Set("ids", ids_name);
      outcome = WriteFileAtomic(fs_, IndexManifestPath(), manifest.Dump(2));
    }
    if (outcome.ok()) {
      // Serve the base segment from the files just written (mmap) so a
      // long-lived lake sheds the heap copy; if the reload fails for
      // any reason the in-memory fresh set has identical contents.
      IndexSet loaded;
      Status reloaded = LoadIndexSetFromFiles(
          JoinPath(IndexDir(), ann_name), JoinPath(IndexDir(), bm25_name),
          JoinPath(IndexDir(), lsh_name), JoinPath(IndexDir(), ids_name),
          &loaded);
      InstallIndexSet(reloaded.ok() ? std::move(loaded) : std::move(fresh));
      index_generation_ = gen;
    }
    // GC covers both exits: superseded old-generation files after a
    // swap, orphaned new-generation files after an abort or a failed
    // write. Runs before the intent commits so a crash re-runs it.
    Status gc = GcIndexFilesUnlocked();
    if (!gc.ok()) {
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": index gc after compaction failed ("
                        << gc.ToString() << ")";
    }
    Status committed = journal_->Commit(intent.seq);
    if (outcome.ok()) outcome = committed;
  }
  last_compact_ms_ =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return outcome;
}

void ModelLake::MaybeScheduleCompactionLocked() {
  if (!options_.background_compaction) return;
  const size_t delta = ann_->DeltaSize();
  const size_t growth = static_cast<size_t>(
      static_cast<double>(ann_->BaseSize()) * options_.compact_growth);
  if (delta < std::max(options_.compact_min_delta, growth)) return;
  std::lock_guard<std::mutex> g(compact_mu_);
  if (compact_stop_) return;
  // Lazy thread start: small lakes (tests, tools) never cross the
  // threshold and never pay for — or fork across — a live thread.
  if (!compactor_.joinable()) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
  compact_requested_ = true;
  compact_cv_.notify_one();
}

void ModelLake::CompactorLoop() {
  std::unique_lock<std::mutex> lock(compact_mu_);
  while (true) {
    compact_cv_.wait(lock,
                     [this] { return compact_stop_ || compact_requested_; });
    if (compact_stop_) return;
    compact_requested_ = false;
    lock.unlock();
    Status compacted = CompactIndices();
    if (!compacted.ok() && !compacted.IsUnavailable()) {
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": background compaction failed ("
                        << compacted.ToString() << ")";
    }
    lock.lock();
  }
}

Json ModelLake::IndexStatsJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto seg = [](size_t base, size_t delta, size_t tombstones, size_t live,
                uint64_t generation) {
    Json j = Json::MakeObject();
    j.Set("base", static_cast<int64_t>(base));
    j.Set("delta", static_cast<int64_t>(delta));
    j.Set("tombstones", static_cast<int64_t>(tombstones));
    j.Set("live", static_cast<int64_t>(live));
    j.Set("snapshot_generation", static_cast<int64_t>(generation));
    return j;
  };
  Json out = Json::MakeObject();
  out.Set("generation", static_cast<int64_t>(index_generation_));
  out.Set("last_compaction_ms", last_compact_ms_);
  out.Set("ann", seg(ann_->BaseSize(), ann_->DeltaSize(), ann_->Tombstones(),
                     ann_->Size(), ann_->snapshot_generation()));
  out.Set("bm25",
          seg(bm25_.BaseSize(), bm25_.DeltaSize(), bm25_.Tombstones(),
              bm25_.NumDocs(), bm25_.snapshot_generation()));
  out.Set("lsh",
          seg(dataset_lsh_->BaseSize(), dataset_lsh_->DeltaSize(),
              dataset_lsh_->Tombstones(), dataset_lsh_->Size(),
              dataset_lsh_->snapshot_generation()));
  return out;
}

index::MinHashSignature ModelLake::DatasetSignature(
    const std::vector<std::string>& shards) const {
  return index::ComputeMinHash(shards,
                               options_.minhash_bands * options_.minhash_rows);
}

Status ModelLake::PersistGraph() {
  return catalog_->PutDoc("graph", "main", graph_.ToJson());
}

Status ModelLake::IndexModel(const std::string& id,
                             const metadata::ModelCard& card) {
  bm25_.Add(id, card.SearchText());
  return Status::OK();
}

Status ModelLake::ValidateIngest(
    const IngestRequest& request,
    const std::vector<std::string>& batch_ids) const {
  const metadata::ModelCard& card = request.card;
  if (request.model == nullptr) {
    return Status::InvalidArgument("IngestRequest.model is required");
  }
  if (card.model_id.empty()) {
    return Status::InvalidArgument("card.model_id is required");
  }
  if (catalog_->Contains("model", card.model_id)) {
    return Status::AlreadyExists("model already in lake: " + card.model_id);
  }
  if (std::find(batch_ids.begin(), batch_ids.end(), card.model_id) !=
      batch_ids.end()) {
    return Status::AlreadyExists("duplicate model id in ingest batch: " +
                                 card.model_id);
  }
  std::vector<std::string> problems = metadata::ValidateCard(card);
  if (!problems.empty()) {
    // Lakes accept imperfect documentation (that is the paper's reality)
    // but reject structurally broken cards.
    for (const std::string& p : problems) {
      if (p.find("model_id") != std::string::npos) {
        return Status::InvalidArgument("invalid card: " + p);
      }
    }
  }
  if (request.model->spec().input_dim != options_.input_dim ||
      request.model->spec().num_classes != options_.num_classes) {
    return Status::InvalidArgument(
        "model io dims do not match this lake's shared input/output space");
  }
  return Status::OK();
}

Result<std::string> ModelLake::IngestModel(const nn::Model& model,
                                           const metadata::ModelCard& card) {
  std::vector<IngestRequest> batch(1);
  batch[0].model = &model;
  batch[0].card = card;
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> ids, IngestModels(batch));
  return ids.front();
}

Result<std::vector<std::string>> ModelLake::IngestModels(
    const std::vector<IngestRequest>& batch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return IngestModelsLocked(batch);
}

Result<std::vector<std::string>> ModelLake::IngestModelsLocked(
    const std::vector<IngestRequest>& batch) {
  // Phase 0: validate everything before writing anything — a rejected
  // batch leaves the lake untouched.
  std::vector<std::string> ids;
  ids.reserve(batch.size());
  for (const IngestRequest& request : batch) {
    MLAKE_RETURN_NOT_OK(ValidateIngest(request, ids));
    ids.push_back(request.card.model_id);
  }

  // Phase 1 (parallel, pure): serialize artifacts, hash them for the
  // intent, and compute embeddings. Each task owns slot i; results land
  // in batch order. Nothing durable has changed yet.
  std::vector<std::string> artifact_bytes(batch.size());
  std::vector<std::string> digests(batch.size());
  MLAKE_RETURN_NOT_OK(
      ParallelFor(options_.exec, 0, batch.size(), [&](size_t i) {
        Json meta = Json::MakeObject();
        meta.Set("model_id", batch[i].card.model_id);
        storage::ModelArtifact artifact =
            storage::ArtifactFromModel(*batch[i].model, meta);
        artifact_bytes[i] = storage::SerializeArtifact(artifact);
        digests[i] = Sha256::HexDigest(artifact_bytes[i]);
      }));

  std::vector<nn::Model*> models(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Embed runs a forward pass (mutates per-model scratch); the batch
    // API takes const models, matching IngestModel's historic contract.
    models[i] = const_cast<nn::Model*>(batch[i].model);
  }
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::vector<float>> embeddings,
                         embedder_->EmbedAll(models, options_.exec));

  // Phase 2: durably journal the intent before touching any durable
  // state. From here the batch is all-or-nothing: a crash leaves the
  // intent behind and the next Open() rolls the batch back.
  storage::Intent intent;
  intent.op = "ingest";
  intent.ids = ids;
  intent.digests = digests;
  if (options_.replication_log) {
    // Replay payload: the cards. Artifact bytes ship by digest and the
    // embedding is recomputed deterministically from them, so cards are
    // all a replica needs beyond the blobs.
    Json cards = Json::MakeArray();
    for (const IngestRequest& request : batch) {
      cards.Append(request.card.ToJson());
    }
    Json payload = Json::MakeObject();
    payload.Set("cards", std::move(cards));
    intent.payload = std::move(payload);
  }
  MLAKE_ASSIGN_OR_RETURN(intent.seq, BeginIntentLocked(intent));

  // Phase 3: apply the mutation (blobs, catalog, indices, graph).
  const size_t pre_ann_ids = ann_ids_.size();
  const size_t pre_ann_delta = ann_->DeltaSize();
  Status applied = ApplyIngest(batch, digests, artifact_bytes, embeddings);
  if (applied.ok()) {
    // Batch durability point, then commit the intent away. A crash
    // between Sync and Commit replays a rollback of a fully-applied
    // batch on the next open — which is correct (the caller never saw
    // the ingest succeed) and consistent.
    applied = catalog_->Sync();
    if (applied.ok()) applied = journal_->Commit(intent.seq);
  }
  if (!applied.ok()) {
    // Best-effort immediate rollback. The indexes support incremental
    // removal, so undoing the batch is O(batch), not O(lake). If the
    // disk rollback itself fails (filesystem still erroring), the
    // intent stays pending and the next Open() finishes the job.
    // Abort, not Commit: a rolled-back batch must never enter the
    // replayable log a replica would ship.
    Status rolled_back = RollbackIntent(intent);
    if (rolled_back.ok()) {
      rolled_back = journal_->Abort(intent.seq);
    }
    if (!rolled_back.ok()) {
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": ingest rollback incomplete ("
                        << rolled_back.ToString()
                        << "); will be replayed on next open";
    }
    RollbackBatchIndexesLocked(ids, pre_ann_ids, pre_ann_delta);
    ++mutation_epoch_;
    return applied;
  }
  ++mutation_epoch_;
  MaybeScheduleCompactionLocked();
  return ids;
}

void ModelLake::RollbackBatchIndexesLocked(const std::vector<std::string>& ids,
                                           size_t pre_ann_ids,
                                           size_t pre_ann_delta) {
  for (const std::string& id : ids) {
    bm25_.Remove(id);
    digest_by_id_.erase(id);
  }
  // The batch's vectors were appended to the ANN delta tail; peel them
  // off. A partially applied batch may have appended fewer than
  // ids.size() rows, so measure rather than assume.
  const size_t appended = ann_->DeltaSize() - pre_ann_delta;
  if (appended > 0) {
    Status truncated = ann_->TruncateTail(appended);
    if (!truncated.ok()) {
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": ANN tail truncate after aborted ingest failed ("
                        << truncated.ToString() << "); rebuilding";
      Status rebuilt = RebuildIndices();
      if (!rebuilt.ok()) {
        MLAKE_LOG_WARNING << "lake " << options_.root
                          << ": index rebuild after aborted ingest failed ("
                          << rebuilt.ToString() << "); reopen the lake";
      }
      return;  // rebuild already resized ann_ids_
    }
  }
  ann_ids_.resize(pre_ann_ids);
}

Result<std::vector<std::string>> ModelLake::IngestCards(
    const std::vector<CardIngest>& batch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return IngestCardsLocked(batch);
}

Result<std::vector<std::string>> ModelLake::IngestCardsLocked(
    const std::vector<CardIngest>& batch) {
  std::vector<std::string> ids;
  ids.reserve(batch.size());
  for (const CardIngest& item : batch) {
    const std::string& id = item.card.model_id;
    if (id.empty()) {
      return Status::InvalidArgument("card.model_id is required");
    }
    if (catalog_->Contains("model", id)) {
      return Status::AlreadyExists("model already in lake: " + id);
    }
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
      return Status::AlreadyExists("duplicate model id in ingest batch: " +
                                   id);
    }
    if (static_cast<int64_t>(item.embedding.size()) != embedder_->Dim()) {
      return Status::InvalidArgument(StrFormat(
          "embedding for %s has dim %zu, lake expects %lld", id.c_str(),
          item.embedding.size(), static_cast<long long>(embedder_->Dim())));
    }
    ids.push_back(id);
  }
  if (ids.empty()) return ids;

  storage::Intent intent;
  intent.op = "ingest";
  intent.ids = ids;
  if (options_.replication_log) {
    // Metadata-only ingests have no artifact to recompute from, so the
    // payload carries the embeddings inline alongside the cards.
    Json cards = Json::MakeArray();
    Json embeddings_json = Json::MakeArray();
    for (const CardIngest& item : batch) {
      cards.Append(item.card.ToJson());
      embeddings_json.Append(FloatsToJson(item.embedding));
    }
    Json payload = Json::MakeObject();
    payload.Set("cards", std::move(cards));
    payload.Set("embeddings", std::move(embeddings_json));
    intent.payload = std::move(payload);
  }
  MLAKE_ASSIGN_OR_RETURN(intent.seq, BeginIntentLocked(intent));

  const size_t pre_ann_ids = ann_ids_.size();
  const size_t pre_ann_delta = ann_->DeltaSize();
  Status applied = ApplyCards(batch);
  if (applied.ok()) {
    applied = catalog_->Sync();
    if (applied.ok()) applied = journal_->Commit(intent.seq);
  }
  if (!applied.ok()) {
    Status rolled_back = RollbackIntent(intent);
    if (rolled_back.ok()) {
      rolled_back = journal_->Abort(intent.seq);
    }
    if (!rolled_back.ok()) {
      MLAKE_LOG_WARNING << "lake " << options_.root
                        << ": card-ingest rollback incomplete ("
                        << rolled_back.ToString()
                        << "); will be replayed on next open";
    }
    RollbackBatchIndexesLocked(ids, pre_ann_ids, pre_ann_delta);
    ++mutation_epoch_;
    return applied;
  }
  ++mutation_epoch_;
  MaybeScheduleCompactionLocked();
  return ids;
}

Status ModelLake::ApplyCards(const std::vector<CardIngest>& batch) {
  std::vector<int64_t> internal_ids(batch.size());
  std::vector<std::vector<float>> embeddings(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const metadata::ModelCard& card = batch[i].card;
    Json model_doc = Json::MakeObject();
    model_doc.Set("artifact_digest", std::string());
    model_doc.Set("metadata_only", true);
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("model", card.model_id, model_doc));
    MLAKE_RETURN_NOT_OK(
        catalog_->PutDoc("card", card.model_id, card.ToJson()));
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("embedding", card.model_id,
                                         FloatsToJson(batch[i].embedding)));
    bm25_.Add(card.model_id, card.SearchText());
    digest_by_id_[card.model_id] = std::string();
    internal_ids[i] = static_cast<int64_t>(ann_ids_.size());
    ann_ids_.push_back(card.model_id);
    embeddings[i] = batch[i].embedding;
  }
  // No graph node and no PersistGraph: metadata-only models carry no
  // recorded lineage, and the graph JSON stays proportional to the
  // artifact-backed population.
  return ann_->Build(internal_ids, embeddings, options_.exec);
}

int64_t ModelLake::EmbeddingDim() const { return embedder_->Dim(); }

Status ModelLake::ApplyIngest(
    const std::vector<IngestRequest>& batch,
    const std::vector<std::string>& digests,
    const std::vector<std::string>& artifact_bytes,
    const std::vector<std::vector<float>>& embeddings) {
  // Blobs first (content-addressed, idempotent), then catalog docs,
  // BM25, graph nodes — all in batch order.
  for (size_t i = 0; i < batch.size(); ++i) {
    MLAKE_ASSIGN_OR_RETURN(std::string digest,
                           blobs_->Put(artifact_bytes[i]));
    if (digest != digests[i]) {
      return Status::Internal("artifact digest mismatch for " +
                              batch[i].card.model_id);
    }
  }
  std::vector<int64_t> internal_ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const metadata::ModelCard& card = batch[i].card;
    Json model_doc = Json::MakeObject();
    model_doc.Set("artifact_digest", digests[i]);
    model_doc.Set("arch", batch[i].model->spec().ToJson());
    model_doc.Set("num_params", batch[i].model->spec().input_dim == 0
                                    ? Json(0)
                                    : Json(batch[i].model->NumParams()));
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("model", card.model_id, model_doc));
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("card", card.model_id,
                                         card.ToJson()));
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("embedding", card.model_id,
                                         FloatsToJson(embeddings[i])));
    MLAKE_RETURN_NOT_OK(IndexModel(card.model_id, card));
    digest_by_id_[card.model_id] = digests[i];
    internal_ids[i] = static_cast<int64_t>(ann_ids_.size());
    ann_ids_.push_back(card.model_id);
    graph_.AddModel(card.model_id);
  }

  // One bulk ANN extension (parallel inside, deterministic at any
  // thread count), then persist the graph once for the batch.
  MLAKE_RETURN_NOT_OK(ann_->Build(internal_ids, embeddings, options_.exec));
  return PersistGraph();
}

Result<std::unique_ptr<nn::Model>> ModelLake::LoadModel(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return LoadModelUnlocked(id);
}

Result<std::shared_ptr<const storage::ModelArtifact>> ModelLake::LoadArtifact(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (degraded_.count(id) > 0) {
    return Status::FailedPrecondition(
        "model is degraded (artifact quarantined): " + id);
  }
  MLAKE_ASSIGN_OR_RETURN(std::string digest, DigestForUnlocked(id));
  return LoadArtifactUnlocked(digest);
}

Result<std::string> ModelLake::DigestForUnlocked(const std::string& id) const {
  std::string digest;
  if (auto it = digest_by_id_.find(id); it != digest_by_id_.end()) {
    digest = it->second;
  } else {
    // Fallback for ids the map has not seen (defensive; the map tracks
    // every ingest and Open rebuild).
    MLAKE_ASSIGN_OR_RETURN(Json model_doc, catalog_->GetDoc("model", id));
    digest = model_doc.GetString("artifact_digest");
  }
  if (digest.empty()) {
    // Metadata-only models (IngestCards) are cataloged and searchable
    // but have no checkpoint behind them.
    return Status::FailedPrecondition(
        "model has no stored artifact (metadata-only): " + id);
  }
  return digest;
}

Result<std::shared_ptr<const storage::ModelArtifact>>
ModelLake::LoadArtifactUnlocked(const std::string& digest) const {
  if (digest.empty()) return Status::Corruption("model doc missing digest");
  if (auto cached = artifact_cache_->Get(digest)) return cached;
  // Miss path: borrow the blob bytes (mmap view, digest verified per
  // policy) and decode in place — no whole-file copy.
  MLAKE_ASSIGN_OR_RETURN(storage::BlobView view, blobs_->GetView(digest));
  MLAKE_ASSIGN_OR_RETURN(storage::ModelArtifact artifact,
                         storage::ParseArtifact(view.bytes()));
  auto shared =
      std::make_shared<const storage::ModelArtifact>(std::move(artifact));
  artifact_cache_->Put(digest, shared, storage::ArtifactMemoryBytes(*shared));
  return shared;
}

Result<std::unique_ptr<nn::Model>> ModelLake::LoadModelUnlocked(
    const std::string& id) const {
  if (degraded_.count(id) > 0) {
    return Status::FailedPrecondition(
        "model is degraded (artifact quarantined): " + id);
  }
  MLAKE_ASSIGN_OR_RETURN(std::string digest, DigestForUnlocked(id));
  MLAKE_ASSIGN_OR_RETURN(std::shared_ptr<const storage::ModelArtifact> artifact,
                         LoadArtifactUnlocked(digest));
  return storage::ModelFromArtifact(*artifact);
}

Status ModelLake::UpdateCard(const metadata::ModelCard& card) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!catalog_->Contains("model", card.model_id)) {
    return Status::NotFound("model not in lake: " + card.model_id);
  }
  // A card edit changes index content without changing membership, so
  // it is invisible to the snapshot-vs-catalog diff on the next open.
  // Durably drop the manifest first: crash after this point and the
  // next open rebuilds from the catalog (which has the new card).
  MLAKE_RETURN_NOT_OK(InvalidateIndexSnapshotsUnlocked());
  MLAKE_RETURN_NOT_OK(catalog_->PutDoc("card", card.model_id, card.ToJson()));
  bm25_.Add(card.model_id, card.SearchText());  // replaces
  ++mutation_epoch_;
  return Status::OK();
}

std::vector<std::string> ModelLake::ListModelsUnlocked() const {
  return catalog_->ListIds("model");
}

std::vector<std::string> ModelLake::SearchableModelIdsUnlocked() const {
  std::vector<std::string> ids = ListModelsUnlocked();
  if (degraded_.empty()) return ids;
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [this](const std::string& id) {
                             return degraded_.count(id) > 0;
                           }),
            ids.end());
  return ids;
}

std::vector<std::string> ModelLake::ListModels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ListModelsUnlocked();
}

size_t ModelLake::NumModels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ListModelsUnlocked().size();
}

Result<std::vector<std::string>> ModelLake::FsckArtifacts() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Quarantined models are known-bad and no longer served; fsck checks
  // the serving set.
  std::vector<std::string> ids = SearchableModelIdsUnlocked();
  std::vector<uint8_t> bad(ids.size(), 0);
  MLAKE_RETURN_NOT_OK(
      ParallelFor(options_.exec, 0, ids.size(), [&](size_t i) -> Status {
        auto digest = DigestForUnlocked(ids[i]);
        if (!digest.ok()) {
          // Metadata-only models have no artifact to verify.
          if (!digest.status().IsFailedPrecondition()) bad[i] = 1;
          return Status::OK();
        }
        // Forced digest re-hash over an mmap view plus a decode-free
        // CRC walk: fsck never materializes a checkpoint on the heap.
        auto view = blobs_->GetView(digest.ValueUnsafe(),
                                    storage::VerifyMode::kAlways);
        if (!view.ok() ||
            !storage::VerifyArtifact(view.ValueUnsafe().bytes()).ok()) {
          bad[i] = 1;
        }
        return Status::OK();
      }));
  std::vector<std::string> corrupted;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (bad[i]) corrupted.push_back(ids[i]);
  }
  return corrupted;
}

Status ModelLake::QuarantineModelLocked(const std::string& id,
                                        const std::string& reason) {
  MLAKE_ASSIGN_OR_RETURN(std::string digest, DigestForUnlocked(id));
  Status moved = blobs_->Quarantine(digest);
  // NotFound = the blob is already gone (deleted or quarantined by an
  // earlier pass); the models still need their degraded mark.
  if (!moved.ok() && !moved.IsNotFound()) return moved;
  // Content addressing deduplicates identical checkpoints, so one bad
  // blob can back several ids — degrade all of them.
  for (const auto& [other_id, other_digest] : digest_by_id_) {
    if (other_digest != digest) continue;
    Json doc = Json::MakeObject();
    doc.Set("digest", digest);
    doc.Set("reason", reason);
    MLAKE_RETURN_NOT_OK(catalog_->PutDoc("degraded", other_id, doc));
    degraded_.insert(other_id);
  }
  return catalog_->Sync();
}

Status ModelLake::QuarantineModel(const std::string& id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!catalog_->Contains("model", id)) {
    return Status::NotFound("model not in lake: " + id);
  }
  return QuarantineModelLocked(id, "manual quarantine");
}

std::vector<std::string> ModelLake::DegradedModels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return {degraded_.begin(), degraded_.end()};
}

bool ModelLake::IsDegraded(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return degraded_.count(id) > 0;
}

Json RecoveryReport::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("rolled_back_intents", rolled_back_intents);
  Json ids = Json::MakeArray();
  for (const std::string& id : rolled_back_ids) ids.Append(Json(id));
  j.Set("rolled_back_ids", std::move(ids));
  j.Set("orphan_blobs_removed", orphan_blobs_removed);
  j.Set("tmp_files_removed", tmp_files_removed);
  return j;
}

Json FsckReport::ToJson() const {
  Json j = Json::MakeObject();
  Json bad = Json::MakeArray();
  for (const std::string& id : corrupted) bad.Append(Json(id));
  j.Set("corrupted_models", std::move(bad));
  Json q = Json::MakeArray();
  for (const std::string& d : quarantined) q.Append(Json(d));
  j.Set("quarantined_blobs", std::move(q));
  j.Set("orphan_blobs_removed", orphan_blobs_removed);
  j.Set("tmp_files_removed", tmp_files_removed);
  return j;
}

Result<FsckReport> ModelLake::FsckRepair() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  FsckReport report;

  // 1. Verify the serving set (parallel digest re-hash + CRC walk, the
  // same check as FsckArtifacts).
  std::vector<std::string> ids = SearchableModelIdsUnlocked();
  std::vector<uint8_t> bad(ids.size(), 0);
  MLAKE_RETURN_NOT_OK(
      ParallelFor(options_.exec, 0, ids.size(), [&](size_t i) -> Status {
        auto digest = DigestForUnlocked(ids[i]);
        if (!digest.ok()) {
          // Metadata-only models have no artifact to verify.
          if (!digest.status().IsFailedPrecondition()) bad[i] = 1;
          return Status::OK();
        }
        auto view = blobs_->GetView(digest.ValueUnsafe(),
                                    storage::VerifyMode::kAlways);
        if (!view.ok() ||
            !storage::VerifyArtifact(view.ValueUnsafe().bytes()).ok()) {
          bad[i] = 1;
        }
        return Status::OK();
      }));

  // 2. Quarantine the corrupt ones (sequential: catalog writes).
  std::set<std::string> quarantined_digests;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!bad[i]) continue;
    report.corrupted.push_back(ids[i]);
    auto digest = DigestForUnlocked(ids[i]);
    MLAKE_RETURN_NOT_OK(
        QuarantineModelLocked(ids[i], "fsck: artifact verification failed"));
    if (digest.ok()) quarantined_digests.insert(digest.MoveValueUnsafe());
  }
  report.quarantined.assign(quarantined_digests.begin(),
                            quarantined_digests.end());

  // 3. Housekeeping: stray temp files + orphan blobs.
  MLAKE_RETURN_NOT_OK(
      RemoveStrayTmpFiles(fs_, options_.root, &report.tmp_files_removed));
  MLAKE_RETURN_NOT_OK(journal_->RemoveStrayTmp(&report.tmp_files_removed));
  MLAKE_RETURN_NOT_OK(blobs_->RemoveStrayTmp(&report.tmp_files_removed));
  MLAKE_ASSIGN_OR_RETURN(report.orphan_blobs_removed, GcOrphanBlobsUnlocked());
  return report;
}

// -------------------------------------------------------------- datasets

Status ModelLake::RegisterDataset(const std::string& name,
                                  const std::vector<std::string>& shards) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return RegisterDatasetLocked(name, shards);
}

Status ModelLake::RegisterDatasetLocked(
    const std::string& name, const std::vector<std::string>& shards) {
  if (name.empty() || shards.empty()) {
    return Status::InvalidArgument("dataset needs a name and shards");
  }
  if (catalog_->Contains("dataset", name)) {
    return Status::AlreadyExists("dataset already registered: " + name);
  }
  Json doc = Json::MakeObject();
  Json arr = Json::MakeArray();
  for (const std::string& s : shards) arr.Append(Json(s));
  doc.Set("shards", std::move(arr));
  MLAKE_RETURN_NOT_OK(catalog_->PutDoc("dataset", name, doc));
  ++mutation_epoch_;
  MLAKE_RETURN_NOT_OK(dataset_lsh_->Add(name, DatasetSignature(shards)));
  if (!options_.replication_log) return Status::OK();
  // Apply-then-log, like RecordEdgeLocked.
  MLAKE_RETURN_NOT_OK(catalog_->Sync());
  storage::Intent intent;
  intent.op = "register_dataset";
  Json payload = Json::MakeObject();
  payload.Set("name", name);
  Json shards_json = Json::MakeArray();
  for (const std::string& s : shards) shards_json.Append(Json(s));
  payload.Set("shards", std::move(shards_json));
  intent.payload = std::move(payload);
  MLAKE_ASSIGN_OR_RETURN(intent.seq, BeginIntentLocked(intent));
  return journal_->Commit(intent.seq);
}

Result<std::vector<std::string>> ModelLake::DatasetShardsUnlocked(
    const std::string& name) const {
  MLAKE_ASSIGN_OR_RETURN(Json doc, catalog_->GetDoc("dataset", name));
  std::vector<std::string> shards;
  if (const Json* arr = doc.Find("shards");
      arr != nullptr && arr->is_array()) {
    for (const Json& s : arr->AsArray()) {
      if (s.is_string()) shards.push_back(s.AsString());
    }
  }
  return shards;
}

Result<std::vector<std::string>> ModelLake::DatasetShards(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return DatasetShardsUnlocked(name);
}

std::vector<std::string> ModelLake::ListDatasets() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return catalog_->ListIds("dataset");
}

// --------------------------------------------------------------- lineage

Status ModelLake::RecordEdge(const versioning::VersionEdge& edge) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return RecordEdgeLocked(edge);
}

Status ModelLake::RecordEdgeLocked(const versioning::VersionEdge& edge) {
  MLAKE_RETURN_NOT_OK(graph_.AddEdge(edge));
  MLAKE_RETURN_NOT_OK(PersistGraph());
  // Edges are governance-export content, so recording one must move the
  // (mutation_epoch, index_generation) change key or /v1/export pollers
  // would keep getting 304 against a stale ETag. The other consumers of
  // the epoch only get more conservative: a mid-pass compaction aborts
  // its swap and retries, and the stats/plan caches rebuild lazily.
  ++mutation_epoch_;
  if (!options_.replication_log) return Status::OK();
  // Apply-then-log: make the edge durable first, then append + commit
  // the log entry so replicas replay it. A crash between Sync and
  // Commit leaves a pending intent whose mutation already applied;
  // Recover completes the Commit (never rolls it back). A crash before
  // Begin loses only the log entry — the periodic fingerprint exchange
  // catches the divergence and a re-seed repairs it.
  MLAKE_RETURN_NOT_OK(catalog_->Sync());
  storage::Intent intent;
  intent.op = "record_edge";
  Json payload = Json::MakeObject();
  payload.Set("parent", edge.parent);
  payload.Set("child", edge.child);
  payload.Set("type", std::string(versioning::EdgeTypeToString(edge.type)));
  payload.Set("confidence", edge.confidence);
  if (!edge.params.is_null()) payload.Set("params", edge.params);
  intent.payload = std::move(payload);
  MLAKE_ASSIGN_OR_RETURN(intent.seq, BeginIntentLocked(intent));
  return journal_->Commit(intent.seq);
}

// ----------------------------------------------------------- replication

Result<uint64_t> ModelLake::BeginIntentLocked(const storage::Intent& intent) {
  if (forced_seq_ == 0) return journal_->Begin(intent);
  storage::Intent stamped = intent;
  stamped.epoch = forced_epoch_;
  return journal_->BeginAt(forced_seq_, stamped);
}

Result<Json> ModelLake::ReplicationLogJson(uint64_t from_seq,
                                           size_t max) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!options_.replication_log) {
    return Status::FailedPrecondition("replication log disabled on this lake");
  }
  if (journal_->truncated_upto() != 0 &&
      from_seq <= journal_->truncated_upto()) {
    return Status::FailedPrecondition(StrFormat(
        "log truncated through seq %llu; re-seed from a snapshot",
        static_cast<unsigned long long>(journal_->truncated_upto())));
  }
  MLAKE_ASSIGN_OR_RETURN(std::vector<storage::Intent> entries,
                         journal_->Committed(from_seq, max));
  // Exhaustion is judged before filtering local-only ops: when this scan
  // drained the log, the replica may fast-forward its watermark to
  // last_seq even though some seqs below it were never shipped.
  const bool exhausted = entries.size() < max;
  Json arr = Json::MakeArray();
  for (const storage::Intent& entry : entries) {
    if (entry.op == "compact") continue;  // local housekeeping, not state
    arr.Append(entry.ToJson());
  }
  Json out = Json::MakeObject();
  out.Set("epoch", Json(journal_->epoch()));
  out.Set("last_seq", Json(journal_->last_committed_seq()));
  out.Set("exhausted", Json(exhausted));
  out.Set("entries", std::move(arr));
  return out;
}

Result<std::string> ModelLake::ReadBlob(const std::string& digest) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return blobs_->Get(digest);
}

std::string ModelLake::ReplicationFingerprintUnlocked() const {
  std::string acc;
  auto mix = [&acc](const std::string& piece) {
    acc = Sha256::HexDigest(acc + piece);
  };
  for (const char* kind : {"model", "card", "embedding", "dataset"}) {
    for (const std::string& id : catalog_->ListIds(kind)) {  // sorted
      Result<Json> doc = catalog_->GetDoc(kind, id);
      mix(std::string(kind) + "|" + id + "|" +
          (doc.ok() ? doc.ValueUnsafe().Dump() : std::string("<unreadable>")));
    }
  }
  std::vector<std::string> edges;
  edges.reserve(graph_.NumEdges());
  for (const versioning::VersionEdge& e : graph_.Edges()) {
    edges.push_back(
        StrFormat("edge|%s|%s|%s|%.17g|%s", e.parent.c_str(), e.child.c_str(),
                  std::string(versioning::EdgeTypeToString(e.type)).c_str(),
                  e.confidence, e.params.is_null() ? "" : e.params.Dump().c_str()));
  }
  std::sort(edges.begin(), edges.end());
  for (const std::string& e : edges) mix(e);
  return acc;
}

std::string ModelLake::ReplicationFingerprint() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ReplicationFingerprintUnlocked();
}

Result<Json> ModelLake::ReplicationSeedJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!options_.replication_log) {
    return Status::FailedPrecondition("replication log disabled on this lake");
  }
  // Docs ship verbatim: the replica re-puts these exact bytes, so a
  // re-seeded catalog fingerprints identically to the leader's by
  // construction.
  Json models = Json::MakeArray();
  for (const std::string& id : catalog_->ListIds("model")) {  // sorted
    Json entry = Json::MakeObject();
    entry.Set("id", id);
    for (const char* kind : {"model", "card", "embedding"}) {
      if (Result<Json> doc = catalog_->GetDoc(kind, id); doc.ok()) {
        entry.Set(kind, doc.MoveValueUnsafe());
      }
    }
    models.Append(std::move(entry));
  }
  Json datasets = Json::MakeArray();
  for (const std::string& name : catalog_->ListIds("dataset")) {
    Json entry = Json::MakeObject();
    entry.Set("name", name);
    if (Result<Json> doc = catalog_->GetDoc("dataset", name); doc.ok()) {
      entry.Set("doc", doc.MoveValueUnsafe());
    }
    datasets.Append(std::move(entry));
  }
  Json edges = Json::MakeArray();
  for (const versioning::VersionEdge& e : graph_.Edges()) {
    Json ej = Json::MakeObject();
    ej.Set("parent", e.parent);
    ej.Set("child", e.child);
    ej.Set("type", std::string(versioning::EdgeTypeToString(e.type)));
    ej.Set("confidence", e.confidence);
    if (!e.params.is_null()) ej.Set("params", e.params);
    edges.Append(std::move(ej));
  }
  Json out = Json::MakeObject();
  out.Set("epoch", Json(journal_->epoch()));
  out.Set("upto_seq", Json(journal_->last_committed_seq()));
  out.Set("models", std::move(models));
  out.Set("edges", std::move(edges));
  out.Set("datasets", std::move(datasets));
  return out;
}

Status ModelLake::ApplyReplicated(
    const storage::Intent& entry,
    const std::map<std::string, std::string>& blob_bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!options_.replication_log) {
    return Status::FailedPrecondition("replication log disabled on this lake");
  }
  if (entry.seq == 0) {
    return Status::InvalidArgument("replicated entry needs a seq");
  }
  forced_seq_ = entry.seq;
  forced_epoch_ = entry.epoch;
  Status applied = [&]() -> Status {
    if (entry.op == "ingest" && !entry.digests.empty()) {
      if (entry.digests.size() != entry.ids.size()) {
        return Status::Corruption("replicated ingest: ids/digests mismatch");
      }
      const Json* cards = entry.payload.Find("cards");
      if (cards == nullptr || !cards->is_array() ||
          cards->AsArray().size() != entry.ids.size()) {
        return Status::Corruption("replicated ingest: bad cards payload");
      }
      // Decode every artifact and verify its bytes against the shipped
      // digest before anything durable changes.
      std::vector<std::unique_ptr<nn::Model>> models;
      models.reserve(entry.ids.size());
      std::vector<IngestRequest> batch(entry.ids.size());
      for (size_t i = 0; i < entry.ids.size(); ++i) {
        auto it = blob_bytes.find(entry.digests[i]);
        if (it == blob_bytes.end()) {
          return Status::InvalidArgument("missing blob bytes for digest " +
                                         entry.digests[i]);
        }
        if (Sha256::HexDigest(it->second) != entry.digests[i]) {
          return Status::Corruption("blob bytes do not match digest " +
                                    entry.digests[i]);
        }
        MLAKE_ASSIGN_OR_RETURN(storage::ModelArtifact artifact,
                               storage::ParseArtifact(it->second));
        MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                               storage::ModelFromArtifact(artifact));
        MLAKE_ASSIGN_OR_RETURN(
            batch[i].card, metadata::ModelCard::FromJson(cards->AsArray()[i]));
        if (batch[i].card.model_id != entry.ids[i]) {
          return Status::Corruption("replicated ingest: card/id mismatch for " +
                                    entry.ids[i]);
        }
        models.push_back(std::move(model));
        batch[i].model = models.back().get();
      }
      MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                             IngestModelsLocked(batch));
      // Determinism check: re-serializing the decoded artifacts must
      // land on the leader's digests, or this replica just diverged.
      for (size_t i = 0; i < ids.size(); ++i) {
        auto it = digest_by_id_.find(ids[i]);
        if (it == digest_by_id_.end() || it->second != entry.digests[i]) {
          return Status::Corruption("replicated ingest: digest diverged for " +
                                    ids[i]);
        }
      }
      return Status::OK();
    }
    if (entry.op == "ingest") {
      // Metadata-only batch: cards + embeddings ride in the payload.
      const Json* cards = entry.payload.Find("cards");
      const Json* embeddings = entry.payload.Find("embeddings");
      if (cards == nullptr || !cards->is_array() || embeddings == nullptr ||
          !embeddings->is_array() ||
          cards->AsArray().size() != embeddings->AsArray().size()) {
        return Status::Corruption("replicated card ingest: bad payload");
      }
      std::vector<CardIngest> batch(cards->AsArray().size());
      for (size_t i = 0; i < batch.size(); ++i) {
        MLAKE_ASSIGN_OR_RETURN(
            batch[i].card, metadata::ModelCard::FromJson(cards->AsArray()[i]));
        MLAKE_ASSIGN_OR_RETURN(batch[i].embedding,
                               FloatsFromJson(embeddings->AsArray()[i]));
      }
      Result<std::vector<std::string>> ids = IngestCardsLocked(batch);
      return ids.ok() ? Status::OK() : ids.status();
    }
    if (entry.op == "record_edge") {
      versioning::VersionEdge edge;
      edge.parent = entry.payload.GetString("parent");
      edge.child = entry.payload.GetString("child");
      MLAKE_ASSIGN_OR_RETURN(
          edge.type,
          versioning::EdgeTypeFromString(entry.payload.GetString("type")));
      edge.confidence = entry.payload.GetDouble("confidence", 1.0);
      if (const Json* params = entry.payload.Find("params")) {
        edge.params = *params;
      }
      return RecordEdgeLocked(edge);
    }
    if (entry.op == "register_dataset") {
      std::string name = entry.payload.GetString("name");
      std::vector<std::string> shards;
      if (const Json* arr = entry.payload.Find("shards");
          arr != nullptr && arr->is_array()) {
        for (const Json& s : arr->AsArray()) {
          if (s.is_string()) shards.push_back(s.AsString());
        }
      }
      return RegisterDatasetLocked(name, shards);
    }
    return Status::InvalidArgument("unknown replicated op: " + entry.op);
  }();
  forced_seq_ = 0;
  forced_epoch_ = 0;
  return applied;
}

Status ModelLake::ReseedFromManifest(
    const Json& manifest,
    const std::function<Result<std::string>(const std::string&)>& fetch_blob) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!options_.replication_log) {
    return Status::FailedPrecondition("replication log disabled on this lake");
  }
  const Json* models = manifest.Find("models");
  if (models == nullptr || !models->is_array()) {
    return Status::Corruption("seed manifest: missing models array");
  }
  std::map<std::string, const Json*> seed;  // id -> manifest entry
  for (const Json& entry : models->AsArray()) {
    std::string id = entry.GetString("id");
    if (id.empty()) {
      return Status::Corruption("seed manifest: model without id");
    }
    seed[id] = &entry;
  }

  // 1. Blobs: fetch (and verify) every artifact the seed references that
  // this lake does not already hold. Content addressing makes re-running
  // this after a crash idempotent; orphaned local blobs are left for GC.
  for (const auto& [id, entry] : seed) {
    const Json* model_doc = entry->Find("model");
    std::string digest =
        model_doc == nullptr ? "" : model_doc->GetString("artifact_digest");
    if (digest.empty() || blobs_->Contains(digest)) continue;
    MLAKE_ASSIGN_OR_RETURN(std::string bytes, fetch_blob(digest));
    if (Sha256::HexDigest(bytes) != digest) {
      return Status::Corruption("re-seed blob does not match digest " +
                                digest);
    }
    MLAKE_ASSIGN_OR_RETURN(std::string stored, blobs_->Put(bytes));
    (void)stored;
  }

  // 2. Catalog: force model/card/embedding docs to the seed's exact
  // bytes — extra ids are deleted, divergent docs overwritten.
  for (const char* kind : {"model", "card", "embedding"}) {
    for (const std::string& id : catalog_->ListIds(kind)) {
      auto it = seed.find(id);
      if (it == seed.end() || it->second->Find(kind) == nullptr) {
        MLAKE_RETURN_NOT_OK(catalog_->DeleteDoc(kind, id));
      }
    }
    for (const auto& [id, entry] : seed) {
      const Json* doc = entry->Find(kind);
      if (doc == nullptr) continue;
      bool same = false;
      if (Result<Json> existing = catalog_->GetDoc(kind, id); existing.ok()) {
        same = existing.ValueUnsafe().Dump() == doc->Dump();
      }
      if (!same) MLAKE_RETURN_NOT_OK(catalog_->PutDoc(kind, id, *doc));
    }
  }

  // 3. Datasets, wholesale.
  std::map<std::string, const Json*> want_datasets;
  if (const Json* datasets = manifest.Find("datasets");
      datasets != nullptr && datasets->is_array()) {
    for (const Json& d : datasets->AsArray()) {
      std::string name = d.GetString("name");
      const Json* doc = d.Find("doc");
      if (name.empty() || doc == nullptr) {
        return Status::Corruption("seed manifest: bad dataset entry");
      }
      want_datasets[name] = doc;
    }
  }
  for (const std::string& name : catalog_->ListIds("dataset")) {
    if (want_datasets.count(name) == 0) {
      MLAKE_RETURN_NOT_OK(catalog_->DeleteDoc("dataset", name));
    }
  }
  for (const auto& [name, doc] : want_datasets) {
    bool same = false;
    if (Result<Json> existing = catalog_->GetDoc("dataset", name);
        existing.ok()) {
      same = existing.ValueUnsafe().Dump() == doc->Dump();
    }
    if (!same) MLAKE_RETURN_NOT_OK(catalog_->PutDoc("dataset", name, *doc));
  }

  // 4. Lineage, wholesale: nodes for artifact-backed models, then the
  // seed's edges (AddEdge auto-registers any endpoint it is missing).
  versioning::ModelGraph fresh;
  for (const auto& [id, entry] : seed) {
    const Json* model_doc = entry->Find("model");
    if (model_doc != nullptr &&
        !model_doc->GetString("artifact_digest").empty()) {
      fresh.AddModel(id);
    }
  }
  if (const Json* edges = manifest.Find("edges");
      edges != nullptr && edges->is_array()) {
    for (const Json& ej : edges->AsArray()) {
      versioning::VersionEdge edge;
      edge.parent = ej.GetString("parent");
      edge.child = ej.GetString("child");
      MLAKE_ASSIGN_OR_RETURN(
          edge.type, versioning::EdgeTypeFromString(ej.GetString("type")));
      edge.confidence = ej.GetDouble("confidence", 1.0);
      if (const Json* params = ej.Find("params")) edge.params = *params;
      MLAKE_RETURN_NOT_OK(fresh.AddEdge(std::move(edge)));
    }
  }
  graph_ = std::move(fresh);
  MLAKE_RETURN_NOT_OK(PersistGraph());
  MLAKE_RETURN_NOT_OK(catalog_->Sync());

  // 5. Every seeded artifact was digest-verified above, so quarantine
  // state is reset.
  degraded_.clear();

  // 6. The local log below upto_seq no longer describes what is applied;
  // truncate it and adopt the leader's epoch so a later promote resumes
  // from a clean floor.
  const uint64_t upto =
      static_cast<uint64_t>(manifest.GetInt64("upto_seq", 0));
  if (upto > 0) MLAKE_RETURN_NOT_OK(journal_->Truncate(upto));
  const uint64_t seed_epoch =
      static_cast<uint64_t>(manifest.GetInt64("epoch", 0));
  if (seed_epoch > journal_->epoch()) {
    MLAKE_RETURN_NOT_OK(journal_->SetEpoch(seed_epoch));
  }

  // 7. Rebuild every index from the repaired catalog.
  MLAKE_RETURN_NOT_OK(InvalidateIndexSnapshotsUnlocked());
  MLAKE_RETURN_NOT_OK(RebuildIndices());
  ++mutation_epoch_;
  return Status::OK();
}

uint64_t ModelLake::ReplicationEpoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return journal_->epoch();
}

uint64_t ModelLake::ReplicationLastSeq() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return journal_->last_committed_seq();
}

Status ModelLake::SetReplicationEpoch(uint64_t epoch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return journal_->SetEpoch(epoch);
}

Result<uint64_t> ModelLake::BumpReplicationEpoch() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t next = journal_->epoch() + 1;
  MLAKE_RETURN_NOT_OK(journal_->SetEpoch(next));
  return next;
}

Status ModelLake::TruncateReplicationLog(uint64_t upto_seq) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return journal_->Truncate(upto_seq);
}

Result<std::string> ModelLake::ArtifactDigest(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (auto it = digest_by_id_.find(id); it != digest_by_id_.end()) {
    return it->second;
  }
  MLAKE_ASSIGN_OR_RETURN(Json model_doc, catalog_->GetDoc("model", id));
  return model_doc.GetString("artifact_digest");
}

bool ModelLake::HasEdge(const std::string& parent,
                        const std::string& child) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graph_.HasEdge(parent, child);
}

Result<Json> ModelLake::Lineage(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!catalog_->Contains("model", id)) {
    return Status::NotFound("model not in lake: " + id);
  }
  auto string_array = [](const std::vector<std::string>& ids) {
    Json a = Json::MakeArray();
    for (const std::string& s : ids) a.Append(Json(s));
    return a;
  };
  Json out = Json::MakeObject();
  out.Set("id", id);
  out.Set("parents", string_array(graph_.Parents(id)));
  out.Set("children", string_array(graph_.Children(id)));
  out.Set("ancestors", string_array(graph_.Ancestors(id)));
  out.Set("descendants", string_array(graph_.Descendants(id)));
  Json edges = Json::MakeArray();
  for (const versioning::VersionEdge& e : graph_.Edges()) {
    if (e.parent != id && e.child != id) continue;
    Json ej = Json::MakeObject();
    ej.Set("parent", e.parent);
    ej.Set("child", e.child);
    ej.Set("type", std::string(versioning::EdgeTypeToString(e.type)));
    ej.Set("confidence", e.confidence);
    edges.Append(std::move(ej));
  }
  out.Set("edges", std::move(edges));
  out.Set("graph_revision", graph_.revision());
  return out;
}

Result<versioning::HeritageResult> ModelLake::RecoverHeritage(
    const versioning::HeritageConfig& config) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Degraded models have no readable weights; heritage runs over the
  // healthy remainder rather than failing the whole analysis.
  std::vector<std::string> ids = SearchableModelIdsUnlocked();
  if (!degraded_.empty()) {
    MLAKE_LOG_WARNING << "heritage recovery skipping " << degraded_.size()
                      << " degraded model(s)";
  }
  // Metadata-only models (IngestCards) have no weights to compare;
  // heritage runs over the artifact-backed population.
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [this](const std::string& id) {
                             return !DigestForUnlocked(id).ok();
                           }),
            ids.end());
  std::vector<versioning::WeightSummary> summaries(ids.size());
  // Artifact load + flatten per model is pure and slot-owned: safe and
  // deterministic to parallelize. Works on the decoded artifact (via
  // the artifact cache) instead of rebuilding a live model: the
  // artifact stores weights in NamedParams order, so concatenating its
  // tensors is exactly Model::FlattenParams without the weight-init +
  // LoadStateDict round trip.
  MLAKE_RETURN_NOT_OK(
      ParallelFor(options_.exec, 0, ids.size(), [&](size_t i) -> Status {
        MLAKE_ASSIGN_OR_RETURN(std::string digest,
                               DigestForUnlocked(ids[i]));
        MLAKE_ASSIGN_OR_RETURN(
            std::shared_ptr<const storage::ModelArtifact> artifact,
            LoadArtifactUnlocked(digest));
        summaries[i].id = ids[i];
        summaries[i].arch_signature = artifact->spec.Signature();
        int64_t total = 0;
        for (const auto& [name, tensor] : artifact->weights) {
          total += tensor.NumElements();
        }
        Tensor flat({total});
        int64_t offset = 0;
        for (const auto& [name, tensor] : artifact->weights) {
          std::copy(tensor.data(), tensor.data() + tensor.NumElements(),
                    flat.data() + offset);
          offset += tensor.NumElements();
        }
        summaries[i].flat_weights = std::move(flat);
        return Status::OK();
      }));
  versioning::HeritageConfig effective = config;
  if (effective.exec.pool == nullptr) effective.exec = options_.exec;
  return versioning::RecoverHeritage(summaries, effective);
}

// ---------------------------------------------------------------- search

Result<search::QueryResult> ModelLake::Query(std::string_view mlql) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MLAKE_ASSIGN_OR_RETURN(std::shared_ptr<const search::Query> plan,
                         CachedPlanUnlocked(mlql));
  UnlockedView view(this);
  MLAKE_ASSIGN_OR_RETURN(search::QueryResult result,
                         search::ExecuteQuery(view, *plan));
  {
    std::lock_guard<std::mutex> plan_lock(plan_mu_);
    last_plan_ = result.plan;
  }
  return result;
}

Result<search::QueryResult> ModelLake::QueryWithOverlay(
    std::string_view mlql, const search::SearchOverlay& overlay) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MLAKE_ASSIGN_OR_RETURN(std::shared_ptr<const search::Query> plan,
                         CachedPlanUnlocked(mlql));
  OverlayView view(this, &overlay);
  MLAKE_ASSIGN_OR_RETURN(search::QueryResult result,
                         search::ExecuteQuery(view, *plan));
  {
    std::lock_guard<std::mutex> plan_lock(plan_mu_);
    last_plan_ = result.plan;
  }
  return result;
}

index::Bm25Stats ModelLake::CollectBm25Stats(const std::string& text) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bm25_.CollectStats(text);
}

Result<std::vector<std::pair<std::string, double>>>
ModelLake::KeywordScoresWithStats(const std::string& text, size_t k,
                                  const index::Bm25Stats& stats) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return MapTextHitsUnlocked(
      bm25_.SearchWithStats(text, k + degraded_.size(), stats), k);
}

Result<std::vector<search::RankedModel>> ModelLake::RelatedModelsByVector(
    const std::vector<float>& query, size_t k,
    const std::string& exclude_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Same over-fetch as RelatedModelsUnlocked: +1 because the excluded
  // model (if local) matches itself.
  MLAKE_ASSIGN_OR_RETURN(auto neighbors, NearestModelsUnlocked(query, k + 1));
  return RelatedFromNeighbors(exclude_id, neighbors, k);
}

Result<std::vector<search::HybridCandidate>> ModelLake::HybridParts(
    std::string_view mlql, const std::vector<float>& query_vec) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MLAKE_ASSIGN_OR_RETURN(std::shared_ptr<const search::Query> plan,
                         CachedPlanUnlocked(mlql));
  UnlockedView view(this);
  return search::CollectHybridParts(view, *plan, query_vec);
}

uint64_t ModelLake::IndexGeneration() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return index_generation_;
}

uint64_t ModelLake::MutationEpoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return mutation_epoch_;
}

Result<std::shared_ptr<const search::Query>> ModelLake::CachedPlanUnlocked(
    std::string_view mlql) const {
  std::string key(mlql);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (plan_epoch_ != mutation_epoch_ ||
        plan_generation_ != index_generation_) {
      plan_cache_.clear();
      plan_epoch_ = mutation_epoch_;
      plan_generation_ = index_generation_;
    }
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++plan_hits_;
      return it->second;
    }
    ++plan_misses_;
  }
  // Parse outside plan_mu_ so a slow parse never blocks cache hits on
  // other readers.
  MLAKE_ASSIGN_OR_RETURN(search::Query parsed, search::ParseQuery(mlql));
  auto plan = std::make_shared<const search::Query>(std::move(parsed));
  std::string normalized = search::ToString(*plan);
  std::lock_guard<std::mutex> lock(plan_mu_);
  if (plan_cache_.size() + 2 > kPlanCacheCap) plan_cache_.clear();
  // Alias the canonical rendering to the same parse so formatting
  // variants of one query (spacing, keyword case) share a cache entry.
  plan_cache_.emplace(std::move(key), plan);
  plan_cache_.emplace(std::move(normalized), plan);
  return plan;
}

ModelLake::PlanCacheCounters ModelLake::PlanCacheStats() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  return PlanCacheCounters{plan_hits_, plan_misses_, plan_cache_.size()};
}

Json ModelLake::PlannerStatsJson() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  Json cache = Json::MakeObject();
  cache.Set("hits", static_cast<int64_t>(plan_hits_));
  cache.Set("misses", static_cast<int64_t>(plan_misses_));
  cache.Set("entries", static_cast<int64_t>(plan_cache_.size()));
  Json out = Json::MakeObject();
  out.Set("plan_cache", cache);
  out.Set("last_plan", last_plan_);
  return out;
}

search::SearchContext::CatalogStats ModelLake::StatsUnlocked() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (stats_valid_ && stats_epoch_ == mutation_epoch_) return stats_cache_;
  search::SearchContext::CatalogStats stats;
  stats.valid = true;
  std::vector<std::string> ids = SearchableModelIdsUnlocked();
  stats.num_models = ids.size();
  stats.ann_live = ann_->Size();
  stats.bm25_live = bm25_.NumDocs();
  for (const std::string& id : ids) {
    auto card = CardForUnlocked(id);
    if (!card.ok()) continue;
    const metadata::ModelCard& c = card.ValueUnsafe();
    if (!c.task.empty()) ++stats.field_counts["task"][c.task];
    if (!c.creator.empty()) ++stats.field_counts["creator"][c.creator];
    if (!c.license.empty()) ++stats.field_counts["license"][c.license];
    if (!c.architecture.empty()) {
      ++stats.field_counts["architecture"][c.architecture];
    }
  }
  stats_cache_ = std::move(stats);
  stats_epoch_ = mutation_epoch_;
  stats_valid_ = true;
  return stats_cache_;
}

search::SearchContext::CatalogStats ModelLake::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return StatsUnlocked();
}

std::vector<search::RankedModel> ModelLake::RelatedFromNeighbors(
    const std::string& id,
    const std::vector<std::pair<std::string, float>>& neighbors, size_t k) {
  std::vector<search::RankedModel> out;
  for (const auto& [other, distance] : neighbors) {
    if (other == id) continue;
    if (out.size() >= k) break;
    out.push_back(search::RankedModel{other, 1.0 - distance});
  }
  return out;
}

Result<std::vector<search::RankedModel>> ModelLake::RelatedModelsUnlocked(
    const std::string& id, size_t k) const {
  MLAKE_ASSIGN_OR_RETURN(std::vector<float> query, EmbeddingForUnlocked(id));
  MLAKE_ASSIGN_OR_RETURN(auto neighbors, NearestModelsUnlocked(query, k + 1));
  return RelatedFromNeighbors(id, neighbors, k);
}

Result<std::vector<search::RankedModel>> ModelLake::RelatedModels(
    const std::string& id, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return RelatedModelsUnlocked(id, k);
}

std::vector<Result<std::vector<search::RankedModel>>>
ModelLake::RelatedModelsBatch(const std::vector<std::string>& ids,
                              size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Result<std::vector<search::RankedModel>>> results;
  results.reserve(ids.size());
  // Resolve embeddings first; an unknown id fails only its own slot.
  // Successful slots get a placeholder overwritten after the probe.
  std::vector<std::vector<float>> queries;
  std::vector<size_t> probe_slot;  // queries index -> results index
  for (const std::string& id : ids) {
    auto embedding = EmbeddingForUnlocked(id);
    if (embedding.ok()) {
      probe_slot.push_back(results.size());
      queries.push_back(std::move(embedding.ValueUnsafe()));
      results.emplace_back(std::vector<search::RankedModel>{});
    } else {
      results.emplace_back(embedding.status());
    }
  }
  if (queries.empty()) return results;
  // Same effective ef as the solo path: RelatedModelsUnlocked asks
  // NearestModelsUnlocked for k+1, which over-fetches by degraded_.
  auto batch = ann_->SearchBatch(queries, k + 1 + degraded_.size());
  for (size_t q = 0; q < probe_slot.size(); ++q) {
    if (!batch.ok()) {
      results[probe_slot[q]] = batch.status();
    } else {
      results[probe_slot[q]] = RelatedFromNeighbors(
          ids[probe_slot[q]],
          MapNeighborsUnlocked(batch.ValueUnsafe()[q], k + 1), k);
    }
  }
  return results;
}

std::vector<Result<std::vector<std::pair<std::string, double>>>>
ModelLake::KeywordScoresBatch(const std::vector<std::string>& texts,
                              size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::vector<index::TextHit>> batch =
      bm25_.SearchBatch(texts, k + degraded_.size());
  std::vector<Result<std::vector<std::pair<std::string, double>>>> results;
  results.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    results.emplace_back(MapTextHitsUnlocked(batch[i], k));
  }
  return results;
}

Result<std::vector<search::RankedModel>> ModelLake::HybridSearch(
    const std::string& text, const std::string& query_model_id,
    size_t k) const {
  // Escape single quotes for MLQL string literals. Query() takes the
  // shared lock itself.
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      out.push_back(c);
      if (c == '\'') out.push_back('\'');
    }
    return out;
  };
  MLAKE_ASSIGN_OR_RETURN(
      search::QueryResult result,
      Query(StrFormat("FIND MODELS RANK BY hybrid('%s', '%s') LIMIT %zu",
                      escape(text).c_str(), escape(query_model_id).c_str(),
                      k)));
  return result.models;
}

std::vector<std::string> ModelLake::AllModelIds() const {
  // Search surface, not admin surface: degraded models are filtered so
  // queries never rank a model whose artifact is quarantined.
  std::shared_lock<std::shared_mutex> lock(mu_);
  return SearchableModelIdsUnlocked();
}

Result<metadata::ModelCard> ModelLake::CardForUnlocked(
    const std::string& id) const {
  MLAKE_ASSIGN_OR_RETURN(Json doc, catalog_->GetDoc("card", id));
  return metadata::ModelCard::FromJson(doc);
}

Result<metadata::ModelCard> ModelLake::CardFor(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CardForUnlocked(id);
}

Result<std::vector<float>> ModelLake::EmbeddingForUnlocked(
    const std::string& id) const {
  // Cache key: content digest + embedder config. Keyed by digest (not
  // id) so identical checkpoints share one entry, and so the key is
  // immutable — a digest always means the same bytes. Only values
  // parsed from the catalog are cached (never freshly computed ones),
  // so a cached read is bit-identical to an uncached one.
  std::string key;
  if (embedding_cache_->enabled()) {
    if (auto digest = DigestForUnlocked(id); digest.ok()) {
      key = digest.ValueUnsafe() + "|" + embedder_key_;
      if (auto cached = embedding_cache_->Get(key)) return *cached;
    }
  }
  MLAKE_ASSIGN_OR_RETURN(Json doc, catalog_->GetDoc("embedding", id));
  MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, FloatsFromJson(doc));
  if (!key.empty()) {
    embedding_cache_->Put(key,
                          std::make_shared<const std::vector<float>>(vec),
                          vec.size() * sizeof(float) + key.size());
  }
  return vec;
}

Result<std::vector<float>> ModelLake::EmbeddingFor(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return EmbeddingForUnlocked(id);
}

std::vector<std::pair<std::string, float>> ModelLake::MapNeighborsUnlocked(
    const std::vector<index::Neighbor>& hits, size_t k) const {
  std::vector<std::pair<std::string, float>> out;
  out.reserve(std::min(hits.size(), k));
  for (const index::Neighbor& n : hits) {
    if (out.size() >= k) break;
    const std::string& id = ann_ids_[static_cast<size_t>(n.id)];
    if (degraded_.count(id) > 0) continue;
    out.emplace_back(id, n.distance);
  }
  return out;
}

Result<std::vector<std::pair<std::string, float>>>
ModelLake::NearestModelsUnlocked(const std::vector<float>& query,
                                 size_t k) const {
  // Degraded models stay in the ANN graph (HNSW has no remove) but are
  // filtered out of results; over-fetch so k healthy hits survive.
  MLAKE_ASSIGN_OR_RETURN(std::vector<index::Neighbor> hits,
                         ann_->Search(query, k + degraded_.size()));
  return MapNeighborsUnlocked(hits, k);
}

Result<std::vector<std::pair<std::string, float>>> ModelLake::NearestModels(
    const std::vector<float>& query, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return NearestModelsUnlocked(query, k);
}

std::vector<std::pair<std::string, double>> ModelLake::MapTextHitsUnlocked(
    const std::vector<index::TextHit>& hits, size_t k) const {
  std::vector<std::pair<std::string, double>> out;
  for (const index::TextHit& hit : hits) {
    if (out.size() >= k) break;
    if (degraded_.count(hit.doc_id) > 0) continue;
    out.emplace_back(hit.doc_id, hit.score);
  }
  return out;
}

Result<std::vector<std::pair<std::string, double>>>
ModelLake::KeywordScoresUnlocked(const std::string& text, size_t k) const {
  return MapTextHitsUnlocked(bm25_.Search(text, k + degraded_.size()), k);
}

Result<std::vector<std::pair<std::string, double>>> ModelLake::KeywordScores(
    const std::string& text, size_t k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return KeywordScoresUnlocked(text, k);
}

Result<std::vector<std::pair<std::string, double>>>
ModelLake::TrainedOnUnlocked(const std::string& dataset,
                             double min_overlap) const {
  // Resolve the query dataset to the set of datasets overlapping it.
  std::map<std::string, double> related_datasets;
  related_datasets[dataset] = 1.0;
  if (catalog_->Contains("dataset", dataset)) {
    MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> shards,
                           DatasetShardsUnlocked(dataset));
    for (const auto& hit :
         dataset_lsh_->Query(DatasetSignature(shards), min_overlap)) {
      auto it = related_datasets.find(hit.id);
      if (it == related_datasets.end() || it->second < hit.jaccard) {
        related_datasets[hit.id] = hit.jaccard;
      }
    }
  }
  // Models whose cards claim training on any related dataset.
  std::vector<std::pair<std::string, double>> out;
  for (const std::string& id : SearchableModelIdsUnlocked()) {
    auto card = CardForUnlocked(id);
    if (!card.ok()) continue;
    double best = 0.0;
    for (const std::string& trained : card.ValueUnsafe().training_datasets) {
      auto it = related_datasets.find(trained);
      if (it != related_datasets.end()) best = std::max(best, it->second);
    }
    if (best >= min_overlap || best == 1.0) {
      if (best > 0.0) out.emplace_back(id, best);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

Result<std::vector<std::pair<std::string, double>>> ModelLake::TrainedOn(
    const std::string& dataset, double min_overlap) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TrainedOnUnlocked(dataset, min_overlap);
}

bool ModelLake::IsDescendantOfUnlocked(const std::string& id,
                                       const std::string& ancestor) const {
  if (!graph_.HasModel(ancestor)) return false;
  std::vector<std::string> descendants = graph_.Descendants(ancestor);
  return std::find(descendants.begin(), descendants.end(), id) !=
         descendants.end();
}

bool ModelLake::IsDescendantOf(const std::string& id,
                               const std::string& ancestor) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return IsDescendantOfUnlocked(id, ancestor);
}

// ------------------------------------------------------- unlocked view

std::vector<std::string> ModelLake::UnlockedView::AllModelIds() const {
  return lake_->SearchableModelIdsUnlocked();
}
search::SearchContext::CatalogStats ModelLake::UnlockedView::Stats() const {
  return lake_->StatsUnlocked();
}
Result<metadata::ModelCard> ModelLake::UnlockedView::CardFor(
    const std::string& id) const {
  return lake_->CardForUnlocked(id);
}
Result<std::vector<float>> ModelLake::UnlockedView::EmbeddingFor(
    const std::string& id) const {
  return lake_->EmbeddingForUnlocked(id);
}
Result<std::vector<std::pair<std::string, float>>>
ModelLake::UnlockedView::NearestModels(const std::vector<float>& query,
                                       size_t k) const {
  return lake_->NearestModelsUnlocked(query, k);
}
Result<std::vector<std::pair<std::string, double>>>
ModelLake::UnlockedView::KeywordScores(const std::string& text,
                                       size_t k) const {
  return lake_->KeywordScoresUnlocked(text, k);
}
Result<std::vector<std::pair<std::string, double>>>
ModelLake::UnlockedView::TrainedOn(const std::string& dataset,
                                   double min_overlap) const {
  return lake_->TrainedOnUnlocked(dataset, min_overlap);
}
bool ModelLake::UnlockedView::IsDescendantOf(
    const std::string& id, const std::string& ancestor) const {
  return lake_->IsDescendantOfUnlocked(id, ancestor);
}

// ------------------------------------------------------- overlay view

std::vector<std::string> ModelLake::OverlayView::AllModelIds() const {
  return lake_->SearchableModelIdsUnlocked();
}
search::SearchContext::CatalogStats ModelLake::OverlayView::Stats() const {
  return lake_->StatsUnlocked();
}
Result<metadata::ModelCard> ModelLake::OverlayView::CardFor(
    const std::string& id) const {
  return lake_->CardForUnlocked(id);
}
Result<std::vector<float>> ModelLake::OverlayView::EmbeddingFor(
    const std::string& id) const {
  // Local first: a model the shard owns always resolves locally, so an
  // overlay can never shadow (or corrupt) owned state. The hint only
  // fills lookups that would otherwise fail — off-shard query models.
  auto local = lake_->EmbeddingForUnlocked(id);
  if (local.ok()) return local;
  auto it = overlay_->embeddings.find(id);
  if (it != overlay_->embeddings.end()) return it->second;
  return local;
}
Result<std::vector<std::pair<std::string, float>>>
ModelLake::OverlayView::NearestModels(const std::vector<float>& query,
                                      size_t k) const {
  return lake_->NearestModelsUnlocked(query, k);
}
Result<std::vector<std::pair<std::string, double>>>
ModelLake::OverlayView::KeywordScores(const std::string& text,
                                      size_t k) const {
  if (overlay_->has_bm25 && text == overlay_->bm25_text) {
    return lake_->MapTextHitsUnlocked(
        lake_->bm25_.SearchWithStats(text, k + lake_->degraded_.size(),
                                     overlay_->bm25_stats),
        k);
  }
  return lake_->KeywordScoresUnlocked(text, k);
}
Result<std::vector<std::pair<std::string, double>>>
ModelLake::OverlayView::TrainedOn(const std::string& dataset,
                                  double min_overlap) const {
  return lake_->TrainedOnUnlocked(dataset, min_overlap);
}
bool ModelLake::OverlayView::IsDescendantOf(
    const std::string& id, const std::string& ancestor) const {
  return lake_->IsDescendantOfUnlocked(id, ancestor);
}

// ----------------------------------------------------------- benchmarking

Status ModelLake::RegisterBenchmark(const std::string& name,
                                    nn::Dataset data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (name.empty()) return Status::InvalidArgument("benchmark needs a name");
  if (data.size() == 0) return Status::InvalidArgument("empty benchmark");
  if (benchmarks_.count(name) > 0) {
    return Status::AlreadyExists("benchmark exists: " + name);
  }
  benchmarks_[name] = std::move(data);
  return Status::OK();
}

std::vector<std::string> ModelLake::ListBenchmarks() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, data] : benchmarks_) names.push_back(name);
  return names;
}

Result<double> ModelLake::EvaluateModelUnlocked(
    const std::string& id, const std::string& benchmark) const {
  auto it = benchmarks_.find(benchmark);
  if (it == benchmarks_.end()) {
    return Status::NotFound("benchmark not registered: " + benchmark);
  }
  MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                         LoadModelUnlocked(id));
  return nn::EvaluateAccuracy(model.get(), it->second);
}

Result<double> ModelLake::EvaluateModel(const std::string& id,
                                        const std::string& benchmark) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return EvaluateModelUnlocked(id, benchmark);
}

// ----------------------------------------------------------- applications

Result<metadata::ModelCard> ModelLake::GenerateCard(
    const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, CardForUnlocked(id));
  MLAKE_ASSIGN_OR_RETURN(Json model_doc, catalog_->GetDoc("model", id));

  // Intrinsics: always recoverable from the artifact.
  if (const Json* arch = model_doc.Find("arch"); arch != nullptr) {
    auto spec = nn::ArchSpec::FromJson(*arch);
    if (spec.ok()) card.architecture = spec.ValueUnsafe().Signature();
  }
  card.num_params = model_doc.GetInt64("num_params", card.num_params);

  // Lineage: the recorded version graph is authoritative when present.
  std::vector<std::string> parents = graph_.Parents(id);
  if (!parents.empty()) {
    for (const versioning::VersionEdge& e : graph_.Edges()) {
      if (e.child == id) {
        card.lineage.base_model_id = e.parent;
        card.lineage.method = std::string(
            versioning::EdgeTypeToString(e.type));
        break;
      }
    }
  }

  // Task and training data: if missing, infer by majority vote over the
  // behaviorally nearest documented models (content-based annotation).
  // Inferred fields are flagged so reviewers can tell drafted values
  // from creator-provided ones.
  if (card.task.empty() || card.training_datasets.empty()) {
    auto related = RelatedModelsUnlocked(id, 5);
    if (related.ok()) {
      std::map<std::string, int> task_votes;
      std::map<std::string, int> dataset_votes;
      for (const search::RankedModel& r : related.ValueUnsafe()) {
        auto other = CardForUnlocked(r.id);
        if (!other.ok()) continue;
        if (!other.ValueUnsafe().task.empty()) {
          ++task_votes[other.ValueUnsafe().task];
        }
        for (const std::string& d : other.ValueUnsafe().training_datasets) {
          ++dataset_votes[d];
        }
      }
      auto winner = [](const std::map<std::string, int>& votes,
                       int min_votes) {
        std::string best;
        int best_votes = 0;
        for (const auto& [key, n] : votes) {
          if (n > best_votes) {
            best = key;
            best_votes = n;
          }
        }
        return best_votes >= min_votes ? best : std::string();
      };
      if (card.task.empty()) {
        std::string task = winner(task_votes, 2);
        if (!task.empty()) {
          card.task = task;
          card.tags.push_back("task-inferred-from-lake");
        }
      }
      if (card.training_datasets.empty()) {
        std::string dataset = winner(dataset_votes, 2);
        if (!dataset.empty()) {
          card.training_datasets.push_back(dataset);
          card.tags.push_back("training-data-inferred-from-lake");
          card.risk_notes.push_back(
              "training data inferred from related models, not verified");
        }
      }
    }
  }

  // Metrics: evaluate on every registered benchmark.
  for (const auto& [name, data] : benchmarks_) {
    bool already = false;
    for (const metadata::MetricEntry& m : card.metrics) {
      if (m.benchmark == name && m.metric == "accuracy") already = true;
    }
    if (already) continue;
    auto acc = EvaluateModelUnlocked(id, name);
    if (acc.ok()) {
      card.metrics.push_back(
          metadata::MetricEntry{name, "accuracy", acc.ValueUnsafe()});
    }
  }

  // Intended use / risks from what the lake now knows.
  if (card.intended_use.empty() && !card.task.empty()) {
    card.intended_use.push_back("classification for task family '" +
                                card.task + "'");
  }
  for (const metadata::MetricEntry& m : card.metrics) {
    if (m.metric == "accuracy" && m.value < 0.5) {
      card.risk_notes.push_back("low accuracy (" +
                                StrFormat("%.2f", m.value) + ") on " +
                                m.benchmark);
    }
  }
  std::vector<std::string> children = graph_.Children(id);
  if (!children.empty()) {
    card.risk_notes.push_back(StrFormat(
        "%zu downstream model(s) derive from this model; defects propagate",
        children.size()));
  }
  if (card.description.empty()) {
    card.description = StrFormat(
        "Auto-generated: %s model with %lld parameters%s.",
        card.architecture.c_str(),
        static_cast<long long>(card.num_params),
        card.task.empty() ? ""
                          : (" for task '" + card.task + "'").c_str());
  }
  return card;
}

Result<Json> ModelLake::AuditModel(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, CardForUnlocked(id));
  Json report = Json::MakeObject();
  report.Set("model_id", id);
  report.Set("card_completeness", metadata::CompletenessScore(card));
  Json problems = Json::MakeArray();
  for (const std::string& p : metadata::ValidateCard(card)) {
    problems.Append(Json(p));
  }
  report.Set("card_problems", std::move(problems));
  report.Set("documents_training_data", !card.training_datasets.empty());
  report.Set("documents_metrics", !card.metrics.empty());
  report.Set("documents_risks", !card.risk_notes.empty());

  // Lineage consistency: does the card's claim match the recorded graph?
  std::vector<std::string> parents = graph_.Parents(id);
  bool recorded = !parents.empty();
  report.Set("lineage_recorded", recorded);
  bool consistent = true;
  if (!card.lineage.base_model_id.empty()) {
    consistent = std::find(parents.begin(), parents.end(),
                           card.lineage.base_model_id) != parents.end();
  }
  report.Set("lineage_claim_consistent", consistent);

  // Artifact integrity: forced digest check over a view — the audit
  // never materializes the checkpoint. A quarantined model reports
  // intact=false with the quarantined flag set; a metadata-only model
  // reports has_artifact=false; the audit itself never errors on
  // degradation.
  auto digest = DigestForUnlocked(id);
  if (!digest.ok() && !digest.status().IsFailedPrecondition()) {
    return digest.status();
  }
  bool has_artifact = digest.ok();
  bool quarantined = degraded_.count(id) > 0;
  bool intact =
      has_artifact && !quarantined &&
      blobs_->GetView(digest.ValueUnsafe(), storage::VerifyMode::kAlways)
          .ok();
  report.Set("has_artifact", has_artifact);
  report.Set("artifact_intact", intact);
  report.Set("quarantined", quarantined);

  // Benchmark coverage.
  report.Set("benchmarks_reported", card.metrics.size());

  // Overall: a model "passes" audit when its artifact (if it has one)
  // is intact, its lineage claim (if any) is consistent, and it
  // documents training data.
  report.Set("passes", (!has_artifact || intact) && consistent &&
                           !card.training_datasets.empty());
  return report;
}

ModelLake::LakeCacheStats ModelLake::CacheStats() const {
  LakeCacheStats stats;
  stats.artifacts = artifact_cache_->Stats();
  stats.embeddings = embedding_cache_->Stats();
  return stats;
}

Json ModelLake::CacheStatsJson() const {
  LakeCacheStats stats = CacheStats();
  Json out = Json::MakeObject();
  out.Set("artifact_cache", storage::CacheStatsToJson(stats.artifacts));
  out.Set("embedding_cache", storage::CacheStatsToJson(stats.embeddings));
  return out;
}

Result<Json> ModelLake::Cite(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!catalog_->Contains("model", id)) {
    return Status::NotFound("model not in lake: " + id);
  }
  Json citation = Json::MakeObject();
  citation.Set("model_id", id);
  citation.Set("graph_revision", graph_.revision());

  // Lineage path from the deepest root.
  std::vector<std::string> path;
  std::string current = id;
  while (true) {
    path.push_back(current);
    std::vector<std::string> parents = graph_.Parents(current);
    if (parents.empty()) break;
    current = parents.front();  // deterministic: lexicographically first
  }
  std::reverse(path.begin(), path.end());
  Json path_json = Json::MakeArray();
  for (const std::string& p : path) path_json.Append(Json(p));
  citation.Set("lineage_path", std::move(path_json));

  auto card = CardForUnlocked(id);
  std::string creator =
      card.ok() ? card.ValueUnsafe().creator : std::string();
  citation.Set(
      "text",
      StrFormat("%s%s. Model Lake catalog, version-graph revision %llu. "
                "Lineage: %s.",
                creator.empty() ? "" : (creator + ". ").c_str(), id.c_str(),
                static_cast<unsigned long long>(graph_.revision()),
                Join(path, " -> ").c_str()));
  return citation;
}

// ------------------------------------------------------------- governance

namespace {

/// The export's (and citation heritage's) edge order: the same
/// content-derived key the replication fingerprint sorts by, so leader
/// and replica agree without consulting insertion order.
std::string ExportEdgeKey(const versioning::VersionEdge& e) {
  return StrFormat("%s|%s|%s|%.17g|%s", e.parent.c_str(), e.child.c_str(),
                   std::string(versioning::EdgeTypeToString(e.type)).c_str(),
                   e.confidence,
                   e.params.is_null() ? "" : e.params.Dump().c_str());
}

}  // namespace

Result<Json> ModelLake::CitationDoc(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!catalog_->Contains("model", id)) {
    return Status::NotFound("model not in lake: " + id);
  }

  // Lineage path from the deepest root — the same deterministic walk
  // Cite() takes (lexicographically-first parent at every hop).
  std::vector<std::string> path;
  std::string current = id;
  while (true) {
    path.push_back(current);
    std::vector<std::string> parents = graph_.Parents(current);
    if (parents.empty()) break;
    current = parents.front();
  }
  std::reverse(path.begin(), path.end());

  auto card = CardForUnlocked(id);
  std::string creator =
      card.ok() ? card.ValueUnsafe().creator : std::string();
  std::string license =
      card.ok() ? card.ValueUnsafe().license : std::string();
  std::string created_at =
      card.ok() ? card.ValueUnsafe().created_at : std::string();
  std::string title = card.ok() && !card.ValueUnsafe().name.empty()
                          ? card.ValueUnsafe().name
                          : id;

  std::string digest;
  if (auto d = DigestForUnlocked(id); d.ok()) digest = d.MoveValueUnsafe();

  Json doc = Json::MakeObject();
  doc.Set("schema", std::string("mlake.citation"));
  doc.Set("schema_version", int64_t{1});
  doc.Set("model_id", id);
  doc.Set("title", title);
  doc.Set("creator", creator);
  doc.Set("license", license);
  doc.Set("created_at", created_at);
  doc.Set("artifact_digest", digest);
  doc.Set("metadata_only", digest.empty());
  doc.Set("degraded", degraded_.count(id) > 0);
  doc.Set("graph_revision", graph_.revision());

  Json path_json = Json::MakeArray();
  for (const std::string& p : path) path_json.Append(Json(p));
  doc.Set("lineage_path", std::move(path_json));

  // Heritage chain: one record per hop of the path, carrying the edge
  // that justifies it. Multiple recorded edges between the same pair
  // pick the ExportEdgeKey-smallest — deterministic like everything
  // else in this document.
  Json heritage = Json::MakeArray();
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const versioning::VersionEdge* best = nullptr;
    std::string best_key;
    for (const versioning::VersionEdge& e : graph_.Edges()) {
      if (e.parent != path[i] || e.child != path[i + 1]) continue;
      std::string key = ExportEdgeKey(e);
      if (best == nullptr || key < best_key) {
        best = &e;
        best_key = std::move(key);
      }
    }
    Json hop = Json::MakeObject();
    hop.Set("parent", path[i]);
    hop.Set("child", path[i + 1]);
    if (best != nullptr) {
      hop.Set("type",
              std::string(versioning::EdgeTypeToString(best->type)));
      hop.Set("confidence", best->confidence);
    }
    heritage.Append(std::move(hop));
  }
  doc.Set("heritage", std::move(heritage));

  std::string text = StrFormat(
      "%s%s. Model Lake catalog, version-graph revision %llu. Lineage: %s.",
      creator.empty() ? "" : (creator + ". ").c_str(), id.c_str(),
      static_cast<unsigned long long>(graph_.revision()),
      Join(path, " -> ").c_str());
  doc.Set("text", text);

  std::string bibtex = StrFormat(
      "@misc{%s,\n"
      "  title = {%s},\n"
      "  author = {%s},\n"
      "  howpublished = {Model Lake catalog},\n"
      "  note = {version-graph revision %llu%s%s; lineage %s}\n"
      "}",
      id.c_str(), title.c_str(),
      creator.empty() ? "unknown" : creator.c_str(),
      static_cast<unsigned long long>(graph_.revision()),
      digest.empty() ? "" : "; artifact sha256:",
      digest.c_str(), Join(path, " -> ").c_str());
  doc.Set("bibtex", bibtex);
  return doc;
}

ModelLake::ExportIterator::ExportIterator(const ModelLake* lake)
    : lake_(lake), lock_(lake->mu_) {
  mutation_epoch_ = lake_->mutation_epoch_;
  index_generation_ = lake_->index_generation_;
  model_ids_ = lake_->catalog_->ListIds("model");        // sorted
  dataset_names_ = lake_->catalog_->ListIds("dataset");  // sorted
  for (const versioning::VersionEdge& e : lake_->graph_.Edges()) {
    edges_.push_back(e);
  }
  std::sort(edges_.begin(), edges_.end(),
            [](const versioning::VersionEdge& a,
               const versioning::VersionEdge& b) {
              return ExportEdgeKey(a) < ExportEdgeKey(b);
            });
}

bool ModelLake::ExportIterator::Next(std::string* line) {
  line->clear();
  // Skip past exhausted list stages (including empty ones).
  auto exhausted = [this] {
    return (stage_ == Stage::kModels && cursor_ >= model_ids_.size()) ||
           (stage_ == Stage::kEdges && cursor_ >= edges_.size()) ||
           (stage_ == Stage::kDatasets && cursor_ >= dataset_names_.size());
  };
  while (exhausted()) {
    stage_ = static_cast<Stage>(static_cast<int>(stage_) + 1);
    cursor_ = 0;
  }
  if (stage_ == Stage::kDone) return false;

  Json record = Json::MakeObject();
  switch (stage_) {
    case Stage::kHeader: {
      record.Set("kind", std::string("header"));
      record.Set("schema", std::string("mlake.export"));
      record.Set("schema_version", int64_t{1});
      Json counts = Json::MakeObject();
      counts.Set("models", Json(static_cast<uint64_t>(model_ids_.size())));
      counts.Set("edges", Json(static_cast<uint64_t>(edges_.size())));
      counts.Set("datasets",
                 Json(static_cast<uint64_t>(dataset_names_.size())));
      record.Set("counts", std::move(counts));
      stage_ = Stage::kModels;
      cursor_ = 0;
      break;
    }
    case Stage::kModels: {
      const std::string& id = model_ids_[cursor_++];
      record.Set("kind", std::string("model"));
      record.Set("id", id);
      // Catalog docs ship verbatim — the byte-identity anchor (the
      // replica re-put these exact bytes at apply time).
      if (auto doc = lake_->catalog_->GetDoc("model", id); doc.ok()) {
        record.Set("model", doc.MoveValueUnsafe());
      }
      if (auto doc = lake_->catalog_->GetDoc("card", id); doc.ok()) {
        record.Set("card", doc.MoveValueUnsafe());
      }
      record.Set("degraded", lake_->degraded_.count(id) > 0);
      break;
    }
    case Stage::kEdges: {
      const versioning::VersionEdge& e = edges_[cursor_++];
      record.Set("kind", std::string("edge"));
      record.Set("parent", e.parent);
      record.Set("child", e.child);
      record.Set("type", std::string(versioning::EdgeTypeToString(e.type)));
      record.Set("confidence", e.confidence);
      if (!e.params.is_null()) record.Set("params", e.params);
      break;
    }
    case Stage::kDatasets: {
      const std::string& name = dataset_names_[cursor_++];
      record.Set("kind", std::string("dataset"));
      record.Set("name", name);
      if (auto doc = lake_->catalog_->GetDoc("dataset", name); doc.ok()) {
        record.Set("doc", doc.MoveValueUnsafe());
      }
      break;
    }
    case Stage::kFooter: {
      record.Set("kind", std::string("footer"));
      record.Set("records",
                 Json(static_cast<uint64_t>(model_ids_.size() +
                                            edges_.size() +
                                            dataset_names_.size())));
      stage_ = Stage::kDone;
      break;
    }
    case Stage::kDone:
      return false;
  }
  *line = record.Dump();
  line->push_back('\n');
  ++records_emitted_;
  return true;
}

std::unique_ptr<ModelLake::ExportIterator> ModelLake::OpenExport() const {
  return std::unique_ptr<ExportIterator>(new ExportIterator(this));
}

}  // namespace mlake::core
