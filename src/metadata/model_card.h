#ifndef MLAKE_METADATA_MODEL_CARD_H_
#define MLAKE_METADATA_MODEL_CARD_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace mlake::metadata {

/// One reported evaluation number.
struct MetricEntry {
  std::string benchmark;  // e.g. "legal-sum/us-courts:test"
  std::string metric;     // e.g. "accuracy"
  double value = 0.0;

  friend bool operator==(const MetricEntry&, const MetricEntry&) = default;
};

/// The card's *claimed* derivation. Claims are documentation, not ground
/// truth — they can be absent or wrong, which is exactly the failure
/// mode (Liang et al. [80]) the lake's recovery tooling addresses.
struct LineageClaim {
  std::string base_model_id;  // empty => claims to be a base model
  std::string method;         // "finetune" | "lora" | "edit" | ...

  bool empty() const { return base_model_id.empty() && method.empty(); }
  friend bool operator==(const LineageClaim&, const LineageClaim&) = default;
};

/// A model card (Mitchell et al. [97]) extended with nutritional-label
/// style fields (risk notes) and lineage claims, serialized as a JSON
/// document in the catalog.
///
/// Only `model_id` is mandatory; every other field may be missing in the
/// wild. The completeness score quantifies how much is filled in.
struct ModelCard {
  std::string model_id;

  // Model details.
  std::string name;
  std::string description;
  std::string task;                 // task-family tag, e.g. "summarization"
  std::vector<std::string> tags;    // free keywords ("legal", "english")
  std::string architecture;         // arch signature string
  int64_t num_params = 0;

  // History (D, A) as documented.
  std::vector<std::string> training_datasets;  // "family/domain" names
  Json training_config;                        // hyperparameters
  LineageClaim lineage;

  // Quantitative analyses.
  std::vector<MetricEntry> metrics;

  // Provenance & governance.
  std::string creator;
  std::string license;
  std::string created_at;  // ISO-8601 date

  // Nutritional-label extensions.
  std::vector<std::string> intended_use;
  std::vector<std::string> risk_notes;

  Json ToJson() const;
  static Result<ModelCard> FromJson(const Json& j);

  /// All searchable text of the card, concatenated — the corpus document
  /// for keyword (BM25) search.
  std::string SearchText() const;

  friend bool operator==(const ModelCard&, const ModelCard&) = default;
};

/// Field-presence weights mirroring the section analysis of Liang et
/// al.: "important" sections (training data, metrics, intended use)
/// weigh more than boilerplate. Returns a score in [0, 1].
double CompletenessScore(const ModelCard& card);

/// Structural validation: returns a list of problems (empty = valid).
/// Checks id format, metric ranges, self-referential lineage, duplicate
/// datasets.
std::vector<std::string> ValidateCard(const ModelCard& card);

}  // namespace mlake::metadata

#endif  // MLAKE_METADATA_MODEL_CARD_H_
