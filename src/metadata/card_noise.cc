#include "metadata/card_noise.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace mlake::metadata {

ModelCard NoiseCard(const ModelCard& truth, const CardNoiseConfig& config,
                    const std::vector<std::string>& all_tasks, Rng* rng) {
  ModelCard card = truth;
  // Each field group is an independent redaction decision: real cards
  // tend to lose whole sections, not single words.
  if (rng->Bernoulli(config.redact_rate)) card.description.clear();
  if (rng->Bernoulli(config.redact_rate)) {
    card.task.clear();
    card.tags.clear();
  }
  if (rng->Bernoulli(config.redact_rate)) card.training_datasets.clear();
  if (rng->Bernoulli(config.redact_rate)) card.training_config = Json();
  if (rng->Bernoulli(config.redact_rate)) card.metrics.clear();
  if (rng->Bernoulli(config.redact_rate)) card.intended_use.clear();
  if (rng->Bernoulli(config.redact_rate)) card.risk_notes.clear();
  if (rng->Bernoulli(config.drop_lineage_rate)) card.lineage = {};
  if (rng->Bernoulli(config.obfuscate_name_rate)) {
    card.name = StrFormat(
        "model-%06llx",
        static_cast<unsigned long long>(Fnv1a64(truth.model_id) & 0xFFFFFF));
  }

  if (!card.task.empty() && !all_tasks.empty() &&
      rng->Bernoulli(config.wrong_task_rate)) {
    // Replace with a different task drawn uniformly.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::string& candidate =
          all_tasks[static_cast<size_t>(rng->NextBelow(all_tasks.size()))];
      if (candidate != truth.task) {
        card.task = candidate;
        break;
      }
    }
  }
  return card;
}

}  // namespace mlake::metadata
