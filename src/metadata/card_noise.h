#ifndef MLAKE_METADATA_CARD_NOISE_H_
#define MLAKE_METADATA_CARD_NOISE_H_

#include "common/random.h"
#include "metadata/model_card.h"

namespace mlake::metadata {

/// Parameters of the documentation-unreliability process used to turn a
/// fully-documented benchmark lake into a realistic one (Liang et al.
/// [80] report most public cards omit training data and evaluation).
struct CardNoiseConfig {
  /// Probability that each optional field group is removed.
  double redact_rate = 0.5;
  /// Probability that the task tag is replaced with an unrelated one
  /// (intentional or sloppy misdocumentation; cf. PoisonGPT [130]).
  double wrong_task_rate = 0.0;
  /// Probability that the lineage claim is dropped even when known.
  double drop_lineage_rate = 0.7;
  /// Probability that the human-readable name is replaced by an
  /// uninformative handle ("model-3fa9c1") — names on real hubs often
  /// carry no task signal, which is half of why keyword search fails.
  double obfuscate_name_rate = 0.0;
};

/// Applies the noise process; deterministic given `rng`. `all_tasks` is
/// the pool wrong tasks are drawn from.
ModelCard NoiseCard(const ModelCard& truth, const CardNoiseConfig& config,
                    const std::vector<std::string>& all_tasks, Rng* rng);

}  // namespace mlake::metadata

#endif  // MLAKE_METADATA_CARD_NOISE_H_
