#include "metadata/model_card.h"

#include <cmath>

#include "common/string_util.h"

namespace mlake::metadata {

namespace {

Json StringsToJson(const std::vector<std::string>& values) {
  Json arr = Json::MakeArray();
  for (const std::string& v : values) arr.Append(Json(v));
  return arr;
}

std::vector<std::string> JsonToStrings(const Json* j) {
  std::vector<std::string> out;
  if (j == nullptr || !j->is_array()) return out;
  for (const Json& v : j->AsArray()) {
    if (v.is_string()) out.push_back(v.AsString());
  }
  return out;
}

}  // namespace

Json ModelCard::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("model_id", model_id);
  j.Set("name", name);
  j.Set("description", description);
  j.Set("task", task);
  j.Set("tags", StringsToJson(tags));
  j.Set("architecture", architecture);
  j.Set("num_params", num_params);
  j.Set("training_datasets", StringsToJson(training_datasets));
  j.Set("training_config", training_config);
  Json lin = Json::MakeObject();
  lin.Set("base_model_id", lineage.base_model_id);
  lin.Set("method", lineage.method);
  j.Set("lineage", std::move(lin));
  Json ms = Json::MakeArray();
  for (const MetricEntry& m : metrics) {
    Json e = Json::MakeObject();
    e.Set("benchmark", m.benchmark);
    e.Set("metric", m.metric);
    e.Set("value", m.value);
    ms.Append(std::move(e));
  }
  j.Set("metrics", std::move(ms));
  j.Set("creator", creator);
  j.Set("license", license);
  j.Set("created_at", created_at);
  j.Set("intended_use", StringsToJson(intended_use));
  j.Set("risk_notes", StringsToJson(risk_notes));
  return j;
}

Result<ModelCard> ModelCard::FromJson(const Json& j) {
  if (!j.is_object()) return Status::Corruption("ModelCard: not an object");
  ModelCard card;
  card.model_id = j.GetString("model_id");
  if (card.model_id.empty()) {
    return Status::Corruption("ModelCard: missing model_id");
  }
  card.name = j.GetString("name");
  card.description = j.GetString("description");
  card.task = j.GetString("task");
  card.tags = JsonToStrings(j.Find("tags"));
  card.architecture = j.GetString("architecture");
  card.num_params = j.GetInt64("num_params");
  card.training_datasets = JsonToStrings(j.Find("training_datasets"));
  if (const Json* tc = j.Find("training_config"); tc != nullptr) {
    card.training_config = *tc;
  }
  if (const Json* lin = j.Find("lineage");
      lin != nullptr && lin->is_object()) {
    card.lineage.base_model_id = lin->GetString("base_model_id");
    card.lineage.method = lin->GetString("method");
  }
  if (const Json* ms = j.Find("metrics"); ms != nullptr && ms->is_array()) {
    for (const Json& e : ms->AsArray()) {
      if (!e.is_object()) continue;
      MetricEntry m;
      m.benchmark = e.GetString("benchmark");
      m.metric = e.GetString("metric");
      m.value = e.GetDouble("value");
      card.metrics.push_back(std::move(m));
    }
  }
  card.creator = j.GetString("creator");
  card.license = j.GetString("license");
  card.created_at = j.GetString("created_at");
  card.intended_use = JsonToStrings(j.Find("intended_use"));
  card.risk_notes = JsonToStrings(j.Find("risk_notes"));
  return card;
}

std::string ModelCard::SearchText() const {
  std::vector<std::string> parts;
  parts.push_back(name);
  parts.push_back(description);
  parts.push_back(task);
  for (const std::string& t : tags) parts.push_back(t);
  parts.push_back(architecture);
  for (const std::string& d : training_datasets) parts.push_back(d);
  for (const std::string& u : intended_use) parts.push_back(u);
  for (const std::string& r : risk_notes) parts.push_back(r);
  return Join(parts, " ");
}

double CompletenessScore(const ModelCard& card) {
  double score = 0.0;
  double total = 0.0;
  auto add = [&](bool present, double weight) {
    total += weight;
    if (present) score += weight;
  };
  add(!card.name.empty(), 0.5);
  add(!card.description.empty(), 1.0);
  add(!card.task.empty(), 1.5);
  add(!card.tags.empty(), 1.0);
  add(!card.architecture.empty(), 0.5);
  add(card.num_params > 0, 0.5);
  add(!card.training_datasets.empty(), 2.0);  // the gap Liang et al. flag
  add(!card.training_config.is_null() && card.training_config.size() > 0,
      1.0);
  add(!card.lineage.empty(), 1.0);
  add(!card.metrics.empty(), 1.5);
  add(!card.creator.empty(), 0.25);
  add(!card.license.empty(), 0.25);
  add(!card.intended_use.empty(), 1.0);
  add(!card.risk_notes.empty(), 1.0);
  return score / total;
}

std::vector<std::string> ValidateCard(const ModelCard& card) {
  std::vector<std::string> problems;
  if (card.model_id.empty()) {
    problems.push_back("model_id is required");
  }
  for (char c : card.model_id) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
          c == '_' || c == '.' || c == '/')) {
      problems.push_back("model_id contains invalid character");
      break;
    }
  }
  if (card.lineage.base_model_id == card.model_id &&
      !card.model_id.empty()) {
    problems.push_back("lineage is self-referential");
  }
  if (!card.lineage.base_model_id.empty() && card.lineage.method.empty()) {
    problems.push_back("lineage claims a base model but no method");
  }
  for (const MetricEntry& m : card.metrics) {
    if (m.benchmark.empty() || m.metric.empty()) {
      problems.push_back("metric entry missing benchmark or metric name");
    }
    if (!std::isfinite(m.value)) {
      problems.push_back("metric value is not finite");
    }
    if (m.metric == "accuracy" && (m.value < 0.0 || m.value > 1.0)) {
      problems.push_back("accuracy out of [0, 1]: " + m.benchmark);
    }
  }
  for (size_t i = 0; i < card.training_datasets.size(); ++i) {
    for (size_t k = i + 1; k < card.training_datasets.size(); ++k) {
      if (card.training_datasets[i] == card.training_datasets[k]) {
        problems.push_back("duplicate training dataset: " +
                           card.training_datasets[i]);
      }
    }
  }
  if (card.num_params < 0) problems.push_back("negative num_params");
  return problems;
}

}  // namespace mlake::metadata
