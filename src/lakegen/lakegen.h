#ifndef MLAKE_LAKEGEN_LAKEGEN_H_
#define MLAKE_LAKEGEN_LAKEGEN_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_lake.h"
#include "metadata/card_noise.h"
#include "nn/dataset.h"
#include "nn/trainer.h"
#include "versioning/model_graph.h"

namespace mlake::lakegen {

/// Configuration of the synthetic benchmark-lake generator.
///
/// This is the "benchmark lake with verified ground truth" the paper's
/// §3 calls for: a population of trained models with fully known tasks,
/// training data, and lineage — plus a configurable documentation-noise
/// process that degrades the cards the lake actually sees, mimicking the
/// incompleteness measured by Liang et al. [80].
struct LakeGenConfig {
  /// Task structure: families x domains (a dataset per pair).
  size_t num_families = 4;
  size_t domains_per_family = 2;

  /// Base (root) models: assigned round-robin over (family, domain).
  size_t num_bases = 8;

  /// Derived models per base, uniform in [min, max].
  size_t children_per_base_min = 2;
  size_t children_per_base_max = 4;
  /// Probability a child is derived from a previous child of the same
  /// base instead of the base itself (depth-2 chains).
  double grandchild_rate = 0.3;

  /// Shared lake io space (must match the lake's options).
  int64_t input_dim = 32;
  int64_t num_classes = 8;

  /// Per-dataset sample counts.
  size_t train_samples = 384;
  size_t test_samples = 192;

  nn::TrainConfig base_train;      // base pre-training
  nn::TrainConfig finetune_train;  // child adaptations

  /// Documentation noise applied to every ingested card.
  bool noise_cards = true;
  metadata::CardNoiseConfig card_noise;

  /// Record ground-truth lineage into the lake's version graph (turn
  /// off for heritage-recovery experiments, which must not see it).
  bool record_lineage_in_lake = true;

  /// Register each dataset's held-out split as a lake benchmark.
  bool register_benchmarks = true;

  uint64_t seed = 7;

  LakeGenConfig() {
    base_train.epochs = 14;
    base_train.batch_size = 32;
    base_train.lr = 4e-3f;
    finetune_train = base_train;
    finetune_train.epochs = 8;
  }
};

/// Ground truth for one generated model.
struct GeneratedModel {
  std::string id;
  std::string task_family;     // semantic task ("summarization", ...)
  std::string dataset;         // "family/domain" it was (last) trained on
  std::string parent;          // empty for bases
  versioning::EdgeType edge = versioning::EdgeType::kUnknown;
  double test_accuracy = 0.0;
};

/// Everything the experiments need that the lake must NOT be trusted
/// for: true lineage, true tasks, held-out evaluation splits.
struct LakeGenResult {
  versioning::ModelGraph truth_graph;
  std::vector<GeneratedModel> models;
  /// Held-out test split per dataset name.
  std::map<std::string, nn::Dataset> test_sets;
  std::vector<std::string> families;
  std::vector<std::string> datasets;  // "family/domain"
  /// The pristine (pre-noise) card of every model.
  std::map<std::string, metadata::ModelCard> truth_cards;
};

/// Populates `lake` with a synthetic model population. Deterministic
/// given config.seed at ANY thread count: every random draw happens in
/// a sequential planning pass (forked rngs are captured per task), then
/// base subtrees — train the base, derive its child chain — execute in
/// parallel on lake->options().exec, and the finished population is
/// ingested as one ordered batch.
Result<LakeGenResult> GenerateLake(core::ModelLake* lake,
                                   const LakeGenConfig& config);

/// Configuration of the *streaming* generator — the million-model scale
/// path. Where GenerateLake trains real checkpoints (O(minutes) per
/// thousand models), the streaming generator emits metadata-only models
/// (card + embedding, no artifact) in fixed-size chunks through
/// ModelLake::IngestCards, so peak memory is O(batch_size) and total
/// work is O(num_models) regardless of lake size.
struct StreamGenConfig {
  size_t num_models = 10000;
  /// Models per IngestCards batch (bounds peak memory).
  size_t batch_size = 1024;

  /// Task structure, drawn from the same pools as GenerateLake.
  size_t num_families = 8;
  size_t domains_per_family = 2;

  /// Embeddings are unit vectors clustered around one deterministic
  /// centroid per family; this scales the isotropic noise around it.
  double embedding_noise = 0.25;

  /// Register each (family, domain) dataset for overlap search.
  bool register_datasets = true;

  uint64_t seed = 11;
};

/// Counts and names of what the streaming generator produced.
struct StreamGenResult {
  size_t num_models = 0;
  std::vector<std::string> families;
  std::vector<std::string> datasets;  // "family/domain"
};

/// Streams `config.num_models` synthetic metadata-only models into
/// `lake`. Deterministic given config.seed at ANY thread count, by the
/// same plan-then-execute discipline as GenerateLake: each chunk's
/// randomness (family/domain assignment, per-model forked rngs) is
/// drawn sequentially in global model order, then cards and embeddings
/// are computed in parallel on lake->options().exec, then the chunk is
/// ingested as one ordered IngestCards batch.
Result<StreamGenResult> GenerateStreamingLake(core::ModelLake* lake,
                                              const StreamGenConfig& config);

/// The fixed pools the generator draws from (exposed for tests).
const std::vector<std::string>& TaskFamilyPool();
const std::vector<std::string>& DomainPool();

}  // namespace mlake::lakegen

#endif  // MLAKE_LAKEGEN_LAKEGEN_H_
