#include "lakegen/lakegen.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "nn/transform.h"

namespace mlake::lakegen {

const std::vector<std::string>& TaskFamilyPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "summarization", "translation", "sentiment",  "entity-tagging",
      "question-answering", "paraphrase", "moderation", "retrieval"};
  return *pool;
}

const std::vector<std::string>& DomainPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "legal", "medical", "news", "finance", "social", "scientific"};
  return *pool;
}

namespace {

const std::vector<std::string>& CreatorPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "ada-labs", "bellwether-ai", "cortexworks", "deltaml", "everglade"};
  return *pool;
}

const std::vector<std::string>& LicensePool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "apache-2.0", "mit", "cc-by-4.0", "openrail"};
  return *pool;
}

/// Architecture pool: small but genuinely heterogeneous (two MLP shapes,
/// a deeper layer-normed MLP, and an attention encoder).
std::vector<nn::ArchSpec> ArchPool(int64_t input_dim, int64_t num_classes) {
  std::vector<nn::ArchSpec> pool;
  pool.push_back(nn::MlpSpec(input_dim, {48}, num_classes, "relu"));
  pool.push_back(nn::MlpSpec(input_dim, {64}, num_classes, "gelu"));
  pool.push_back(nn::MlpSpec(input_dim, {48, 32}, num_classes, "relu",
                             /*layer_norm=*/true));
  pool.push_back(nn::ResMlpSpec(input_dim, 32, /*num_blocks=*/2,
                                num_classes));
  if (input_dim % 8 == 0) {
    pool.push_back(nn::AttnSpec(input_dim / 8, 8, num_classes));
  }
  return pool;
}

/// Shard universe: each family has shared core shards; each domain adds
/// its own. Sibling domains of one family therefore overlap (Jaccard
/// ~0.33), while datasets of different families are disjoint — the
/// structure "find models trained on versions of this dataset" needs.
std::vector<std::string> DatasetShardSet(const std::string& family,
                                         const std::string& domain) {
  std::vector<std::string> shards;
  for (int i = 0; i < 8; ++i) {
    shards.push_back(StrFormat("%s/core#%d", family.c_str(), i));
  }
  for (int i = 0; i < 8; ++i) {
    shards.push_back(
        StrFormat("%s/%s#%d", family.c_str(), domain.c_str(), i));
  }
  return shards;
}

metadata::ModelCard MakeTruthCard(const std::string& id,
                                  const std::string& family,
                                  const std::string& domain,
                                  const nn::Model& model,
                                  const nn::TrainConfig& train_config,
                                  double test_accuracy,
                                  const std::string& parent,
                                  versioning::EdgeType edge, Rng* rng) {
  metadata::ModelCard card;
  card.model_id = id;
  card.name = id;
  std::string dataset = family + "/" + domain;
  card.description = StrFormat(
      "A %s model for %s over %s text, trained on the %s corpus.",
      model.spec().family.c_str(), family.c_str(), domain.c_str(),
      dataset.c_str());
  card.task = family;
  card.tags = {domain, model.spec().family};
  card.architecture = model.spec().Signature();
  card.num_params = model.NumParams();
  card.training_datasets = {dataset};
  card.training_config = train_config.ToJson();
  if (!parent.empty()) {
    card.lineage.base_model_id = parent;
    card.lineage.method = std::string(versioning::EdgeTypeToString(edge));
  }
  card.metrics.push_back(metadata::MetricEntry{dataset + ":test", "accuracy",
                                               test_accuracy});
  card.creator = CreatorPool()[static_cast<size_t>(
      rng->NextBelow(CreatorPool().size()))];
  card.license = LicensePool()[static_cast<size_t>(
      rng->NextBelow(LicensePool().size()))];
  card.created_at = StrFormat("2025-%02d-%02d",
                              static_cast<int>(rng->UniformInt(1, 12)),
                              static_cast<int>(rng->UniformInt(1, 28)));
  card.intended_use = {StrFormat("%s of %s documents", family.c_str(),
                                 domain.c_str())};
  card.risk_notes = {StrFormat("trained only on synthetic %s data", domain.c_str())};
  return card;
}

struct TaskEntry {
  std::string family;
  std::string domain;
  std::string dataset;
  nn::SyntheticTask task;
  nn::Dataset train;
};

/// Everything one derived model needs, decided before any training runs.
/// `parent_chain_pos` indexes the owning base's local chain (0 = the
/// base itself), so a subtree never reaches outside its own task.
struct ChildPlan {
  size_t parent_chain_pos = 0;
  size_t task_index = 0;
  uint64_t train_seed = 0;
  size_t kind = 0;  // index into the transformation mix
  versioning::EdgeType edge = versioning::EdgeType::kFinetune;
  std::string id;
  Json edge_params;
  // Per-kind planned randomness.
  int64_t lora_rank = 2;
  Rng probe_rng{0};
  int64_t edit_target = 0;
  double prune_fraction = 0.0;
  Rng weight_noise_rng{0};
  Rng student_rng{0};
  // Card randomness.
  Rng card_rng{0};
  Rng noise_rng{0};
};

/// One base subtree = one parallel task.
struct BasePlan {
  size_t task_index = 0;
  nn::ArchSpec arch;
  Rng init_rng{0};
  uint64_t train_seed = 0;
  std::string id;
  Rng card_rng{0};
  Rng noise_rng{0};
  std::vector<ChildPlan> children;
};

/// A trained model plus everything the ingest/bookkeeping phase needs.
struct BuiltModel {
  std::string id;
  size_t task_index = 0;
  std::string parent;  // empty for bases
  versioning::EdgeType edge = versioning::EdgeType::kUnknown;
  Json edge_params;
  double accuracy = 0.0;
  metadata::ModelCard truth_card;
  metadata::ModelCard visible_card;
  std::unique_ptr<nn::Model> model;
};

}  // namespace

Result<LakeGenResult> GenerateLake(core::ModelLake* lake,
                                   const LakeGenConfig& config) {
  if (config.num_families == 0 || config.num_bases == 0) {
    return Status::InvalidArgument("GenerateLake: empty config");
  }
  if (config.num_families > TaskFamilyPool().size() ||
      config.domains_per_family > DomainPool().size()) {
    return Status::InvalidArgument("GenerateLake: pools too small");
  }
  if (config.input_dim != lake->options().input_dim ||
      config.num_classes != lake->options().num_classes) {
    return Status::InvalidArgument(
        "GenerateLake: io dims do not match the lake");
  }

  Rng rng(config.seed);
  LakeGenResult result;

  // ----- tasks & datasets (sequential: rng-ordered data sampling) -----
  std::vector<TaskEntry> tasks;
  for (size_t f = 0; f < config.num_families; ++f) {
    const std::string& family = TaskFamilyPool()[f];
    result.families.push_back(family);
    for (size_t d = 0; d < config.domains_per_family; ++d) {
      const std::string& domain = DomainPool()[d];
      nn::TaskSpec spec;
      spec.family_id = family;
      spec.domain_id = domain;
      spec.dim = config.input_dim;
      spec.num_classes = config.num_classes;
      TaskEntry entry;
      entry.family = family;
      entry.domain = domain;
      entry.dataset = spec.DatasetName();
      entry.task = nn::SyntheticTask::Make(spec);
      Rng data_rng = rng.Fork();
      entry.train = entry.task.Sample(config.train_samples, &data_rng);
      nn::Dataset test = entry.task.Sample(config.test_samples, &data_rng);

      MLAKE_RETURN_NOT_OK(lake->RegisterDataset(
          entry.dataset, DatasetShardSet(family, domain)));
      if (config.register_benchmarks) {
        MLAKE_RETURN_NOT_OK(
            lake->RegisterBenchmark(entry.dataset + ":test", test));
      }
      result.test_sets[entry.dataset] = std::move(test);
      result.datasets.push_back(entry.dataset);
      tasks.push_back(std::move(entry));
    }
  }

  std::vector<nn::ArchSpec> arch_pool =
      ArchPool(config.input_dim, config.num_classes);

  // ----- planning (sequential: the ONLY place the seed rng is drawn
  // from, so the plan — ids, architectures, transformation mix, forked
  // task rngs — is a pure function of config.seed, independent of how
  // many threads later execute it) -----
  std::vector<BasePlan> plans(config.num_bases);
  for (size_t b = 0; b < config.num_bases; ++b) {
    BasePlan& plan = plans[b];
    plan.task_index = b % tasks.size();
    const TaskEntry& task = tasks[plan.task_index];
    plan.arch =
        arch_pool[static_cast<size_t>(rng.NextBelow(arch_pool.size()))];
    plan.init_rng = rng.Fork();
    plan.train_seed = rng.NextU64();
    plan.id = StrFormat("%s/%s-%s-base-%zu", task.family.c_str(),
                        task.domain.c_str(), plan.arch.family.c_str(), b);
    plan.card_rng = rng.Fork();
    if (config.noise_cards) plan.noise_rng = rng.Fork();
  }
  for (size_t b = 0; b < config.num_bases; ++b) {
    BasePlan& plan = plans[b];
    size_t num_children = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.children_per_base_min),
                       static_cast<int64_t>(config.children_per_base_max)));
    // Chain positions: 0 is the base; child c lands at position c + 1.
    std::vector<std::string> chain_ids{plan.id};
    std::vector<size_t> chain_tasks{plan.task_index};
    for (size_t c = 0; c < num_children; ++c) {
      ChildPlan child;
      child.parent_chain_pos = 0;
      if (chain_ids.size() > 1 && rng.Bernoulli(config.grandchild_rate)) {
        child.parent_chain_pos = static_cast<size_t>(
            rng.NextBelow(chain_ids.size() - 1) + 1);
      }
      size_t parent_task_index = chain_tasks[child.parent_chain_pos];
      const TaskEntry& parent_task = tasks[parent_task_index];

      // Pick the child's training task: usually a sibling domain of the
      // same family (the classic "domain adaptation" fine-tune).
      child.task_index = parent_task_index;
      std::vector<size_t> siblings;
      for (size_t t = 0; t < tasks.size(); ++t) {
        if (tasks[t].family == parent_task.family &&
            t != parent_task_index) {
          siblings.push_back(t);
        }
      }
      if (!siblings.empty() && rng.Bernoulli(0.6)) {
        child.task_index = siblings[static_cast<size_t>(
            rng.NextBelow(siblings.size()))];
      }

      child.train_seed = rng.NextU64();
      child.edge_params = Json::MakeObject();
      child.edge_params.Set("dataset", tasks[child.task_index].dataset);

      // Transformation mix.
      child.kind = rng.Categorical({0.34, 0.22, 0.12, 0.12, 0.10, 0.10});
      std::string suffix;
      switch (child.kind) {
        case 0:  // full fine-tune
          child.edge = versioning::EdgeType::kFinetune;
          suffix = "ft";
          break;
        case 1:  // LoRA
          child.lora_rank = rng.Bernoulli(0.5) ? 2 : 4;
          child.edge_params.Set("rank", child.lora_rank);
          child.edge = versioning::EdgeType::kLora;
          suffix = "lora";
          break;
        case 2:  // model edit
          child.probe_rng = rng.Fork();
          child.edit_target = static_cast<int64_t>(
              rng.NextBelow(static_cast<uint64_t>(config.num_classes)));
          child.edge_params.Set("target_class", child.edit_target);
          child.edge = versioning::EdgeType::kEdit;
          suffix = "edit";
          break;
        case 3:  // pruning
          child.prune_fraction = rng.Uniform(0.15, 0.4);
          child.edge_params.Set("fraction", child.prune_fraction);
          child.edge = versioning::EdgeType::kPrune;
          suffix = "prune";
          break;
        case 4:  // weight noise ("someone else's continued training")
          child.weight_noise_rng = rng.Fork();
          child.edge = versioning::EdgeType::kNoise;
          suffix = "noise";
          break;
        case 5:  // distillation into a fresh same-spec student
          child.student_rng = rng.Fork();
          child.edge = versioning::EdgeType::kDistill;
          suffix = "distill";
          break;
        default:
          break;
      }
      child.id = StrFormat("%s-%s%zu",
                           chain_ids[child.parent_chain_pos].c_str(),
                           suffix.c_str(), c);
      child.card_rng = rng.Fork();
      if (config.noise_cards) child.noise_rng = rng.Fork();

      chain_ids.push_back(child.id);
      chain_tasks.push_back(child.task_index);
      plan.children.push_back(std::move(child));
    }
  }

  // ----- execution (parallel: one task per base subtree; tasks touch
  // only their own plan, their own output slot, and read-only shared
  // task data) -----
  auto evaluate = [&result](nn::Model* model,
                            const std::string& dataset) -> double {
    auto it = result.test_sets.find(dataset);
    if (it == result.test_sets.end()) return 0.0;
    return nn::EvaluateAccuracy(model, it->second);
  };
  auto make_cards = [&config, &result, &tasks](
                        BuiltModel* out, const nn::TrainConfig& tc,
                        Rng card_rng, Rng noise_rng) {
    const TaskEntry& task = tasks[out->task_index];
    out->truth_card =
        MakeTruthCard(out->id, task.family, task.domain, *out->model, tc,
                      out->accuracy, out->parent, out->edge, &card_rng);
    out->visible_card = out->truth_card;
    if (config.noise_cards) {
      out->visible_card = metadata::NoiseCard(
          out->truth_card, config.card_noise, result.families, &noise_rng);
    }
  };

  std::vector<std::vector<BuiltModel>> built(plans.size());
  MLAKE_RETURN_NOT_OK(ParallelFor(
      lake->options().exec, 0, plans.size(), [&](size_t b) -> Status {
        const BasePlan& plan = plans[b];
        std::vector<BuiltModel>& chain = built[b];

        // Base.
        BuiltModel base;
        base.id = plan.id;
        base.task_index = plan.task_index;
        base.edge_params = Json::MakeObject();
        Rng init_rng = plan.init_rng;
        MLAKE_ASSIGN_OR_RETURN(base.model,
                               nn::BuildModel(plan.arch, &init_rng));
        nn::TrainConfig tc = config.base_train;
        tc.seed = plan.train_seed;
        MLAKE_RETURN_NOT_OK(
            nn::Train(base.model.get(), tasks[plan.task_index].train, tc)
                .status());
        base.accuracy =
            evaluate(base.model.get(), tasks[plan.task_index].dataset);
        make_cards(&base, tc, plan.card_rng, plan.noise_rng);
        chain.push_back(std::move(base));

        // Children, in chain order (each may derive from an earlier
        // chain entry).
        for (const ChildPlan& cp : plan.children) {
          BuiltModel out;
          out.id = cp.id;
          out.task_index = cp.task_index;
          out.parent = chain[cp.parent_chain_pos].id;
          out.edge = cp.edge;
          out.edge_params = cp.edge_params;
          nn::Model* parent_model = chain[cp.parent_chain_pos].model.get();
          out.model = parent_model->Clone();

          const TaskEntry& task = tasks[cp.task_index];
          nn::TrainConfig ft = config.finetune_train;
          ft.seed = cp.train_seed;
          switch (cp.kind) {
            case 0: {
              MLAKE_RETURN_NOT_OK(
                  nn::Finetune(out.model.get(), task.train, ft).status());
              break;
            }
            case 1: {
              MLAKE_RETURN_NOT_OK(nn::LoraFinetune(out.model.get(),
                                                   task.train, cp.lora_rank,
                                                   1.0f, ft)
                                      .status());
              break;
            }
            case 2: {
              Rng probe_rng = cp.probe_rng;
              Tensor probe = Tensor::RandomNormal({1, config.input_dim},
                                                  &probe_rng, 1.2f);
              MLAKE_RETURN_NOT_OK(nn::RankOneEdit(out.model.get(), probe,
                                                  cp.edit_target, 6.0f)
                                      .status());
              break;
            }
            case 3: {
              MLAKE_RETURN_NOT_OK(
                  nn::MagnitudePrune(out.model.get(), cp.prune_fraction)
                      .status());
              break;
            }
            case 4: {
              Rng noise_rng = cp.weight_noise_rng;
              nn::AddWeightNoise(out.model.get(), 0.05, &noise_rng);
              break;
            }
            case 5: {
              Rng student_rng = cp.student_rng;
              auto student =
                  nn::Distill(parent_model, parent_model->spec(),
                              task.train.x, 2.0f, ft, &student_rng);
              MLAKE_RETURN_NOT_OK(student.status());
              out.model = student.MoveValueUnsafe();
              break;
            }
            default:
              break;
          }
          out.accuracy = evaluate(out.model.get(), task.dataset);
          make_cards(&out, ft, cp.card_rng, cp.noise_rng);
          chain.push_back(std::move(out));
        }
        return Status::OK();
      }));

  // ----- ingest & bookkeeping (sequential, plan order: one batched
  // ingest, then ground-truth recording) -----
  std::vector<core::IngestRequest> batch;
  for (const std::vector<BuiltModel>& chain : built) {
    for (const BuiltModel& m : chain) {
      core::IngestRequest request;
      request.model = m.model.get();
      request.card = m.visible_card;
      batch.push_back(std::move(request));
    }
  }
  MLAKE_RETURN_NOT_OK(lake->IngestModels(batch).status());

  for (const std::vector<BuiltModel>& chain : built) {
    for (const BuiltModel& m : chain) {
      result.truth_cards[m.id] = m.truth_card;
      result.truth_graph.AddModel(m.id);
      GeneratedModel gen;
      gen.id = m.id;
      gen.task_family = tasks[m.task_index].family;
      gen.dataset = tasks[m.task_index].dataset;
      gen.parent = m.parent;
      gen.edge = m.edge;
      gen.test_accuracy = m.accuracy;
      result.models.push_back(gen);
      if (!m.parent.empty()) {
        versioning::VersionEdge truth_edge;
        truth_edge.parent = m.parent;
        truth_edge.child = m.id;
        truth_edge.type = m.edge;
        truth_edge.params = m.edge_params;
        MLAKE_RETURN_NOT_OK(result.truth_graph.AddEdge(truth_edge));
        if (config.record_lineage_in_lake) {
          MLAKE_RETURN_NOT_OK(lake->RecordEdge(truth_edge));
        }
      }
    }
  }

  return result;
}

Result<StreamGenResult> GenerateStreamingLake(core::ModelLake* lake,
                                              const StreamGenConfig& config) {
  if (config.num_models == 0 || config.batch_size == 0 ||
      config.num_families == 0 || config.domains_per_family == 0) {
    return Status::InvalidArgument("GenerateStreamingLake: empty config");
  }
  if (config.num_families > TaskFamilyPool().size() ||
      config.domains_per_family > DomainPool().size()) {
    return Status::InvalidArgument("GenerateStreamingLake: pools too small");
  }
  const int64_t dim = lake->EmbeddingDim();
  Rng rng(config.seed);
  StreamGenResult result;

  // Families, datasets, and one deterministic unit centroid per family
  // (the embedding space's cluster structure — nearest-neighbor search
  // over the generated lake recovers the family grouping).
  std::vector<std::vector<float>> centroids(config.num_families);
  for (size_t f = 0; f < config.num_families; ++f) {
    const std::string& family = TaskFamilyPool()[f];
    result.families.push_back(family);
    Rng centroid_rng = rng.Fork();
    std::vector<float>& c = centroids[f];
    c.resize(static_cast<size_t>(dim));
    double norm_sq = 0.0;
    for (float& x : c) {
      x = static_cast<float>(centroid_rng.Normal());
      norm_sq += static_cast<double>(x) * x;
    }
    const float inv = norm_sq > 0.0
                          ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                          : 0.0f;
    for (float& x : c) x *= inv;
    for (size_t d = 0; d < config.domains_per_family; ++d) {
      const std::string& domain = DomainPool()[d];
      result.datasets.push_back(family + "/" + domain);
      if (config.register_datasets) {
        MLAKE_RETURN_NOT_OK(lake->RegisterDataset(
            family + "/" + domain, DatasetShardSet(family, domain)));
      }
    }
  }

  // Chunked plan-then-execute. The master rng is consumed sequentially
  // in global model order (chunking never moves a draw), each model
  // carries its own forked rng, and the parallel phase writes only its
  // own batch slot — so the lake is byte-identical at any thread count.
  struct ModelPlan {
    size_t family = 0;
    size_t domain = 0;
    Rng rng{0};
  };
  size_t next = 0;
  while (next < config.num_models) {
    const size_t n = std::min(config.batch_size, config.num_models - next);
    std::vector<ModelPlan> plans(n);
    for (size_t i = 0; i < n; ++i) {
      plans[i].family =
          static_cast<size_t>(rng.NextBelow(config.num_families));
      plans[i].domain =
          static_cast<size_t>(rng.NextBelow(config.domains_per_family));
      plans[i].rng = rng.Fork();
    }
    std::vector<core::CardIngest> batch(n);
    MLAKE_RETURN_NOT_OK(ParallelFor(
        lake->options().exec, 0, n, [&](size_t i) -> Status {
          ModelPlan plan = plans[i];
          const std::string& family = TaskFamilyPool()[plan.family];
          const std::string& domain = DomainPool()[plan.domain];
          const std::string dataset = family + "/" + domain;

          metadata::ModelCard card;
          card.model_id = StrFormat("syn/%s-%s-%07zu", family.c_str(),
                                    domain.c_str(), next + i);
          card.name = card.model_id;
          card.task = family;
          card.tags = {domain};
          card.description =
              StrFormat("Synthetic %s model for %s text (streaming lakegen).",
                        family.c_str(), domain.c_str());
          card.training_datasets = {dataset};
          card.creator = CreatorPool()[static_cast<size_t>(
              plan.rng.NextBelow(CreatorPool().size()))];
          card.license = LicensePool()[static_cast<size_t>(
              plan.rng.NextBelow(LicensePool().size()))];

          std::vector<float> vec(centroids[plan.family]);
          double norm_sq = 0.0;
          for (float& x : vec) {
            x += static_cast<float>(config.embedding_noise *
                                    plan.rng.Normal());
            norm_sq += static_cast<double>(x) * x;
          }
          const float inv = norm_sq > 0.0
                                ? static_cast<float>(1.0 / std::sqrt(norm_sq))
                                : 0.0f;
          for (float& x : vec) x *= inv;

          batch[i].card = std::move(card);
          batch[i].embedding = std::move(vec);
          return Status::OK();
        }));
    MLAKE_RETURN_NOT_OK(lake->IngestCards(batch).status());
    next += n;
  }
  result.num_models = config.num_models;
  return result;
}

}  // namespace mlake::lakegen
