#include "lakegen/lakegen.h"

#include <algorithm>

#include "common/string_util.h"
#include "nn/transform.h"

namespace mlake::lakegen {

const std::vector<std::string>& TaskFamilyPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "summarization", "translation", "sentiment",  "entity-tagging",
      "question-answering", "paraphrase", "moderation", "retrieval"};
  return *pool;
}

const std::vector<std::string>& DomainPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "legal", "medical", "news", "finance", "social", "scientific"};
  return *pool;
}

namespace {

const std::vector<std::string>& CreatorPool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "ada-labs", "bellwether-ai", "cortexworks", "deltaml", "everglade"};
  return *pool;
}

const std::vector<std::string>& LicensePool() {
  static const std::vector<std::string>* pool = new std::vector<std::string>{
      "apache-2.0", "mit", "cc-by-4.0", "openrail"};
  return *pool;
}

/// Architecture pool: small but genuinely heterogeneous (two MLP shapes,
/// a deeper layer-normed MLP, and an attention encoder).
std::vector<nn::ArchSpec> ArchPool(int64_t input_dim, int64_t num_classes) {
  std::vector<nn::ArchSpec> pool;
  pool.push_back(nn::MlpSpec(input_dim, {48}, num_classes, "relu"));
  pool.push_back(nn::MlpSpec(input_dim, {64}, num_classes, "gelu"));
  pool.push_back(nn::MlpSpec(input_dim, {48, 32}, num_classes, "relu",
                             /*layer_norm=*/true));
  pool.push_back(nn::ResMlpSpec(input_dim, 32, /*num_blocks=*/2,
                                num_classes));
  if (input_dim % 8 == 0) {
    pool.push_back(nn::AttnSpec(input_dim / 8, 8, num_classes));
  }
  return pool;
}

/// Shard universe: each family has shared core shards; each domain adds
/// its own. Sibling domains of one family therefore overlap (Jaccard
/// ~0.33), while datasets of different families are disjoint — the
/// structure "find models trained on versions of this dataset" needs.
std::vector<std::string> DatasetShardSet(const std::string& family,
                                         const std::string& domain) {
  std::vector<std::string> shards;
  for (int i = 0; i < 8; ++i) {
    shards.push_back(StrFormat("%s/core#%d", family.c_str(), i));
  }
  for (int i = 0; i < 8; ++i) {
    shards.push_back(
        StrFormat("%s/%s#%d", family.c_str(), domain.c_str(), i));
  }
  return shards;
}

metadata::ModelCard MakeTruthCard(const std::string& id,
                                  const std::string& family,
                                  const std::string& domain,
                                  const nn::Model& model,
                                  const nn::TrainConfig& train_config,
                                  double test_accuracy,
                                  const std::string& parent,
                                  versioning::EdgeType edge, Rng* rng) {
  metadata::ModelCard card;
  card.model_id = id;
  card.name = id;
  std::string dataset = family + "/" + domain;
  card.description = StrFormat(
      "A %s model for %s over %s text, trained on the %s corpus.",
      model.spec().family.c_str(), family.c_str(), domain.c_str(),
      dataset.c_str());
  card.task = family;
  card.tags = {domain, model.spec().family};
  card.architecture = model.spec().Signature();
  card.num_params = model.NumParams();
  card.training_datasets = {dataset};
  card.training_config = train_config.ToJson();
  if (!parent.empty()) {
    card.lineage.base_model_id = parent;
    card.lineage.method = std::string(versioning::EdgeTypeToString(edge));
  }
  card.metrics.push_back(metadata::MetricEntry{dataset + ":test", "accuracy",
                                               test_accuracy});
  card.creator = CreatorPool()[static_cast<size_t>(
      rng->NextBelow(CreatorPool().size()))];
  card.license = LicensePool()[static_cast<size_t>(
      rng->NextBelow(LicensePool().size()))];
  card.created_at = StrFormat("2025-%02d-%02d",
                              static_cast<int>(rng->UniformInt(1, 12)),
                              static_cast<int>(rng->UniformInt(1, 28)));
  card.intended_use = {StrFormat("%s of %s documents", family.c_str(),
                                 domain.c_str())};
  card.risk_notes = {StrFormat("trained only on synthetic %s data", domain.c_str())};
  return card;
}

}  // namespace

Result<LakeGenResult> GenerateLake(core::ModelLake* lake,
                                   const LakeGenConfig& config) {
  if (config.num_families == 0 || config.num_bases == 0) {
    return Status::InvalidArgument("GenerateLake: empty config");
  }
  if (config.num_families > TaskFamilyPool().size() ||
      config.domains_per_family > DomainPool().size()) {
    return Status::InvalidArgument("GenerateLake: pools too small");
  }
  if (config.input_dim != lake->options().input_dim ||
      config.num_classes != lake->options().num_classes) {
    return Status::InvalidArgument(
        "GenerateLake: io dims do not match the lake");
  }

  Rng rng(config.seed);
  LakeGenResult result;

  // ----- tasks & datasets -----
  struct TaskEntry {
    std::string family;
    std::string domain;
    std::string dataset;
    nn::SyntheticTask task;
    nn::Dataset train;
  };
  std::vector<TaskEntry> tasks;
  for (size_t f = 0; f < config.num_families; ++f) {
    const std::string& family = TaskFamilyPool()[f];
    result.families.push_back(family);
    for (size_t d = 0; d < config.domains_per_family; ++d) {
      const std::string& domain = DomainPool()[d];
      nn::TaskSpec spec;
      spec.family_id = family;
      spec.domain_id = domain;
      spec.dim = config.input_dim;
      spec.num_classes = config.num_classes;
      TaskEntry entry;
      entry.family = family;
      entry.domain = domain;
      entry.dataset = spec.DatasetName();
      entry.task = nn::SyntheticTask::Make(spec);
      Rng data_rng = rng.Fork();
      entry.train = entry.task.Sample(config.train_samples, &data_rng);
      nn::Dataset test = entry.task.Sample(config.test_samples, &data_rng);

      MLAKE_RETURN_NOT_OK(lake->RegisterDataset(
          entry.dataset, DatasetShardSet(family, domain)));
      if (config.register_benchmarks) {
        MLAKE_RETURN_NOT_OK(
            lake->RegisterBenchmark(entry.dataset + ":test", test));
      }
      result.test_sets[entry.dataset] = std::move(test);
      result.datasets.push_back(entry.dataset);
      tasks.push_back(std::move(entry));
    }
  }

  std::vector<nn::ArchSpec> arch_pool =
      ArchPool(config.input_dim, config.num_classes);

  // All (model, task index) generated so far, for stitching partners and
  // grandchild selection.
  struct Generated {
    std::string id;
    size_t task_index;
    std::unique_ptr<nn::Model> model;
  };
  std::vector<Generated> population;

  auto ingest = [&](const std::string& id, nn::Model* model,
                    const TaskEntry& task, const std::string& parent,
                    versioning::EdgeType edge,
                    const nn::TrainConfig& train_config,
                    const Json& edge_params) -> Status {
    double acc = 0.0;
    auto it = result.test_sets.find(task.dataset);
    if (it != result.test_sets.end()) {
      acc = nn::EvaluateAccuracy(model, it->second);
    }
    Rng card_rng = rng.Fork();
    metadata::ModelCard truth =
        MakeTruthCard(id, task.family, task.domain, *model, train_config,
                      acc, parent, edge, &card_rng);
    result.truth_cards[id] = truth;
    metadata::ModelCard visible = truth;
    if (config.noise_cards) {
      Rng noise_rng = rng.Fork();
      visible = metadata::NoiseCard(truth, config.card_noise,
                                    result.families, &noise_rng);
    }
    MLAKE_RETURN_NOT_OK(lake->IngestModel(*model, visible).status());

    result.truth_graph.AddModel(id);
    GeneratedModel gen;
    gen.id = id;
    gen.task_family = task.family;
    gen.dataset = task.dataset;
    gen.parent = parent;
    gen.edge = edge;
    gen.test_accuracy = acc;
    result.models.push_back(gen);
    if (!parent.empty()) {
      versioning::VersionEdge truth_edge;
      truth_edge.parent = parent;
      truth_edge.child = id;
      truth_edge.type = edge;
      truth_edge.params = edge_params;
      MLAKE_RETURN_NOT_OK(result.truth_graph.AddEdge(truth_edge));
      if (config.record_lineage_in_lake) {
        MLAKE_RETURN_NOT_OK(lake->RecordEdge(truth_edge));
      }
    }
    return Status::OK();
  };

  // ----- base models -----
  for (size_t b = 0; b < config.num_bases; ++b) {
    size_t task_index = b % tasks.size();
    const TaskEntry& task = tasks[task_index];
    const nn::ArchSpec& arch =
        arch_pool[static_cast<size_t>(rng.NextBelow(arch_pool.size()))];
    Rng init_rng = rng.Fork();
    MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<nn::Model> model,
                           nn::BuildModel(arch, &init_rng));
    nn::TrainConfig train_config = config.base_train;
    train_config.seed = rng.NextU64();
    MLAKE_RETURN_NOT_OK(
        nn::Train(model.get(), task.train, train_config).status());
    std::string id = StrFormat("%s/%s-%s-base-%zu",
                               task.family.c_str(), task.domain.c_str(),
                               model->spec().family.c_str(), b);
    MLAKE_RETURN_NOT_OK(ingest(id, model.get(), task, "",
                               versioning::EdgeType::kUnknown, train_config,
                               Json::MakeObject()));
    population.push_back(Generated{id, task_index, std::move(model)});
  }
  size_t num_bases = population.size();

  // ----- derived models -----
  for (size_t b = 0; b < num_bases; ++b) {
    size_t num_children = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.children_per_base_min),
                       static_cast<int64_t>(config.children_per_base_max)));
    std::vector<size_t> lineage_pool{b};  // candidate parents in population
    for (size_t c = 0; c < num_children; ++c) {
      size_t parent_pos = lineage_pool[0];
      if (lineage_pool.size() > 1 && rng.Bernoulli(config.grandchild_rate)) {
        parent_pos = lineage_pool[static_cast<size_t>(
            rng.NextBelow(lineage_pool.size() - 1) + 1)];
      }
      Generated& parent = population[parent_pos];
      std::unique_ptr<nn::Model> child = parent.model->Clone();

      // Pick the child's training task: usually a sibling domain of the
      // same family (the classic "domain adaptation" fine-tune).
      size_t task_index = parent.task_index;
      const TaskEntry& parent_task = tasks[parent.task_index];
      std::vector<size_t> siblings;
      for (size_t t = 0; t < tasks.size(); ++t) {
        if (tasks[t].family == parent_task.family && t != parent.task_index) {
          siblings.push_back(t);
        }
      }
      if (!siblings.empty() && rng.Bernoulli(0.6)) {
        task_index = siblings[static_cast<size_t>(
            rng.NextBelow(siblings.size()))];
      }
      const TaskEntry& task = tasks[task_index];

      nn::TrainConfig ft = config.finetune_train;
      ft.seed = rng.NextU64();
      Json params = Json::MakeObject();
      params.Set("dataset", task.dataset);

      // Transformation mix.
      static const char* kKinds[] = {"finetune", "lora", "edit",
                                     "prune",    "noise", "distill"};
      size_t kind = rng.Categorical({0.34, 0.22, 0.12, 0.12, 0.10, 0.10});
      versioning::EdgeType edge = versioning::EdgeType::kFinetune;
      std::string suffix;
      switch (kind) {
        case 0: {  // full fine-tune
          MLAKE_RETURN_NOT_OK(
              nn::Finetune(child.get(), task.train, ft).status());
          edge = versioning::EdgeType::kFinetune;
          suffix = "ft";
          break;
        }
        case 1: {  // LoRA
          int64_t rank = rng.Bernoulli(0.5) ? 2 : 4;
          params.Set("rank", rank);
          MLAKE_RETURN_NOT_OK(
              nn::LoraFinetune(child.get(), task.train, rank, 1.0f, ft)
                  .status());
          edge = versioning::EdgeType::kLora;
          suffix = "lora";
          break;
        }
        case 2: {  // model edit
          Rng probe_rng = rng.Fork();
          Tensor probe = Tensor::RandomNormal({1, config.input_dim},
                                              &probe_rng, 1.2f);
          int64_t target = static_cast<int64_t>(
              rng.NextBelow(static_cast<uint64_t>(config.num_classes)));
          params.Set("target_class", target);
          MLAKE_RETURN_NOT_OK(
              nn::RankOneEdit(child.get(), probe, target, 6.0f).status());
          edge = versioning::EdgeType::kEdit;
          suffix = "edit";
          break;
        }
        case 3: {  // pruning
          double fraction = rng.Uniform(0.15, 0.4);
          params.Set("fraction", fraction);
          MLAKE_RETURN_NOT_OK(
              nn::MagnitudePrune(child.get(), fraction).status());
          edge = versioning::EdgeType::kPrune;
          suffix = "prune";
          break;
        }
        case 4: {  // weight noise ("someone else's continued training")
          Rng noise_rng = rng.Fork();
          nn::AddWeightNoise(child.get(), 0.05, &noise_rng);
          edge = versioning::EdgeType::kNoise;
          suffix = "noise";
          break;
        }
        case 5: {  // distillation into a fresh same-spec student
          Rng student_rng = rng.Fork();
          auto student = nn::Distill(parent.model.get(),
                                     parent.model->spec(), task.train.x,
                                     2.0f, ft, &student_rng);
          MLAKE_RETURN_NOT_OK(student.status());
          child = student.MoveValueUnsafe();
          edge = versioning::EdgeType::kDistill;
          suffix = "distill";
          break;
        }
        default:
          break;
      }
      (void)kKinds;

      std::string id = StrFormat("%s-%s%zu", parent.id.c_str(),
                                 suffix.c_str(), c);
      MLAKE_RETURN_NOT_OK(ingest(id, child.get(), task, parent.id, edge,
                                 ft, params));
      population.push_back(Generated{id, task_index, std::move(child)});
      lineage_pool.push_back(population.size() - 1);
    }
  }

  return result;
}

}  // namespace mlake::lakegen
