#include "replication/replicator.h"

#include <algorithm>
#include <chrono>

#include "common/file_util.h"
#include "common/hash.h"
#include "common/logging.h"
#include "governance/governance.h"
#include "index/snapshot.h"
#include "server/http.h"

namespace mlake::replication {

namespace {

/// Name of the durable watermark file under the replica lake's root.
constexpr char kStateFile[] = "replica_state.json";
/// Scratch file the re-seed container is validated through (the PR-6
/// snapshot reader wants a path on the Fs seam).
constexpr char kReseedFile[] = "reseed.snap";

/// Reconstructs a Status from a leader error response (same mapping the
/// router uses) so fencing/truncation signals keep their code family
/// across the HTTP hop.
Status StatusFromResponse(const server::HttpResponse& response) {
  std::string message =
      "leader answered HTTP " + std::to_string(response.status);
  std::string code;
  if (auto parsed = Json::Parse(response.body);
      parsed.ok() && parsed.ValueUnsafe().is_object()) {
    const Json* err = parsed.ValueUnsafe().Find("error");
    if (err != nullptr && err->is_object()) {
      code = err->GetString("code");
      message = err->GetString("message", message);
    }
  }
  if (code == "NotFound") return Status::NotFound(message);
  if (code == "InvalidArgument") return Status::InvalidArgument(message);
  if (code == "AlreadyExists") return Status::AlreadyExists(message);
  if (code == "FailedPrecondition") return Status::FailedPrecondition(message);
  if (code == "ResourceExhausted") return Status::ResourceExhausted(message);
  if (code == "DeadlineExceeded") return Status::DeadlineExceeded(message);
  if (code == "Unavailable") return Status::Unavailable(message);
  if (code == "Corruption") return Status::Corruption(message);
  return Status::Internal(message);
}

}  // namespace

Replicator::Replicator(core::ModelLake* lake, ReplicaOptions options)
    : lake_(lake),
      options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : RealFs()),
      state_path_(JoinPath(lake->options().root, kStateFile)),
      client_(std::make_unique<server::HttpClient>(options_.leader_host,
                                                   options_.leader_port)) {
  client_->set_timeout_ms(options_.timeout_ms);
}

Result<std::unique_ptr<Replicator>> Replicator::Open(core::ModelLake* lake,
                                                     ReplicaOptions options) {
  if (lake == nullptr) {
    return Status::InvalidArgument("Replicator needs a lake");
  }
  if (!lake->ReplicationLogEnabled()) {
    return Status::FailedPrecondition(
        "replica lake must be opened with LakeOptions.replication_log");
  }
  std::unique_ptr<Replicator> replicator(
      new Replicator(lake, std::move(options)));
  MLAKE_RETURN_NOT_OK(replicator->LoadState());
  return replicator;
}

Replicator::~Replicator() { (void)Stop(); }

Status Replicator::LoadState() {
  uint64_t state_seq = 0;
  uint64_t state_epoch = 0;
  if (fs_->FileExists(state_path_)) {
    MLAKE_ASSIGN_OR_RETURN(std::string raw, fs_->ReadFile(state_path_));
    MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(raw));
    if (!j.is_object()) {
      return Status::Corruption("replica state file: not an object");
    }
    state_seq = static_cast<uint64_t>(j.GetInt64("applied_seq", 0));
    state_epoch = static_cast<uint64_t>(j.GetInt64("epoch", 0));
  }
  // The lake's own journal is equally authoritative: a crash after an
  // entry committed but before the watermark write leaves the state
  // file one behind; a crash after PersistState but before the lake
  // commit leaves it one ahead of a rolled-back apply. Taking the max
  // is safe either way because applies are idempotent (redelivery of an
  // applied entry is detected and skipped, and the watermark is only
  // ever advanced past entries that are durably in the lake).
  applied_seq_ = std::max(state_seq, lake_->ReplicationLastSeq());
  epoch_ = std::max(state_epoch, lake_->ReplicationEpoch());
  return Status::OK();
}

Status Replicator::PersistState() {
  Json j = Json::MakeObject();
  j.Set("applied_seq", Json(applied_seq_.load()));
  j.Set("epoch", Json(epoch_.load()));
  return WriteFileAtomic(fs_, state_path_, j.Dump());
}

Status Replicator::Start() {
  if (running_.exchange(true)) return Status::OK();
  puller_ = std::thread([this] { PullLoop(); });
  return Status::OK();
}

Status Replicator::Stop() {
  running_ = false;
  if (puller_.joinable()) puller_.join();
  return Status::OK();
}

Result<size_t> Replicator::SyncOnce() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  size_t applied = 0;
  // Bounded so a leader that keeps answering "more" (or a reseed loop)
  // cannot wedge the caller forever.
  for (int rounds = 0; rounds < 10000; ++rounds) {
    std::string path =
        "/v1/replication/log?from=" + std::to_string(applied_seq_ + 1) +
        "&max=" + std::to_string(options_.batch_max);
    auto response = client_->Get(path, {}, options_.timeout_ms);
    if (!response.ok()) return response.status();
    if (response.ValueUnsafe().status == 409) {
      // FailedPrecondition: the leader truncated its log past our
      // watermark (or we are fenced) — only a re-seed can catch us up.
      MLAKE_RETURN_NOT_OK(ReseedFromLeaderLocked());
      continue;
    }
    if (response.ValueUnsafe().status != 200) {
      return StatusFromResponse(response.ValueUnsafe());
    }
    MLAKE_ASSIGN_OR_RETURN(Json batch,
                           Json::Parse(response.ValueUnsafe().body));
    Status batch_status = ApplyBatchLocked(batch, &applied);
    if (batch_status.IsCorruption()) {
      // The lake holds a different answer than the log claims — repair
      // wholesale rather than fail forever on the same entry.
      MLAKE_LOG_WARNING << "replica: divergence during apply ("
                        << batch_status.ToString() << "); re-seeding";
      MLAKE_RETURN_NOT_OK(ReseedFromLeaderLocked());
      continue;
    }
    MLAKE_RETURN_NOT_OK(batch_status);
    if (batch.GetBool("exhausted", false)) break;
  }
  // Only now is leader_last_seq_ a trustworthy watermark — governance
  // reads stay fenced (503) until one full sync has landed.
  synced_.store(true, std::memory_order_relaxed);
  return applied;
}

Status Replicator::ApplyBatchLocked(const Json& batch, size_t* applied) {
  if (!batch.is_object()) {
    return Status::InvalidArgument("log batch must be an object");
  }
  uint64_t batch_epoch = static_cast<uint64_t>(batch.GetInt64("epoch", 0));
  // Epoch fencing: a batch from a stale leader (lower term than we have
  // durably seen) is rejected outright — a partitioned old leader must
  // not be able to roll this replica back or fork its log.
  if (batch_epoch < epoch_.load()) {
    rejected_stale_epoch_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "stale leader epoch " + std::to_string(batch_epoch) +
        " < replica epoch " + std::to_string(epoch_.load()));
  }
  if (batch_epoch > epoch_.load()) {
    // New term: adopt it durably before applying anything under it.
    MLAKE_RETURN_NOT_OK(lake_->SetReplicationEpoch(batch_epoch));
    epoch_ = batch_epoch;
    MLAKE_RETURN_NOT_OK(PersistState());
  }
  uint64_t last_seq = static_cast<uint64_t>(batch.GetInt64("last_seq", 0));
  if (last_seq > 0) leader_last_seq_ = last_seq;
  const Json* inline_blobs = batch.Find("blobs");
  if (const Json* entries = batch.Find("entries");
      entries != nullptr && entries->is_array()) {
    for (const Json& ej : entries->AsArray()) {
      MLAKE_ASSIGN_OR_RETURN(storage::Intent entry,
                             storage::Intent::FromJson(ej));
      MLAKE_RETURN_NOT_OK(ApplyEntryLocked(entry, inline_blobs, applied));
    }
  }
  // Local-only leader ops ("compact") occupy seqs that are never
  // shipped; when the scan was exhausted the watermark may fast-forward
  // across those gaps to the leader's high-water mark.
  if (batch.GetBool("exhausted", false) && last_seq > applied_seq_.load()) {
    applied_seq_ = last_seq;
    MLAKE_RETURN_NOT_OK(PersistState());
  }
  return Status::OK();
}

Status Replicator::ApplyEntryLocked(const storage::Intent& entry,
                                    const Json* inline_blobs,
                                    size_t* applied) {
  if (entry.seq <= applied_seq_.load()) return Status::OK();
  MLAKE_ASSIGN_OR_RETURN(bool done, AlreadyApplied(entry));
  if (!done) {
    std::map<std::string, std::string> blobs;
    for (const std::string& digest : entry.digests) {
      std::string bytes;
      const Json* inlined = inline_blobs != nullptr && inline_blobs->is_object()
                                ? inline_blobs->Find(digest)
                                : nullptr;
      if (inlined != nullptr && inlined->is_string()) {
        MLAKE_ASSIGN_OR_RETURN(bytes,
                               server::Base64Decode(inlined->AsString()));
      } else {
        MLAKE_ASSIGN_OR_RETURN(bytes, FetchBlob(digest));
      }
      blobs[digest] = std::move(bytes);
    }
    MLAKE_RETURN_NOT_OK(lake_->ApplyReplicated(entry, blobs));
    entries_applied_.fetch_add(1, std::memory_order_relaxed);
    if (applied != nullptr) ++*applied;
  }
  // The entry is durably in the lake (just now, or from before a lost
  // watermark); only now may the watermark pass it.
  applied_seq_ = entry.seq;
  return PersistState();
}

Result<bool> Replicator::AlreadyApplied(const storage::Intent& entry) const {
  if (entry.op == "ingest") {
    if (entry.ids.empty()) return false;
    for (size_t i = 0; i < entry.ids.size(); ++i) {
      auto digest = lake_->ArtifactDigest(entry.ids[i]);
      if (!digest.ok()) {
        if (digest.status().IsNotFound()) return false;
        return digest.status();
      }
      std::string want =
          i < entry.digests.size() ? entry.digests[i] : std::string();
      if (digest.ValueUnsafe() != want) {
        return Status::Corruption(
            "replica diverged on " + entry.ids[i] + ": local digest \"" +
            digest.ValueUnsafe() + "\" vs log \"" + want + "\"");
      }
    }
    return true;
  }
  if (entry.op == "record_edge") {
    return lake_->HasEdge(entry.payload.GetString("parent"),
                          entry.payload.GetString("child"));
  }
  if (entry.op == "register_dataset") {
    return lake_->DatasetShards(entry.payload.GetString("name")).ok();
  }
  return false;
}

Result<std::string> Replicator::FetchBlob(const std::string& digest) {
  auto response = client_->Get("/v1/replication/blob/" + digest, {},
                               options_.timeout_ms);
  if (!response.ok()) return response.status();
  if (response.ValueUnsafe().status != 200) {
    return StatusFromResponse(response.ValueUnsafe());
  }
  MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(response.ValueUnsafe().body));
  MLAKE_ASSIGN_OR_RETURN(std::string bytes,
                         server::Base64Decode(j.GetString("bytes_b64")));
  if (Sha256::HexDigest(bytes) != digest) {
    return Status::Corruption("leader blob does not match digest " + digest);
  }
  return bytes;
}

Status Replicator::ReseedFromLeaderLocked() {
  auto response =
      client_->Get("/v1/replication/seed", {}, options_.timeout_ms);
  if (!response.ok()) return response.status();
  if (response.ValueUnsafe().status != 200) {
    return StatusFromResponse(response.ValueUnsafe());
  }
  MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(response.ValueUnsafe().body));
  MLAKE_ASSIGN_OR_RETURN(std::string container,
                         server::Base64Decode(j.GetString("container_b64")));
  // Validate through the snapshot container (magic + CRC'd TOC) before
  // trusting the manifest; the reader wants a path on the Fs seam.
  std::string scratch = JoinPath(lake_->options().root, kReseedFile);
  MLAKE_RETURN_NOT_OK(WriteFileAtomic(fs_, scratch, container));
  MLAKE_ASSIGN_OR_RETURN(
      index::SnapshotReader reader,
      index::SnapshotReader::Open(fs_, scratch,
                                  index::SnapshotKind::kReplicationSeed));
  MLAKE_ASSIGN_OR_RETURN(std::string_view manifest_bytes,
                         reader.Section("manifest"));
  MLAKE_ASSIGN_OR_RETURN(Json manifest, Json::Parse(manifest_bytes));
  MLAKE_RETURN_NOT_OK(lake_->ReseedFromManifest(
      manifest, [this](const std::string& digest) -> Result<std::string> {
        return FetchBlob(digest);
      }));
  uint64_t upto = static_cast<uint64_t>(manifest.GetInt64("upto_seq", 0));
  uint64_t seed_epoch = static_cast<uint64_t>(manifest.GetInt64("epoch", 0));
  if (upto > applied_seq_.load()) applied_seq_ = upto;
  if (seed_epoch > epoch_.load()) epoch_ = seed_epoch;
  MLAKE_RETURN_NOT_OK(PersistState());
  (void)fs_->RemoveFile(scratch);
  reseeds_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Replicator::CheckDivergence() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return CheckDivergenceLocked();
}

Status Replicator::CheckDivergenceLocked() {
  auto response =
      client_->Get("/v1/replication/fingerprint", {}, options_.timeout_ms);
  if (!response.ok()) return response.status();
  if (response.ValueUnsafe().status != 200) {
    return StatusFromResponse(response.ValueUnsafe());
  }
  MLAKE_ASSIGN_OR_RETURN(Json j, Json::Parse(response.ValueUnsafe().body));
  uint64_t leader_seq = static_cast<uint64_t>(j.GetInt64("last_seq", 0));
  if (leader_seq != applied_seq_.load()) {
    // Not caught up (or ahead after a promote elsewhere): fingerprints
    // describe different prefixes, so a mismatch proves nothing.
    return Status::OK();
  }
  if (j.GetString("fingerprint") == lake_->ReplicationFingerprint()) {
    return Status::OK();
  }
  MLAKE_LOG_WARNING << "replica: fingerprint mismatch at seq "
                    << leader_seq << "; re-seeding from leader";
  return ReseedFromLeaderLocked();
}

Json Replicator::StatszJson() const {
  uint64_t applied = applied_seq_.load();
  uint64_t leader_seq = leader_last_seq_.load();
  Json out = Json::MakeObject();
  out.Set("role", is_replica_.load() ? "replica" : "leader");
  out.Set("leader", options_.leader_host + ":" +
                        std::to_string(options_.leader_port));
  out.Set("applied_seq", Json(applied));
  out.Set("leader_last_seq", Json(leader_seq));
  out.Set("lag", Json(leader_seq > applied ? leader_seq - applied
                                           : uint64_t{0}));
  out.Set("caught_up", leader_seq <= applied);
  out.Set("epoch", Json(epoch_.load()));
  out.Set("entries_applied", Json(entries_applied_.load()));
  out.Set("polls", Json(polls_.load()));
  out.Set("reseeds", Json(reseeds_.load()));
  out.Set("rejected_stale_epoch", Json(rejected_stale_epoch_.load()));
  out.Set("pull_errors", Json(pull_errors_.load()));
  out.Set("synced", synced_.load());
  out.Set("stale_retry_after_s", StaleRetryAfterSeconds());
  return out;
}

uint64_t Replicator::LagEntries() const {
  uint64_t applied = applied_seq_.load();
  uint64_t leader_seq = leader_last_seq_.load();
  return leader_seq > applied ? leader_seq - applied : uint64_t{0};
}

bool Replicator::CaughtUp() const {
  return synced_.load() && LagEntries() == 0;
}

int Replicator::StaleRetryAfterSeconds() const {
  return governance::RetryAfterSeconds(LagEntries(), options_.batch_max,
                                       options_.poll_interval_ms);
}

Result<Json> Replicator::Ship(const Json& batch) {
  if (!is_replica_.load()) {
    return Status::FailedPrecondition("promoted: no longer accepts ships");
  }
  std::lock_guard<std::mutex> lock(apply_mu_);
  size_t applied = 0;
  MLAKE_RETURN_NOT_OK(ApplyBatchLocked(batch, &applied));
  // A pushed batch carries the leader's frontier just like a pull does,
  // so a ship-fed replica is equally eligible for governance reads.
  synced_.store(true, std::memory_order_relaxed);
  Json out = Json::MakeObject();
  out.Set("applied", Json(static_cast<uint64_t>(applied)));
  out.Set("applied_seq", Json(applied_seq_.load()));
  out.Set("epoch", Json(epoch_.load()));
  return out;
}

Status Replicator::Promote() {
  // Stop following first so no pull races the epoch bump.
  running_ = false;
  if (puller_.joinable()) puller_.join();
  std::lock_guard<std::mutex> lock(apply_mu_);
  if (!is_replica_.load()) return Status::OK();
  // The new term must exceed every epoch this node has seen; the lake's
  // journal epoch tracks that (every adopted epoch was written through
  // SetReplicationEpoch).
  MLAKE_ASSIGN_OR_RETURN(uint64_t next, lake_->BumpReplicationEpoch());
  epoch_ = next;
  is_replica_ = false;
  MLAKE_RETURN_NOT_OK(PersistState());
  MLAKE_LOG_INFO << "replica promoted to leader at epoch " << next
                 << ", applied_seq " << applied_seq_.load();
  return Status::OK();
}

void Replicator::PullLoop() {
  int caught_up_polls = 0;
  while (running_.load()) {
    auto pulled = SyncOnce();
    polls_.fetch_add(1, std::memory_order_relaxed);
    if (!pulled.ok()) {
      pull_errors_.fetch_add(1, std::memory_order_relaxed);
    } else if (options_.fingerprint_interval_polls > 0 &&
               ++caught_up_polls >= options_.fingerprint_interval_polls) {
      caught_up_polls = 0;
      Status checked = CheckDivergence();
      if (!checked.ok()) {
        pull_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Sliced sleep so Stop()/Promote() are honored promptly.
    auto wake = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.poll_interval_ms);
    while (running_.load() && std::chrono::steady_clock::now() < wake) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

}  // namespace mlake::replication
