#ifndef MLAKE_REPLICATION_REPLICATOR_H_
#define MLAKE_REPLICATION_REPLICATOR_H_

// Journal-streaming replication (DESIGN.md §14).
//
// A leader lake opened with LakeOptions.replication_log keeps every
// committed intent as a replayable op-log entry; this module is the
// replica side. A Replicator follows one leader over the plain HTTP
// API: it pulls committed entries (GET /v1/replication/log), fetches
// the artifact blobs they reference (GET /v1/replication/blob/{digest},
// digest-verified), and applies each entry through the replica lake's
// normal journaled ingest path at the *leader's* seq and epoch — so the
// replica's log is a prefix of the leader's and its catalog, indexes
// and search responses are byte-identical once caught up.
//
// Durability & crash recovery: the watermark {applied_seq, epoch} is
// persisted to <root>/replica_state.json (WriteFileAtomic on the Fs
// seam, so FaultInjectingFs crash tests cover it) after every applied
// entry. A replica killed mid-apply reopens, the lake's own journal
// rolls back the half-applied entry, and the puller resumes from the
// durable watermark; redelivered entries are detected (ids already
// present with matching digests) and skipped.
//
// Fencing: every log batch carries the leader's epoch. A batch whose
// epoch is below the replica's durable epoch is rejected with
// FailedPrecondition — a partitioned old leader cannot roll the replica
// back. Higher epochs are adopted durably. Promote() bumps the epoch
// past everything seen and stops following; the server then routes
// writes here.
//
// Divergence: every `fingerprint_interval_polls` caught-up polls the
// replica compares logical-state fingerprints with the leader; a
// mismatch (or a log GET answered 409 because the leader truncated past
// our watermark, or a Corruption during apply) triggers a re-seed: the
// leader's full manifest arrives framed in a PR-6 snapshot container
// (CRC-validated), is diffed against local state, and repairs bring the
// replica to the seed's upto_seq exactly.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/fs.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "core/model_lake.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/intent_journal.h"

namespace mlake::replication {

struct ReplicaOptions {
  std::string leader_host = "127.0.0.1";
  int leader_port = 0;
  /// Background puller cadence while caught up.
  int poll_interval_ms = 200;
  /// Max log entries per pull.
  int batch_max = 64;
  /// Fingerprint exchange every N caught-up polls (0 = never).
  int fingerprint_interval_polls = 8;
  /// Per-round-trip HTTP timeout for leader calls.
  int timeout_ms = 10000;
  /// Filesystem seam for the durable watermark + re-seed container
  /// (FaultInjectingFs in crash tests). nullptr = real filesystem.
  Fs* fs = nullptr;
};

/// Follows one leader, applies its log to `lake`, serves the server's
/// ReplicationControl seam. The lake must be opened with
/// LakeOptions.replication_log and must outlive the Replicator.
class Replicator : public server::ReplicationControl {
 public:
  /// Loads (or initializes) the durable watermark. Does not contact the
  /// leader yet.
  static Result<std::unique_ptr<Replicator>> Open(core::ModelLake* lake,
                                                  ReplicaOptions options);
  ~Replicator() override;

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the background puller thread. Idempotent.
  Status Start();
  /// Stops and joins the puller. Idempotent; also run by the destructor.
  Status Stop();

  /// One synchronous catch-up pass: pulls log batches until the leader
  /// reports the log exhausted, re-seeding on truncation/divergence.
  /// Returns the number of entries applied. Test and startup seam — the
  /// background puller runs exactly this.
  Result<size_t> SyncOnce();

  /// Compares fingerprints with the leader (only meaningful when caught
  /// up) and re-seeds on mismatch. Exposed for tests.
  Status CheckDivergence();

  // ---- server::ReplicationControl --------------------------------------
  bool IsReplica() const override { return is_replica_.load(); }
  uint64_t AppliedSeq() const override { return applied_seq_.load(); }
  Json StatszJson() const override;
  Result<Json> Ship(const Json& batch) override;
  Status Promote() override;
  /// Entries behind the leader's last observed log seq. Reads 0 before
  /// the first completed sync (the lag is simply unknown then —
  /// CaughtUp() is the gate, this is the magnitude).
  uint64_t LagEntries() const override;
  /// True once at least one sync has completed AND the watermark has
  /// reached the leader's last observed seq. Governance reads answer
  /// 503 until then.
  bool CaughtUp() const override;
  /// Retry-After to advertise with that 503: how long clearing the
  /// current lag should take at our pull cadence, clamped to [1, 30] s.
  int StaleRetryAfterSeconds() const override;

  uint64_t epoch() const { return epoch_.load(); }
  uint64_t reseeds() const { return reseeds_.load(); }

 private:
  Replicator(core::ModelLake* lake, ReplicaOptions options);

  Status LoadState();
  /// Durably persists {applied_seq, epoch} (atomic write + dir fsync).
  Status PersistState();

  /// Applies one ReplicationLogJson-shaped batch under apply_mu_.
  /// `*applied` gains the number of entries newly applied; fencing and
  /// epoch adoption happen here.
  Status ApplyBatchLocked(const Json& batch, size_t* applied);
  Status ApplyEntryLocked(const storage::Intent& entry,
                          const Json* inline_blobs, size_t* applied);
  /// True when `entry` is already reflected in the lake (redelivery
  /// after a lost watermark); Corruption when the lake holds a
  /// *different* answer for one of the entry's ids.
  Result<bool> AlreadyApplied(const storage::Intent& entry) const;

  Result<std::string> FetchBlob(const std::string& digest);
  Status ReseedFromLeaderLocked();
  Status CheckDivergenceLocked();

  void PullLoop();

  core::ModelLake* lake_;
  ReplicaOptions options_;
  Fs* fs_;  // never null
  std::string state_path_;

  /// Serializes every apply path (puller, Ship, re-seed, promote) and
  /// guards client_.
  std::mutex apply_mu_;
  std::unique_ptr<server::HttpClient> client_;

  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> leader_last_seq_{0};
  std::atomic<bool> is_replica_{true};
  /// Set after the first successful full sync (or accepted Ship batch);
  /// until then leader_last_seq_ is not trustworthy and the node must
  /// not claim to be caught up.
  std::atomic<bool> synced_{false};

  std::atomic<bool> running_{false};
  std::thread puller_;

  // Observability (surfaced via StatszJson).
  std::atomic<uint64_t> entries_applied_{0};
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> reseeds_{0};
  std::atomic<uint64_t> rejected_stale_epoch_{0};
  std::atomic<uint64_t> pull_errors_{0};
};

}  // namespace mlake::replication

#endif  // MLAKE_REPLICATION_REPLICATOR_H_
