#ifndef MLAKE_SEARCH_AST_H_
#define MLAKE_SEARCH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace mlake::search {

/// MLQL — the declarative model-query language of the paper's §6
/// ("we aim for users to be able to write declarative queries and
/// retrieve a set of models ranked by their suitability"). Example:
///
///   FIND MODELS
///   WHERE task = 'summarization' AND trained_on('legal-sum/us-courts')
///   RANK BY behavior_sim('user/query-model')
///   LIMIT 10
///
/// Grammar (keywords case-insensitive):
///   query      := FIND MODELS [WHERE or_expr] [RANK BY call] [LIMIT int]
///   or_expr    := and_expr (OR and_expr)*
///   and_expr   := unary (AND unary)*
///   unary      := NOT unary | primary
///   primary    := '(' or_expr ')' | comparison | call
///   comparison := IDENT op literal
///   op         := = | != | < | <= | > | >= | CONTAINS
///   call       := IDENT '(' [literal (',' literal)*] ')'

/// A literal value in a query.
struct Literal {
  enum class Kind { kString, kNumber };
  Kind kind = Kind::kString;
  std::string string_value;
  double number_value = 0.0;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Predicate / expression node.
struct Expr {
  enum class Kind { kAnd, kOr, kNot, kCompare, kCall };
  Kind kind;

  // kAnd / kOr: children; kNot: children[0].
  std::vector<ExprPtr> children;

  // kCompare.
  std::string field;
  CompareOp op = CompareOp::kEq;
  Literal value;

  // kCall.
  std::string function;
  std::vector<Literal> args;
};

/// A ranking directive: function name + literal args.
struct RankBy {
  std::string function;  // e.g. "behavior_sim"
  std::vector<Literal> args;
};

/// A parsed MLQL query.
struct Query {
  ExprPtr where;            // may be null (match all)
  bool has_rank = false;
  RankBy rank;
  size_t limit = 10;        // default LIMIT 10
};

/// Renders the query back to canonical MLQL text (debugging / EXPLAIN).
std::string ToString(const Query& query);
std::string ToString(const Expr& expr);

}  // namespace mlake::search

#endif  // MLAKE_SEARCH_AST_H_
