#ifndef MLAKE_SEARCH_EXECUTOR_H_
#define MLAKE_SEARCH_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "search/ast.h"
#include "search/context.h"

namespace mlake::search {

/// One ranked answer.
struct RankedModel {
  std::string id;
  double score = 0.0;
};

/// Reciprocal-rank-fusion offset of the hybrid ranking. Shared with
/// the cluster router, which reproduces the fusion from per-shard
/// parts — both sides must add 1/(offset + rank) with the same offset
/// for the distributed result to be bit-identical.
inline constexpr double kRrfOffset = 10.0;

/// One shard's contribution to a distributed hybrid ranking: a
/// WHERE-surviving candidate with its embedding dot product against
/// the query vector (`has_dot == false` when the dimensions mismatch —
/// the candidate still participates with no similarity contribution,
/// exactly as in the local executor).
struct HybridCandidate {
  std::string id;
  bool has_dot = false;
  double dot = 0.0;
};

/// The result of executing an MLQL query, including the plan the
/// executor chose (the lake's EXPLAIN).
struct QueryResult {
  std::vector<RankedModel> models;
  /// e.g. "scan 160 cards; filter; rank by behavior_sim via ANN index".
  std::string plan;
};

/// Parses and executes MLQL text against a lake.
///
/// Planning: when the query is rank-only over behavior/weight
/// similarity, the executor delegates to the ANN index (sublinear);
/// keyword-only queries use the BM25 inverted index; everything else
/// runs a card scan with per-row predicate evaluation.
Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 std::string_view mlql);

/// Executes an already-parsed query.
Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 const Query& query);

/// Evaluates a predicate against one card (exposed for tests).
Result<bool> EvaluatePredicate(const SearchContext& lake, const Expr& expr,
                               const metadata::ModelCard& card);

/// The shard-local half of a distributed hybrid ranking: evaluates
/// `query.where` over this lake's models and returns every survivor
/// (minus the query model itself) with its dot product against
/// `query_vec`. The router merges all shards' candidates, fuses them
/// with the globally-ranked keyword list (RRF, kRrfOffset) and sorts
/// (score desc, id asc) — bit-identical to RankCandidates' hybrid
/// branch on one merged lake. `query.rank` must be hybrid(text, id).
Result<std::vector<HybridCandidate>> CollectHybridParts(
    const SearchContext& lake, const Query& query,
    const std::vector<float>& query_vec);

/// Estimated fraction of the lake's models a predicate keeps — the
/// cost-based planner's selectivity model (exposed for tests).
/// Equality on a histogrammed card field is grounded in the catalog
/// statistics; calls and non-equality comparisons use fixed priors;
/// AND multiplies, OR adds (capped), NOT complements.
double EstimateSelectivity(const Expr& expr,
                           const SearchContext::CatalogStats& stats);

}  // namespace mlake::search

#endif  // MLAKE_SEARCH_EXECUTOR_H_
