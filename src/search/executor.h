#ifndef MLAKE_SEARCH_EXECUTOR_H_
#define MLAKE_SEARCH_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "search/ast.h"
#include "search/context.h"

namespace mlake::search {

/// One ranked answer.
struct RankedModel {
  std::string id;
  double score = 0.0;
};

/// The result of executing an MLQL query, including the plan the
/// executor chose (the lake's EXPLAIN).
struct QueryResult {
  std::vector<RankedModel> models;
  /// e.g. "scan 160 cards; filter; rank by behavior_sim via ANN index".
  std::string plan;
};

/// Parses and executes MLQL text against a lake.
///
/// Planning: when the query is rank-only over behavior/weight
/// similarity, the executor delegates to the ANN index (sublinear);
/// keyword-only queries use the BM25 inverted index; everything else
/// runs a card scan with per-row predicate evaluation.
Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 std::string_view mlql);

/// Executes an already-parsed query.
Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 const Query& query);

/// Evaluates a predicate against one card (exposed for tests).
Result<bool> EvaluatePredicate(const SearchContext& lake, const Expr& expr,
                               const metadata::ModelCard& card);

/// Estimated fraction of the lake's models a predicate keeps — the
/// cost-based planner's selectivity model (exposed for tests).
/// Equality on a histogrammed card field is grounded in the catalog
/// statistics; calls and non-equality comparisons use fixed priors;
/// AND multiplies, OR adds (capped), NOT complements.
double EstimateSelectivity(const Expr& expr,
                           const SearchContext::CatalogStats& stats);

}  // namespace mlake::search

#endif  // MLAKE_SEARCH_EXECUTOR_H_
