#ifndef MLAKE_SEARCH_PARSER_H_
#define MLAKE_SEARCH_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "search/ast.h"

namespace mlake::search {

/// Lexical token.
struct Token {
  enum class Kind {
    kIdent,    // bare word (keywords resolved by the parser)
    kString,   // 'quoted'
    kNumber,
    kOperator,  // = != < <= > >= ( ) ,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;  // for error messages
};

/// Tokenizes MLQL text. Returns InvalidArgument with offset context on
/// malformed input (unterminated string, stray character).
Result<std::vector<Token>> Lex(std::string_view text);

/// Parses an MLQL query.
Result<Query> ParseQuery(std::string_view text);

/// Parses just a predicate expression (used by tests).
Result<ExprPtr> ParsePredicate(std::string_view text);

}  // namespace mlake::search

#endif  // MLAKE_SEARCH_PARSER_H_
