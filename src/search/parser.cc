#include "search/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace mlake::search {

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '.' || text[i] == '/' ||
              text[i] == '-')) {
        ++i;
      }
      token.kind = Token::Kind::kIdent;
      token.text = std::string(text.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            value.push_back('\'');  // escaped quote ''
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(text[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "MLQL: unterminated string at offset %zu", token.offset));
      }
      token.kind = Token::Kind::kString;
      token.text = std::move(value);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.' || text[i] == 'e' || text[i] == 'E')) {
        ++i;
      }
      std::string num(text.substr(start, i - start));
      char* end = nullptr;
      token.number = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) {
        return Status::InvalidArgument(
            StrFormat("MLQL: bad number at offset %zu", token.offset));
      }
      token.kind = Token::Kind::kNumber;
      token.text = std::move(num);
    } else if (c == '=' || c == '(' || c == ')' || c == ',') {
      token.kind = Token::Kind::kOperator;
      token.text = std::string(1, c);
      ++i;
    } else if (c == '!' || c == '<' || c == '>') {
      token.kind = Token::Kind::kOperator;
      if (i + 1 < text.size() && text[i + 1] == '=') {
        token.text = std::string(text.substr(i, 2));
        i += 2;
      } else if (c == '!') {
        return Status::InvalidArgument(
            StrFormat("MLQL: stray '!' at offset %zu", token.offset));
      } else {
        token.text = std::string(1, c);
        ++i;
      }
    } else {
      return Status::InvalidArgument(StrFormat(
          "MLQL: unexpected character '%c' at offset %zu", c, token.offset));
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = text.size();
  tokens.push_back(std::move(end));
  return tokens;
}

namespace {

/// Recursive-descent parser over the token stream.
class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<Query> ParseFullQuery() {
    MLAKE_RETURN_NOT_OK(ExpectKeyword("FIND"));
    MLAKE_RETURN_NOT_OK(ExpectKeyword("MODELS"));
    Query query;
    if (AtKeyword("WHERE")) {
      Advance();
      MLAKE_ASSIGN_OR_RETURN(query.where, ParseOr());
    }
    if (AtKeyword("RANK")) {
      Advance();
      MLAKE_RETURN_NOT_OK(ExpectKeyword("BY"));
      MLAKE_ASSIGN_OR_RETURN(query.rank, ParseRank());
      query.has_rank = true;
    }
    if (AtKeyword("LIMIT")) {
      Advance();
      if (Current().kind != Token::Kind::kNumber || Current().number < 1) {
        return Error("LIMIT expects a positive number");
      }
      query.limit = static_cast<size_t>(Current().number);
      Advance();
    }
    if (Current().kind != Token::Kind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

  Result<ExprPtr> ParsePredicateOnly() {
    MLAKE_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Current().kind != Token::Kind::kEnd) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool AtKeyword(std::string_view kw) const {
    return Current().kind == Token::Kind::kIdent &&
           EqualsIgnoreCase(Current().text, kw);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AtKeyword(kw)) {
      return Error("expected keyword " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("MLQL: %s at offset %zu", what.c_str(), Current().offset));
  }

  bool AtOperator(std::string_view op) const {
    return Current().kind == Token::Kind::kOperator && Current().text == op;
  }

  Result<ExprPtr> ParseOr() {
    MLAKE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AtKeyword("OR")) {
      Advance();
      MLAKE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kOr;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    MLAKE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (AtKeyword("AND")) {
      Advance();
      MLAKE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAnd;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (AtKeyword("NOT")) {
      Advance();
      MLAKE_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->children.push_back(std::move(inner));
      return node;
    }
    return ParsePrimary();
  }

  Result<Literal> ParseLiteral() {
    Literal lit;
    if (Current().kind == Token::Kind::kString) {
      lit.kind = Literal::Kind::kString;
      lit.string_value = Current().text;
      Advance();
      return lit;
    }
    if (Current().kind == Token::Kind::kNumber) {
      lit.kind = Literal::Kind::kNumber;
      lit.number_value = Current().number;
      Advance();
      return lit;
    }
    return Error("expected literal");
  }

  Result<std::vector<Literal>> ParseArgs() {
    std::vector<Literal> args;
    if (!AtOperator("(")) {
      return Error("expected '('");
    }
    Advance();
    if (AtOperator(")")) {
      Advance();
      return args;
    }
    while (true) {
      MLAKE_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      args.push_back(std::move(lit));
      if (AtOperator(")")) {
        Advance();
        return args;
      }
      if (!AtOperator(",")) {
        return Error("expected ',' or ')'");
      }
      Advance();
    }
  }

  Result<ExprPtr> ParsePrimary() {
    if (AtOperator("(")) {
      Advance();
      MLAKE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      if (!AtOperator(")")) return Error("expected ')'");
      Advance();
      return inner;
    }
    if (Current().kind != Token::Kind::kIdent) {
      return Error("expected field or function");
    }
    std::string name = Current().text;
    Advance();
    if (AtOperator("(")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kCall;
      node->function = ToLower(name);
      MLAKE_ASSIGN_OR_RETURN(node->args, ParseArgs());
      return node;
    }
    // Comparison.
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCompare;
    node->field = ToLower(name);
    if (AtKeyword("CONTAINS")) {
      node->op = CompareOp::kContains;
      Advance();
    } else if (Current().kind == Token::Kind::kOperator) {
      const std::string& op = Current().text;
      if (op == "=") {
        node->op = CompareOp::kEq;
      } else if (op == "!=") {
        node->op = CompareOp::kNe;
      } else if (op == "<") {
        node->op = CompareOp::kLt;
      } else if (op == "<=") {
        node->op = CompareOp::kLe;
      } else if (op == ">") {
        node->op = CompareOp::kGt;
      } else if (op == ">=") {
        node->op = CompareOp::kGe;
      } else {
        return Error("expected comparison operator");
      }
      Advance();
    } else {
      return Error("expected comparison operator");
    }
    MLAKE_ASSIGN_OR_RETURN(node->value, ParseLiteral());
    return node;
  }

  Result<RankBy> ParseRank() {
    if (Current().kind != Token::Kind::kIdent) {
      return Error("expected ranking function");
    }
    RankBy rank;
    rank.function = ToLower(Current().text);
    Advance();
    MLAKE_ASSIGN_OR_RETURN(rank.args, ParseArgs());
    return rank;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  MLAKE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  QueryParser parser(std::move(tokens));
  return parser.ParseFullQuery();
}

Result<ExprPtr> ParsePredicate(std::string_view text) {
  MLAKE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  QueryParser parser(std::move(tokens));
  return parser.ParsePredicateOnly();
}

}  // namespace mlake::search
