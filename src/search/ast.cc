#include "search/ast.h"

#include "common/string_util.h"

namespace mlake::search {

namespace {

std::string LiteralToString(const Literal& lit) {
  if (lit.kind == Literal::Kind::kNumber) {
    return StrFormat("%g", lit.number_value);
  }
  std::string out = "'";
  for (char c : lit.string_value) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

std::string OpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

std::string ArgsToString(const std::vector<Literal>& args) {
  std::string out = "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += LiteralToString(args[i]);
  }
  out += ")";
  return out;
}

}  // namespace

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return "(" + ToString(*expr.children[0]) + " AND " +
             ToString(*expr.children[1]) + ")";
    case Expr::Kind::kOr:
      return "(" + ToString(*expr.children[0]) + " OR " +
             ToString(*expr.children[1]) + ")";
    case Expr::Kind::kNot:
      return "NOT " + ToString(*expr.children[0]);
    case Expr::Kind::kCompare:
      return expr.field + " " + OpToString(expr.op) + " " +
             LiteralToString(expr.value);
    case Expr::Kind::kCall:
      return expr.function + ArgsToString(expr.args);
  }
  return "?";
}

std::string ToString(const Query& query) {
  std::string out = "FIND MODELS";
  if (query.where != nullptr) {
    out += " WHERE " + ToString(*query.where);
  }
  if (query.has_rank) {
    out += " RANK BY " + query.rank.function + ArgsToString(query.rank.args);
  }
  out += StrFormat(" LIMIT %zu", query.limit);
  return out;
}

}  // namespace mlake::search
