#include "search/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "search/parser.h"

namespace mlake::search {

namespace {

constexpr size_t kAllResults = 1'000'000;  // "no limit" for sub-searches

/// Pre-resolves lake-backed calls (trained_on, keyword, derived_from)
/// once per query so predicate evaluation is a pure per-card check.
class PredicateEvaluator {
 public:
  PredicateEvaluator(const SearchContext& lake) : lake_(lake) {}

  Status Prepare(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
      case Expr::Kind::kNot:
        for (const ExprPtr& child : expr.children) {
          MLAKE_RETURN_NOT_OK(Prepare(*child));
        }
        return Status::OK();
      case Expr::Kind::kCompare:
        return Status::OK();
      case Expr::Kind::kCall:
        return PrepareCall(expr);
    }
    return Status::OK();
  }

  Result<bool> Evaluate(const Expr& expr,
                        const metadata::ModelCard& card) const {
    switch (expr.kind) {
      case Expr::Kind::kAnd: {
        MLAKE_ASSIGN_OR_RETURN(bool left, Evaluate(*expr.children[0], card));
        if (!left) return false;
        return Evaluate(*expr.children[1], card);
      }
      case Expr::Kind::kOr: {
        MLAKE_ASSIGN_OR_RETURN(bool left, Evaluate(*expr.children[0], card));
        if (left) return true;
        return Evaluate(*expr.children[1], card);
      }
      case Expr::Kind::kNot: {
        MLAKE_ASSIGN_OR_RETURN(bool inner, Evaluate(*expr.children[0], card));
        return !inner;
      }
      case Expr::Kind::kCompare:
        return EvaluateCompare(expr, card);
      case Expr::Kind::kCall:
        return EvaluateCall(expr, card);
    }
    return Status::Internal("unreachable");
  }

 private:
  static std::string CallKey(const Expr& expr) {
    std::string key = expr.function;
    for (const Literal& arg : expr.args) {
      key += "|";
      key += arg.kind == Literal::Kind::kString
                 ? arg.string_value
                 : StrFormat("%g", arg.number_value);
    }
    return key;
  }

  Status PrepareCall(const Expr& expr) {
    const std::string& fn = expr.function;
    if (fn == "trained_on") {
      if (expr.args.empty() ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument(
            "trained_on expects a dataset name string");
      }
      double min_overlap = 0.5;
      if (expr.args.size() >= 2 &&
          expr.args[1].kind == Literal::Kind::kNumber) {
        min_overlap = expr.args[1].number_value;
      }
      auto hits = lake_.TrainedOn(expr.args[0].string_value, min_overlap);
      MLAKE_RETURN_NOT_OK(hits.status());
      std::set<std::string>& ids = call_sets_[CallKey(expr)];
      for (const auto& [id, overlap] : hits.ValueUnsafe()) ids.insert(id);
      return Status::OK();
    }
    if (fn == "keyword") {
      if (expr.args.size() != 1 ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument("keyword expects one string");
      }
      auto hits = lake_.KeywordScores(expr.args[0].string_value, kAllResults);
      MLAKE_RETURN_NOT_OK(hits.status());
      std::set<std::string>& ids = call_sets_[CallKey(expr)];
      for (const auto& [id, score] : hits.ValueUnsafe()) {
        if (score > 0.0) ids.insert(id);
      }
      return Status::OK();
    }
    if (fn == "tag" || fn == "derived_from") {
      if (expr.args.size() != 1 ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument(fn + " expects one string");
      }
      return Status::OK();  // evaluated per card
    }
    return Status::InvalidArgument("unknown predicate function: " + fn);
  }

  Result<bool> EvaluateCall(const Expr& expr,
                            const metadata::ModelCard& card) const {
    const std::string& fn = expr.function;
    if (fn == "trained_on" || fn == "keyword") {
      auto it = call_sets_.find(CallKey(expr));
      if (it == call_sets_.end()) {
        return Status::Internal("call not prepared: " + fn);
      }
      return it->second.count(card.model_id) > 0;
    }
    if (fn == "tag") {
      for (const std::string& tag : card.tags) {
        if (EqualsIgnoreCase(tag, expr.args[0].string_value)) return true;
      }
      return false;
    }
    if (fn == "derived_from") {
      return lake_.IsDescendantOf(card.model_id, expr.args[0].string_value);
    }
    return Status::InvalidArgument("unknown predicate function: " + fn);
  }

  Result<bool> EvaluateCompare(const Expr& expr,
                               const metadata::ModelCard& card) const {
    // Numeric fields.
    if (expr.field == "num_params" || expr.field == "completeness") {
      if (expr.value.kind != Literal::Kind::kNumber) {
        return Status::InvalidArgument("field " + expr.field +
                                       " expects a number");
      }
      double lhs = expr.field == "num_params"
                       ? static_cast<double>(card.num_params)
                       : metadata::CompletenessScore(card);
      double rhs = expr.value.number_value;
      switch (expr.op) {
        case CompareOp::kEq:
          return lhs == rhs;
        case CompareOp::kNe:
          return lhs != rhs;
        case CompareOp::kLt:
          return lhs < rhs;
        case CompareOp::kLe:
          return lhs <= rhs;
        case CompareOp::kGt:
          return lhs > rhs;
        case CompareOp::kGe:
          return lhs >= rhs;
        case CompareOp::kContains:
          return Status::InvalidArgument("CONTAINS on numeric field");
      }
      return Status::Internal("unreachable");
    }
    // String fields.
    const std::string* lhs = nullptr;
    if (expr.field == "task") {
      lhs = &card.task;
    } else if (expr.field == "name") {
      lhs = &card.name;
    } else if (expr.field == "model_id" || expr.field == "id") {
      lhs = &card.model_id;
    } else if (expr.field == "creator") {
      lhs = &card.creator;
    } else if (expr.field == "license") {
      lhs = &card.license;
    } else if (expr.field == "architecture") {
      lhs = &card.architecture;
    } else if (expr.field == "description") {
      lhs = &card.description;
    } else {
      return Status::InvalidArgument("unknown field: " + expr.field);
    }
    if (expr.value.kind != Literal::Kind::kString) {
      return Status::InvalidArgument("field " + expr.field +
                                     " expects a string");
    }
    const std::string& rhs = expr.value.string_value;
    switch (expr.op) {
      case CompareOp::kEq:
        return EqualsIgnoreCase(*lhs, rhs);
      case CompareOp::kNe:
        return !EqualsIgnoreCase(*lhs, rhs);
      case CompareOp::kContains:
        return ToLower(*lhs).find(ToLower(rhs)) != std::string::npos;
      default:
        return Status::InvalidArgument("ordering comparison on string field " +
                                       expr.field);
    }
  }

  const SearchContext& lake_;
  std::unordered_map<std::string, std::set<std::string>> call_sets_;
};

/// Computes ranking scores (higher = better) for the given candidates.
Result<std::vector<RankedModel>> RankCandidates(
    const SearchContext& lake, const Query& query,
    const std::vector<std::string>& candidates, std::string* plan) {
  std::vector<RankedModel> out;
  auto score_all_by_card = [&](auto scorer) -> Status {
    for (const std::string& id : candidates) {
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      auto maybe = scorer(card);
      if (maybe.has_value()) out.push_back(RankedModel{id, *maybe});
    }
    return Status::OK();
  };

  if (!query.has_rank) {
    *plan += "; rank by completeness (default)";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [](const metadata::ModelCard& card) -> std::optional<double> {
          return metadata::CompletenessScore(card);
        }));
  } else if (query.rank.function == "completeness") {
    *plan += "; rank by completeness";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [](const metadata::ModelCard& card) -> std::optional<double> {
          return metadata::CompletenessScore(card);
        }));
  } else if (query.rank.function == "keyword") {
    if (query.rank.args.size() != 1 ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument("keyword ranking expects one string");
    }
    *plan += "; rank by BM25 keyword score";
    MLAKE_ASSIGN_OR_RETURN(
        auto hits,
        lake.KeywordScores(query.rank.args[0].string_value, kAllResults));
    std::unordered_map<std::string, double> score_by_id(hits.begin(),
                                                        hits.end());
    for (const std::string& id : candidates) {
      auto it = score_by_id.find(id);
      out.push_back(RankedModel{id, it == score_by_id.end() ? 0.0
                                                            : it->second});
    }
  } else if (query.rank.function == "behavior_sim" ||
             query.rank.function == "weight_sim") {
    if (query.rank.args.size() != 1 ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument(query.rank.function +
                                     " expects a model id string");
    }
    const std::string& query_id = query.rank.args[0].string_value;
    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    *plan += "; rank by " + query.rank.function +
             " (cosine over lake embeddings)";
    for (const std::string& id : candidates) {
      if (id == query_id) continue;  // a model is not its own answer
      MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, lake.EmbeddingFor(id));
      if (vec.size() != query_vec.size()) continue;
      double dot = 0.0;
      for (size_t i = 0; i < vec.size(); ++i) {
        dot += static_cast<double>(vec[i]) * query_vec[i];
      }
      out.push_back(RankedModel{id, dot});
    }
  } else if (query.rank.function == "hybrid") {
    // Reciprocal-rank fusion of BM25 keyword rank and embedding
    // similarity to a query model — the "hybrid approach, that indexes
    // both metadata and model embeddings" of the paper's §5 indexer
    // roadmap. Args: (keyword text, query model id).
    if (query.rank.args.size() != 2 ||
        query.rank.args[0].kind != Literal::Kind::kString ||
        query.rank.args[1].kind != Literal::Kind::kString) {
      return Status::InvalidArgument(
          "hybrid ranking expects (keyword text, model id)");
    }
    const std::string& text = query.rank.args[0].string_value;
    const std::string& query_id = query.rank.args[1].string_value;
    *plan += "; rank by hybrid RRF (BM25 + embedding similarity)";

    MLAKE_ASSIGN_OR_RETURN(auto keyword_hits,
                           lake.KeywordScores(text, kAllResults));
    std::unordered_map<std::string, size_t> keyword_rank;
    for (size_t i = 0; i < keyword_hits.size(); ++i) {
      keyword_rank[keyword_hits[i].first] = i;
    }

    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    std::vector<std::pair<double, std::string>> by_similarity;
    for (const std::string& id : candidates) {
      if (id == query_id) continue;
      MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, lake.EmbeddingFor(id));
      if (vec.size() != query_vec.size()) continue;
      double dot = 0.0;
      for (size_t i = 0; i < vec.size(); ++i) {
        dot += static_cast<double>(vec[i]) * query_vec[i];
      }
      by_similarity.emplace_back(-dot, id);  // ascending = best first
    }
    std::sort(by_similarity.begin(), by_similarity.end());
    std::unordered_map<std::string, size_t> embedding_rank;
    for (size_t i = 0; i < by_similarity.size(); ++i) {
      embedding_rank[by_similarity[i].second] = i;
    }

    for (const std::string& id : candidates) {
      if (id == query_id) continue;
      double score = 0.0;
      if (auto it = keyword_rank.find(id); it != keyword_rank.end()) {
        score += 1.0 / (kRrfOffset + static_cast<double>(it->second));
      }
      if (auto it = embedding_rank.find(id); it != embedding_rank.end()) {
        score += 1.0 / (kRrfOffset + static_cast<double>(it->second));
      }
      out.push_back(RankedModel{id, score});
    }
  } else if (query.rank.function == "metric") {
    if (query.rank.args.empty() ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument("metric ranking expects benchmark name");
    }
    std::string benchmark = query.rank.args[0].string_value;
    std::string metric = "accuracy";
    if (query.rank.args.size() >= 2 &&
        query.rank.args[1].kind == Literal::Kind::kString) {
      metric = query.rank.args[1].string_value;
    }
    *plan += "; rank by reported metric '" + metric + "' on '" + benchmark +
             "' (models without the metric excluded)";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [&](const metadata::ModelCard& card) -> std::optional<double> {
          for (const metadata::MetricEntry& m : card.metrics) {
            if (m.benchmark == benchmark && m.metric == metric) {
              return m.value;
            }
          }
          return std::nullopt;
        }));
  } else {
    return Status::InvalidArgument("unknown ranking function: " +
                                   query.rank.function);
  }

  std::sort(out.begin(), out.end(),
            [](const RankedModel& a, const RankedModel& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  if (out.size() > query.limit) out.resize(query.limit);
  return out;
}

/// ANN→filter execution: probe the ANN index for a similarity-ordered
/// over-fetch, keep the neighbors that pass the predicate, and escalate
/// the fetch once (x4) if too few survive. Returns nullopt when even
/// the escalated fetch cannot fill the limit while more of the index
/// remains — the caller then falls back to the exact scan plan.
Result<std::optional<QueryResult>> TryAnnFirst(const SearchContext& lake,
                                               const Query& query,
                                               double selectivity,
                                               size_t fetch,
                                               size_t ann_live) {
  const std::string& query_id = query.rank.args[0].string_value;
  MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                         lake.EmbeddingFor(query_id));
  PredicateEvaluator evaluator(lake);
  MLAKE_RETURN_NOT_OK(evaluator.Prepare(*query.where));
  size_t cap = ann_live + 1;  // +1: the query model matches itself
  bool escalated = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t ask = std::min(fetch, cap);
    MLAKE_ASSIGN_OR_RETURN(auto neighbors, lake.NearestModels(query_vec, ask));
    QueryResult result;
    for (const auto& [id, distance] : neighbors) {
      if (id == query_id) continue;  // a model is not its own answer
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      MLAKE_ASSIGN_OR_RETURN(bool keep,
                             evaluator.Evaluate(*query.where, card));
      if (!keep) continue;
      result.models.push_back(RankedModel{id, 1.0 - distance});
      if (result.models.size() >= query.limit) break;
    }
    // Accept when the limit is filled or the index is exhausted;
    // otherwise escalate once, then hand back to the scan plan.
    if (result.models.size() >= query.limit || ask >= cap ||
        neighbors.size() < ask) {
      result.plan = StrFormat(
          "ann-first (est. selectivity %.3f): ANN over-fetch %zu%s; "
          "filter -> %zu; rank by %s",
          selectivity, ask, escalated ? " (escalated)" : "",
          result.models.size(), query.rank.function.c_str());
      return std::optional<QueryResult>(std::move(result));
    }
    fetch = std::min(cap, fetch * 4);
    escalated = true;
  }
  return std::optional<QueryResult>();
}

}  // namespace

Result<bool> EvaluatePredicate(const SearchContext& lake, const Expr& expr,
                               const metadata::ModelCard& card) {
  PredicateEvaluator evaluator(lake);
  MLAKE_RETURN_NOT_OK(evaluator.Prepare(expr));
  return evaluator.Evaluate(expr, card);
}

Result<std::vector<HybridCandidate>> CollectHybridParts(
    const SearchContext& lake, const Query& query,
    const std::vector<float>& query_vec) {
  if (!query.has_rank || query.rank.function != "hybrid" ||
      query.rank.args.size() != 2 ||
      query.rank.args[0].kind != Literal::Kind::kString ||
      query.rank.args[1].kind != Literal::Kind::kString) {
    return Status::InvalidArgument(
        "hybrid parts require a hybrid(keyword text, model id) ranking");
  }
  const std::string& query_id = query.rank.args[1].string_value;

  std::vector<std::string> candidates = lake.AllModelIds();
  if (query.where != nullptr) {
    PredicateEvaluator evaluator(lake);
    MLAKE_RETURN_NOT_OK(evaluator.Prepare(*query.where));
    std::vector<std::string> kept;
    for (const std::string& id : candidates) {
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      MLAKE_ASSIGN_OR_RETURN(bool keep,
                             evaluator.Evaluate(*query.where, card));
      if (keep) kept.push_back(id);
    }
    candidates = std::move(kept);
  }

  std::vector<HybridCandidate> out;
  out.reserve(candidates.size());
  for (const std::string& id : candidates) {
    if (id == query_id) continue;  // a model is not its own answer
    MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, lake.EmbeddingFor(id));
    HybridCandidate c;
    c.id = id;
    if (vec.size() == query_vec.size()) {
      double dot = 0.0;
      for (size_t i = 0; i < vec.size(); ++i) {
        dot += static_cast<double>(vec[i]) * query_vec[i];
      }
      c.has_dot = true;
      c.dot = dot;
    }
    out.push_back(std::move(c));
  }
  return out;
}

double EstimateSelectivity(const Expr& expr,
                           const SearchContext::CatalogStats& stats) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return EstimateSelectivity(*expr.children[0], stats) *
             EstimateSelectivity(*expr.children[1], stats);
    case Expr::Kind::kOr:
      return std::min(1.0, EstimateSelectivity(*expr.children[0], stats) +
                               EstimateSelectivity(*expr.children[1], stats));
    case Expr::Kind::kNot:
      return std::max(0.0,
                      1.0 - EstimateSelectivity(*expr.children[0], stats));
    case Expr::Kind::kCompare: {
      if (stats.num_models == 0) return 1.0 / 3.0;
      auto fit = stats.field_counts.find(expr.field);
      if (fit != stats.field_counts.end() &&
          expr.value.kind == Literal::Kind::kString &&
          (expr.op == CompareOp::kEq || expr.op == CompareOp::kNe)) {
        // Match the histogram the way the evaluator matches cards:
        // case-insensitively.
        size_t matching = 0;
        for (const auto& [value, count] : fit->second) {
          if (EqualsIgnoreCase(value, expr.value.string_value)) {
            matching += count;
          }
        }
        double frac = static_cast<double>(matching) /
                      static_cast<double>(stats.num_models);
        return expr.op == CompareOp::kEq ? frac : 1.0 - frac;
      }
      if (expr.op == CompareOp::kContains) return 0.3;
      return 1.0 / 3.0;  // range / un-histogrammed field prior
    }
    case Expr::Kind::kCall: {
      const std::string& fn = expr.function;
      if (fn == "keyword" || fn == "tag") return 0.2;
      if (fn == "trained_on") return 0.1;
      if (fn == "derived_from") return 0.05;
      return 0.5;
    }
  }
  return 1.0;
}

Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 const Query& query) {
  QueryResult result;

  bool sim_rank = query.has_rank &&
                  (query.rank.function == "behavior_sim" ||
                   query.rank.function == "weight_sim") &&
                  query.rank.args.size() == 1 &&
                  query.rank.args[0].kind == Literal::Kind::kString;

  // Fast path: pure similarity ranking with no predicate delegates top-k
  // to the ANN index (sublinear in lake size).
  if (query.where == nullptr && sim_rank) {
    const std::string& query_id = query.rank.args[0].string_value;
    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    MLAKE_ASSIGN_OR_RETURN(auto neighbors,
                           lake.NearestModels(query_vec, query.limit + 1));
    result.plan = "ANN index top-k (no predicate)";
    for (const auto& [id, distance] : neighbors) {
      if (id == query_id) continue;
      if (result.models.size() >= query.limit) break;
      result.models.push_back(RankedModel{id, 1.0 - distance});
    }
    return result;
  }

  // Cost-based choice for predicate + similarity rank: with catalog
  // statistics available, a low-selectivity predicate (most models
  // pass) is cheaper as ANN→filter — the over-fetch is a small multiple
  // of the limit — while a high-selectivity one stays predicate-first
  // so the ANN never wades through mostly-filtered neighbors.
  std::string plan_prefix;
  if (query.where != nullptr && sim_rank) {
    SearchContext::CatalogStats stats = lake.Stats();
    if (stats.valid && stats.num_models > 0 && stats.ann_live > 0) {
      double sel = EstimateSelectivity(*query.where, stats);
      // Expected over-fetch to surface `limit` survivors: limit/sel.
      // ANN-first only pays off while that stays a small fraction of
      // the lake; otherwise the ANN walk visits most of it anyway and
      // the scan is both exact and no slower.
      double raw_fetch = sel > 0.0
                             ? static_cast<double>(query.limit) / sel
                             : std::numeric_limits<double>::infinity();
      size_t fetch =
          std::max(static_cast<size_t>(std::min(
                       raw_fetch + 1.0,
                       static_cast<double>(stats.num_models))),
                   query.limit + 1);
      if (sel > 0.0 &&
          raw_fetch * 4.0 <= static_cast<double>(stats.num_models)) {
        MLAKE_ASSIGN_OR_RETURN(
            std::optional<QueryResult> ann_result,
            TryAnnFirst(lake, query, sel, fetch, stats.ann_live));
        if (ann_result.has_value()) return *std::move(ann_result);
        plan_prefix = StrFormat(
            "predicate-first (ann-first abandoned, est. selectivity %.3f): ",
            sel);
      } else {
        plan_prefix =
            StrFormat("predicate-first (est. selectivity %.3f): ", sel);
      }
    }
  }

  std::vector<std::string> candidates = lake.AllModelIds();
  result.plan =
      plan_prefix + StrFormat("scan %zu cards", candidates.size());

  if (query.where != nullptr) {
    PredicateEvaluator evaluator(lake);
    MLAKE_RETURN_NOT_OK(evaluator.Prepare(*query.where));
    std::vector<std::string> kept;
    for (const std::string& id : candidates) {
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      MLAKE_ASSIGN_OR_RETURN(bool keep,
                             evaluator.Evaluate(*query.where, card));
      if (keep) kept.push_back(id);
    }
    result.plan += StrFormat("; filter -> %zu", kept.size());
    candidates = std::move(kept);
  }

  MLAKE_ASSIGN_OR_RETURN(
      result.models, RankCandidates(lake, query, candidates, &result.plan));
  return result;
}

Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 std::string_view mlql) {
  MLAKE_ASSIGN_OR_RETURN(Query query, ParseQuery(mlql));
  return ExecuteQuery(lake, query);
}

}  // namespace mlake::search
