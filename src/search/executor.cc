#include "search/executor.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "search/parser.h"

namespace mlake::search {

namespace {

constexpr size_t kAllResults = 1'000'000;  // "no limit" for sub-searches

/// Pre-resolves lake-backed calls (trained_on, keyword, derived_from)
/// once per query so predicate evaluation is a pure per-card check.
class PredicateEvaluator {
 public:
  PredicateEvaluator(const SearchContext& lake) : lake_(lake) {}

  Status Prepare(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
      case Expr::Kind::kNot:
        for (const ExprPtr& child : expr.children) {
          MLAKE_RETURN_NOT_OK(Prepare(*child));
        }
        return Status::OK();
      case Expr::Kind::kCompare:
        return Status::OK();
      case Expr::Kind::kCall:
        return PrepareCall(expr);
    }
    return Status::OK();
  }

  Result<bool> Evaluate(const Expr& expr,
                        const metadata::ModelCard& card) const {
    switch (expr.kind) {
      case Expr::Kind::kAnd: {
        MLAKE_ASSIGN_OR_RETURN(bool left, Evaluate(*expr.children[0], card));
        if (!left) return false;
        return Evaluate(*expr.children[1], card);
      }
      case Expr::Kind::kOr: {
        MLAKE_ASSIGN_OR_RETURN(bool left, Evaluate(*expr.children[0], card));
        if (left) return true;
        return Evaluate(*expr.children[1], card);
      }
      case Expr::Kind::kNot: {
        MLAKE_ASSIGN_OR_RETURN(bool inner, Evaluate(*expr.children[0], card));
        return !inner;
      }
      case Expr::Kind::kCompare:
        return EvaluateCompare(expr, card);
      case Expr::Kind::kCall:
        return EvaluateCall(expr, card);
    }
    return Status::Internal("unreachable");
  }

 private:
  static std::string CallKey(const Expr& expr) {
    std::string key = expr.function;
    for (const Literal& arg : expr.args) {
      key += "|";
      key += arg.kind == Literal::Kind::kString
                 ? arg.string_value
                 : StrFormat("%g", arg.number_value);
    }
    return key;
  }

  Status PrepareCall(const Expr& expr) {
    const std::string& fn = expr.function;
    if (fn == "trained_on") {
      if (expr.args.empty() ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument(
            "trained_on expects a dataset name string");
      }
      double min_overlap = 0.5;
      if (expr.args.size() >= 2 &&
          expr.args[1].kind == Literal::Kind::kNumber) {
        min_overlap = expr.args[1].number_value;
      }
      auto hits = lake_.TrainedOn(expr.args[0].string_value, min_overlap);
      MLAKE_RETURN_NOT_OK(hits.status());
      std::set<std::string>& ids = call_sets_[CallKey(expr)];
      for (const auto& [id, overlap] : hits.ValueUnsafe()) ids.insert(id);
      return Status::OK();
    }
    if (fn == "keyword") {
      if (expr.args.size() != 1 ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument("keyword expects one string");
      }
      auto hits = lake_.KeywordScores(expr.args[0].string_value, kAllResults);
      MLAKE_RETURN_NOT_OK(hits.status());
      std::set<std::string>& ids = call_sets_[CallKey(expr)];
      for (const auto& [id, score] : hits.ValueUnsafe()) {
        if (score > 0.0) ids.insert(id);
      }
      return Status::OK();
    }
    if (fn == "tag" || fn == "derived_from") {
      if (expr.args.size() != 1 ||
          expr.args[0].kind != Literal::Kind::kString) {
        return Status::InvalidArgument(fn + " expects one string");
      }
      return Status::OK();  // evaluated per card
    }
    return Status::InvalidArgument("unknown predicate function: " + fn);
  }

  Result<bool> EvaluateCall(const Expr& expr,
                            const metadata::ModelCard& card) const {
    const std::string& fn = expr.function;
    if (fn == "trained_on" || fn == "keyword") {
      auto it = call_sets_.find(CallKey(expr));
      if (it == call_sets_.end()) {
        return Status::Internal("call not prepared: " + fn);
      }
      return it->second.count(card.model_id) > 0;
    }
    if (fn == "tag") {
      for (const std::string& tag : card.tags) {
        if (EqualsIgnoreCase(tag, expr.args[0].string_value)) return true;
      }
      return false;
    }
    if (fn == "derived_from") {
      return lake_.IsDescendantOf(card.model_id, expr.args[0].string_value);
    }
    return Status::InvalidArgument("unknown predicate function: " + fn);
  }

  Result<bool> EvaluateCompare(const Expr& expr,
                               const metadata::ModelCard& card) const {
    // Numeric fields.
    if (expr.field == "num_params" || expr.field == "completeness") {
      if (expr.value.kind != Literal::Kind::kNumber) {
        return Status::InvalidArgument("field " + expr.field +
                                       " expects a number");
      }
      double lhs = expr.field == "num_params"
                       ? static_cast<double>(card.num_params)
                       : metadata::CompletenessScore(card);
      double rhs = expr.value.number_value;
      switch (expr.op) {
        case CompareOp::kEq:
          return lhs == rhs;
        case CompareOp::kNe:
          return lhs != rhs;
        case CompareOp::kLt:
          return lhs < rhs;
        case CompareOp::kLe:
          return lhs <= rhs;
        case CompareOp::kGt:
          return lhs > rhs;
        case CompareOp::kGe:
          return lhs >= rhs;
        case CompareOp::kContains:
          return Status::InvalidArgument("CONTAINS on numeric field");
      }
      return Status::Internal("unreachable");
    }
    // String fields.
    const std::string* lhs = nullptr;
    if (expr.field == "task") {
      lhs = &card.task;
    } else if (expr.field == "name") {
      lhs = &card.name;
    } else if (expr.field == "model_id" || expr.field == "id") {
      lhs = &card.model_id;
    } else if (expr.field == "creator") {
      lhs = &card.creator;
    } else if (expr.field == "license") {
      lhs = &card.license;
    } else if (expr.field == "architecture") {
      lhs = &card.architecture;
    } else if (expr.field == "description") {
      lhs = &card.description;
    } else {
      return Status::InvalidArgument("unknown field: " + expr.field);
    }
    if (expr.value.kind != Literal::Kind::kString) {
      return Status::InvalidArgument("field " + expr.field +
                                     " expects a string");
    }
    const std::string& rhs = expr.value.string_value;
    switch (expr.op) {
      case CompareOp::kEq:
        return EqualsIgnoreCase(*lhs, rhs);
      case CompareOp::kNe:
        return !EqualsIgnoreCase(*lhs, rhs);
      case CompareOp::kContains:
        return ToLower(*lhs).find(ToLower(rhs)) != std::string::npos;
      default:
        return Status::InvalidArgument("ordering comparison on string field " +
                                       expr.field);
    }
  }

  const SearchContext& lake_;
  std::unordered_map<std::string, std::set<std::string>> call_sets_;
};

/// Computes ranking scores (higher = better) for the given candidates.
Result<std::vector<RankedModel>> RankCandidates(
    const SearchContext& lake, const Query& query,
    const std::vector<std::string>& candidates, std::string* plan) {
  std::vector<RankedModel> out;
  auto score_all_by_card = [&](auto scorer) -> Status {
    for (const std::string& id : candidates) {
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      auto maybe = scorer(card);
      if (maybe.has_value()) out.push_back(RankedModel{id, *maybe});
    }
    return Status::OK();
  };

  if (!query.has_rank) {
    *plan += "; rank by completeness (default)";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [](const metadata::ModelCard& card) -> std::optional<double> {
          return metadata::CompletenessScore(card);
        }));
  } else if (query.rank.function == "completeness") {
    *plan += "; rank by completeness";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [](const metadata::ModelCard& card) -> std::optional<double> {
          return metadata::CompletenessScore(card);
        }));
  } else if (query.rank.function == "keyword") {
    if (query.rank.args.size() != 1 ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument("keyword ranking expects one string");
    }
    *plan += "; rank by BM25 keyword score";
    MLAKE_ASSIGN_OR_RETURN(
        auto hits,
        lake.KeywordScores(query.rank.args[0].string_value, kAllResults));
    std::unordered_map<std::string, double> score_by_id(hits.begin(),
                                                        hits.end());
    for (const std::string& id : candidates) {
      auto it = score_by_id.find(id);
      out.push_back(RankedModel{id, it == score_by_id.end() ? 0.0
                                                            : it->second});
    }
  } else if (query.rank.function == "behavior_sim" ||
             query.rank.function == "weight_sim") {
    if (query.rank.args.size() != 1 ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument(query.rank.function +
                                     " expects a model id string");
    }
    const std::string& query_id = query.rank.args[0].string_value;
    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    *plan += "; rank by " + query.rank.function +
             " (cosine over lake embeddings)";
    for (const std::string& id : candidates) {
      if (id == query_id) continue;  // a model is not its own answer
      MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, lake.EmbeddingFor(id));
      if (vec.size() != query_vec.size()) continue;
      double dot = 0.0;
      for (size_t i = 0; i < vec.size(); ++i) {
        dot += static_cast<double>(vec[i]) * query_vec[i];
      }
      out.push_back(RankedModel{id, dot});
    }
  } else if (query.rank.function == "hybrid") {
    // Reciprocal-rank fusion of BM25 keyword rank and embedding
    // similarity to a query model — the "hybrid approach, that indexes
    // both metadata and model embeddings" of the paper's §5 indexer
    // roadmap. Args: (keyword text, query model id).
    if (query.rank.args.size() != 2 ||
        query.rank.args[0].kind != Literal::Kind::kString ||
        query.rank.args[1].kind != Literal::Kind::kString) {
      return Status::InvalidArgument(
          "hybrid ranking expects (keyword text, model id)");
    }
    const std::string& text = query.rank.args[0].string_value;
    const std::string& query_id = query.rank.args[1].string_value;
    *plan += "; rank by hybrid RRF (BM25 + embedding similarity)";

    MLAKE_ASSIGN_OR_RETURN(auto keyword_hits,
                           lake.KeywordScores(text, kAllResults));
    std::unordered_map<std::string, size_t> keyword_rank;
    for (size_t i = 0; i < keyword_hits.size(); ++i) {
      keyword_rank[keyword_hits[i].first] = i;
    }

    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    std::vector<std::pair<double, std::string>> by_similarity;
    for (const std::string& id : candidates) {
      if (id == query_id) continue;
      MLAKE_ASSIGN_OR_RETURN(std::vector<float> vec, lake.EmbeddingFor(id));
      if (vec.size() != query_vec.size()) continue;
      double dot = 0.0;
      for (size_t i = 0; i < vec.size(); ++i) {
        dot += static_cast<double>(vec[i]) * query_vec[i];
      }
      by_similarity.emplace_back(-dot, id);  // ascending = best first
    }
    std::sort(by_similarity.begin(), by_similarity.end());
    std::unordered_map<std::string, size_t> embedding_rank;
    for (size_t i = 0; i < by_similarity.size(); ++i) {
      embedding_rank[by_similarity[i].second] = i;
    }

    constexpr double kRrfOffset = 10.0;
    for (const std::string& id : candidates) {
      if (id == query_id) continue;
      double score = 0.0;
      if (auto it = keyword_rank.find(id); it != keyword_rank.end()) {
        score += 1.0 / (kRrfOffset + static_cast<double>(it->second));
      }
      if (auto it = embedding_rank.find(id); it != embedding_rank.end()) {
        score += 1.0 / (kRrfOffset + static_cast<double>(it->second));
      }
      out.push_back(RankedModel{id, score});
    }
  } else if (query.rank.function == "metric") {
    if (query.rank.args.empty() ||
        query.rank.args[0].kind != Literal::Kind::kString) {
      return Status::InvalidArgument("metric ranking expects benchmark name");
    }
    std::string benchmark = query.rank.args[0].string_value;
    std::string metric = "accuracy";
    if (query.rank.args.size() >= 2 &&
        query.rank.args[1].kind == Literal::Kind::kString) {
      metric = query.rank.args[1].string_value;
    }
    *plan += "; rank by reported metric '" + metric + "' on '" + benchmark +
             "' (models without the metric excluded)";
    MLAKE_RETURN_NOT_OK(score_all_by_card(
        [&](const metadata::ModelCard& card) -> std::optional<double> {
          for (const metadata::MetricEntry& m : card.metrics) {
            if (m.benchmark == benchmark && m.metric == metric) {
              return m.value;
            }
          }
          return std::nullopt;
        }));
  } else {
    return Status::InvalidArgument("unknown ranking function: " +
                                   query.rank.function);
  }

  std::sort(out.begin(), out.end(),
            [](const RankedModel& a, const RankedModel& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  if (out.size() > query.limit) out.resize(query.limit);
  return out;
}

}  // namespace

Result<bool> EvaluatePredicate(const SearchContext& lake, const Expr& expr,
                               const metadata::ModelCard& card) {
  PredicateEvaluator evaluator(lake);
  MLAKE_RETURN_NOT_OK(evaluator.Prepare(expr));
  return evaluator.Evaluate(expr, card);
}

Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 const Query& query) {
  QueryResult result;

  // Fast path: pure similarity ranking with no predicate delegates top-k
  // to the ANN index (sublinear in lake size).
  if (query.where == nullptr && query.has_rank &&
      (query.rank.function == "behavior_sim" ||
       query.rank.function == "weight_sim") &&
      query.rank.args.size() == 1 &&
      query.rank.args[0].kind == Literal::Kind::kString) {
    const std::string& query_id = query.rank.args[0].string_value;
    MLAKE_ASSIGN_OR_RETURN(std::vector<float> query_vec,
                           lake.EmbeddingFor(query_id));
    MLAKE_ASSIGN_OR_RETURN(auto neighbors,
                           lake.NearestModels(query_vec, query.limit + 1));
    result.plan = "ANN index top-k (no predicate)";
    for (const auto& [id, distance] : neighbors) {
      if (id == query_id) continue;
      if (result.models.size() >= query.limit) break;
      result.models.push_back(RankedModel{id, 1.0 - distance});
    }
    return result;
  }

  std::vector<std::string> candidates = lake.AllModelIds();
  result.plan = StrFormat("scan %zu cards", candidates.size());

  if (query.where != nullptr) {
    PredicateEvaluator evaluator(lake);
    MLAKE_RETURN_NOT_OK(evaluator.Prepare(*query.where));
    std::vector<std::string> kept;
    for (const std::string& id : candidates) {
      MLAKE_ASSIGN_OR_RETURN(metadata::ModelCard card, lake.CardFor(id));
      MLAKE_ASSIGN_OR_RETURN(bool keep,
                             evaluator.Evaluate(*query.where, card));
      if (keep) kept.push_back(id);
    }
    result.plan += StrFormat("; filter -> %zu", kept.size());
    candidates = std::move(kept);
  }

  MLAKE_ASSIGN_OR_RETURN(
      result.models, RankCandidates(lake, query, candidates, &result.plan));
  return result;
}

Result<QueryResult> ExecuteQuery(const SearchContext& lake,
                                 std::string_view mlql) {
  MLAKE_ASSIGN_OR_RETURN(Query query, ParseQuery(mlql));
  return ExecuteQuery(lake, query);
}

}  // namespace mlake::search
