#ifndef MLAKE_SEARCH_CONTEXT_H_
#define MLAKE_SEARCH_CONTEXT_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "index/inverted_index.h"
#include "index/vector_index.h"
#include "metadata/model_card.h"

namespace mlake::search {

/// Cross-shard context a scatter-gather router attaches to one MLQL
/// query so a single shard scores its documents exactly as a merged
/// lake would:
///   - `embeddings`: hint vectors for model ids the shard does not own
///     (consulted only after the local lookup misses — e.g. the query
///     model of a behavior_sim rank living on another shard).
///   - global BM25 corpus statistics for `bm25_text`: KeywordScores on
///     that exact text is answered via
///     InvertedIndex::SearchWithStats(bm25_stats), which makes every
///     local document's score bit-identical to the merged corpus.
/// Default-constructed overlay = no hints, identical to a plain query.
struct SearchOverlay {
  std::map<std::string, std::vector<float>> embeddings;
  bool has_bm25 = false;
  std::string bm25_text;
  index::Bm25Stats bm25_stats;
};

/// The lake services the MLQL executor needs; implemented by
/// `core::ModelLake`. Abstracting the surface keeps the query engine
/// testable against a fake lake and free of a dependency cycle.
class SearchContext {
 public:
  /// Catalog statistics backing the executor's cost-based planner.
  /// `valid == false` means the context maintains no statistics; the
  /// executor then keeps the classic predicate-first plan.
  struct CatalogStats {
    bool valid = false;
    /// Searchable (non-degraded) models.
    size_t num_models = 0;
    /// Live element counts of the search indexes.
    size_t ann_live = 0;
    size_t bm25_live = 0;
    /// Value histogram per low-cardinality card field ("task",
    /// "creator", "license", "architecture"): raw value -> model count.
    /// Selectivity of an equality predicate is matching count / total.
    std::map<std::string, std::map<std::string, size_t>> field_counts;
  };

  virtual ~SearchContext() = default;

  /// Statistics for cost-based planning. The default reports none
  /// (`valid == false`), which disables ANN-first planning.
  virtual CatalogStats Stats() const { return {}; }

  /// Every model id in the lake.
  virtual std::vector<std::string> AllModelIds() const = 0;

  /// The (possibly incomplete) card for a model.
  virtual Result<metadata::ModelCard> CardFor(
      const std::string& id) const = 0;

  /// The lake embedding of a model (for similarity ranking).
  virtual Result<std::vector<float>> EmbeddingFor(
      const std::string& id) const = 0;

  /// ANN search over model embeddings: (model id, distance), ascending.
  virtual Result<std::vector<std::pair<std::string, float>>>
  NearestModels(const std::vector<float>& query, size_t k) const = 0;

  /// BM25 keyword scores over cards: (model id, score), descending.
  virtual Result<std::vector<std::pair<std::string, double>>> KeywordScores(
      const std::string& text, size_t k) const = 0;

  /// Models trained on `dataset` (exact name, or shard overlap >=
  /// min_overlap when the lake tracks shards): (model id, overlap).
  virtual Result<std::vector<std::pair<std::string, double>>> TrainedOn(
      const std::string& dataset, double min_overlap) const = 0;

  /// Whether `id` is a (transitive) descendant of `ancestor` in the
  /// version graph.
  virtual bool IsDescendantOf(const std::string& id,
                              const std::string& ancestor) const = 0;
};

}  // namespace mlake::search

#endif  // MLAKE_SEARCH_CONTEXT_H_
