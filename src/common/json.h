#ifndef MLAKE_COMMON_JSON_H_
#define MLAKE_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// A JSON document node.
///
/// Objects preserve insertion order (model cards render in a stable,
/// human-reviewable field order). Numbers are stored as double; integer
/// accessors round-trip values up to 2^53 exactly, which covers every
/// counter in mlake.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  /// Constructs null.
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(uint64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}

  /// Factory helpers for composite construction.
  static Json MakeArray() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json MakeObject() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; aborts on type mismatch (programming error).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt64() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// --- Object helpers ---

  /// Returns the member value, or nullptr when absent. Requires object.
  const Json* Find(std::string_view key) const;

  /// Sets (replacing any existing member with the same key). Requires
  /// object (a null value silently becomes an object for builder
  /// ergonomics).
  Json& Set(std::string_view key, Json value);

  /// Member presence.
  bool Contains(std::string_view key) const { return Find(key) != nullptr; }

  /// Typed lookups with defaults; tolerate absent members and wrong types.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  int64_t GetInt64(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// --- Array helpers ---

  /// Appends. Requires array (a null value silently becomes an array).
  Json& Append(Json value);
  size_t size() const;

  /// Serializes. `indent` 0 produces compact output; > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document. Returns Corruption on malformed input.
  static Result<Json> Parse(std::string_view text);

  /// Deep structural equality (number equality is exact).
  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mlake

#endif  // MLAKE_COMMON_JSON_H_
