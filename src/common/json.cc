#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace mlake {

bool Json::AsBool() const {
  MLAKE_CHECK(is_bool()) << "Json::AsBool on " << static_cast<int>(type_);
  return bool_;
}

double Json::AsDouble() const {
  MLAKE_CHECK(is_number()) << "Json::AsDouble on non-number";
  return number_;
}

int64_t Json::AsInt64() const {
  MLAKE_CHECK(is_number()) << "Json::AsInt64 on non-number";
  return static_cast<int64_t>(std::llround(number_));
}

const std::string& Json::AsString() const {
  MLAKE_CHECK(is_string()) << "Json::AsString on non-string";
  return string_;
}

const Json::Array& Json::AsArray() const {
  MLAKE_CHECK(is_array()) << "Json::AsArray on non-array";
  return array_;
}

Json::Array& Json::AsArray() {
  MLAKE_CHECK(is_array()) << "Json::AsArray on non-array";
  return array_;
}

const Json::Object& Json::AsObject() const {
  MLAKE_CHECK(is_object()) << "Json::AsObject on non-object";
  return object_;
}

Json::Object& Json::AsObject() {
  MLAKE_CHECK(is_object()) << "Json::AsObject on non-object";
  return object_;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::Set(std::string_view key, Json value) {
  if (is_null()) type_ = Type::kObject;
  MLAKE_CHECK(is_object()) << "Json::Set on non-object";
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return *this;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_string()) return fallback;
  return v->string_;
}

double Json::GetDouble(std::string_view key, double fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->number_;
}

int64_t Json::GetInt64(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->AsInt64();
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_bool()) return fallback;
  return v->bool_;
}

Json& Json::Append(Json value) {
  if (is_null()) type_ = Type::kArray;
  MLAKE_CHECK(is_array()) << "Json::Append on non-array";
  array_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

namespace {

void EscapeStringTo(std::string* out, const std::string& s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void NumberTo(std::string* out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; serialize as null like most tolerant emitters.
    out->append("null");
    return;
  }
  double rounded = std::nearbyint(d);
  if (rounded == d && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      NumberTo(out, number_);
      return;
    case Type::kString:
      EscapeStringTo(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        EscapeStringTo(out, object_[i].first);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    Json value;
    MLAKE_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) {
    return Status::Corruption(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        MLAKE_RETURN_NOT_OK(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Json(true), out);
      case 'f':
        return ParseLiteral("false", Json(false), out);
      case 'n':
        return ParseLiteral("null", Json(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, Json value, Json* out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    *out = Json(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are passed through
            // as two separately-encoded code units, adequate for mlake's
            // ASCII-dominated metadata).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Json* out, int depth) {
    Consume('[');
    *out = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json element;
      MLAKE_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(Json* out, int depth) {
    Consume('{');
    *out = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      MLAKE_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      Json value;
      MLAKE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

}  // namespace mlake
