#include "common/fs.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "common/file_util.h"
#include "common/string_util.h"

namespace mlake {

namespace stdfs = std::filesystem;

namespace {

/// Passthrough to the free functions in file_util.h.
class RealFsImpl final : public Fs {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    return mlake::ReadFile(path);
  }
  bool FileExists(const std::string& path) override {
    return mlake::FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return mlake::FileSize(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return mlake::ListDir(dir);
  }
  Result<std::vector<std::string>> ListSubdirs(
      const std::string& dir) override {
    std::error_code ec;
    stdfs::directory_iterator it(dir, ec);
    if (ec) return Status::IOError("cannot list: " + dir);
    std::vector<std::string> names;
    for (const auto& entry : it) {
      std::error_code ec2;
      if (entry.is_directory(ec2)) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }
  Result<MmapFile> Mmap(const std::string& path) override {
    return MmapFile::Open(path);
  }
  Status WriteFile(const std::string& path, std::string_view data) override {
    return mlake::WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, std::string_view data) override {
    return mlake::AppendFile(path, data);
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    std::error_code ec;
    stdfs::resize_file(path, size, ec);
    if (ec) return Status::IOError("cannot truncate: " + path);
    return Status::OK();
  }
  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    stdfs::rename(from, to, ec);
    if (ec) return Status::IOError("rename failed: " + from + " -> " + to);
    return Status::OK();
  }
  Status RemoveFile(const std::string& path) override {
    return mlake::RemoveFile(path);
  }
  Status CreateDirs(const std::string& path) override {
    return mlake::CreateDirs(path);
  }
  Status SyncFile(const std::string& path) override {
    return mlake::SyncFile(path);
  }
  Status SyncDir(const std::string& path) override {
    return mlake::SyncDir(path);
  }
};

}  // namespace

Fs* RealFs() {
  static RealFsImpl* real = new RealFsImpl();
  return real;
}

Status WriteFileAtomic(Fs* fs, const std::string& path,
                       std::string_view data) {
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + StrFormat(".tmp.%llu",
                                     static_cast<unsigned long long>(
                                         counter.fetch_add(1)));
  // Any failure after the temp file may exist must remove it: a crash
  // can still strand one (cleaned by recovery on Open), but plain error
  // paths must not.
  Status st = fs->WriteFile(tmp, data);
  // Sync the bytes before publishing the name: rename is atomic for
  // readers but not durable, and journaled filesystems may commit the
  // rename before the data, leaving a valid name over empty content
  // after a crash.
  if (st.ok() && FsyncEnabled()) st = fs->SyncFile(tmp);
  if (st.ok()) st = fs->Rename(tmp, path);
  if (!st.ok()) {
    if (fs->FileExists(tmp)) fs->RemoveFile(tmp);
    return st;
  }
  if (FsyncEnabled()) {
    std::string dir = stdfs::path(path).parent_path().string();
    MLAKE_RETURN_NOT_OK(fs->SyncDir(dir));
  }
  return Status::OK();
}

bool IsTmpFileName(std::string_view name) {
  return name.find(".tmp.") != std::string_view::npos;
}

Status RemoveStrayTmpFiles(Fs* fs, const std::string& dir, size_t* removed) {
  if (!fs->FileExists(dir)) return Status::OK();
  MLAKE_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  for (const std::string& name : names) {
    if (!IsTmpFileName(name)) continue;
    MLAKE_RETURN_NOT_OK(fs->RemoveFile(JoinPath(dir, name)));
    if (removed != nullptr) ++*removed;
  }
  return Status::OK();
}

}  // namespace mlake
