#include "common/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mlake::kernels {

namespace {

const Backend* ResolveAuto() {
  if (const Backend* simd = internal::Avx2BackendIfSupported()) return simd;
  return internal::ScalarBackend();
}

const Backend* ResolveFromEnv() {
  const char* request = std::getenv("MLAKE_KERNELS");
  if (request == nullptr || std::strcmp(request, "auto") == 0) {
    return ResolveAuto();
  }
  if (std::strcmp(request, "scalar") == 0) return internal::ScalarBackend();
  if (std::strcmp(request, "avx2") == 0) {
    if (const Backend* simd = internal::Avx2BackendIfSupported()) return simd;
    std::fprintf(stderr,
                 "mlake: MLAKE_KERNELS=avx2 but this host/build cannot run "
                 "AVX2 kernels; falling back to scalar\n");
    return internal::ScalarBackend();
  }
  std::fprintf(stderr,
               "mlake: unknown MLAKE_KERNELS=%s (want scalar|avx2|auto); "
               "using auto\n",
               request);
  return ResolveAuto();
}

std::atomic<const Backend*>& ActiveSlot() {
  static std::atomic<const Backend*> slot{ResolveFromEnv()};
  return slot;
}

}  // namespace

const Backend& Active() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

const Backend& Scalar() { return *internal::ScalarBackend(); }

const Backend* Simd() { return internal::Avx2BackendIfSupported(); }

bool ForceBackend(const char* name) {
  const Backend* next = nullptr;
  if (std::strcmp(name, "scalar") == 0) {
    next = internal::ScalarBackend();
  } else if (std::strcmp(name, "avx2") == 0) {
    next = internal::Avx2BackendIfSupported();
  } else if (std::strcmp(name, "auto") == 0) {
    next = ResolveAuto();
  }
  if (next == nullptr) return false;
  ActiveSlot().store(next, std::memory_order_relaxed);
  return true;
}

}  // namespace mlake::kernels
