// AVX2+FMA backend. This translation unit is the only one compiled
// with -mavx2 -mfma (see src/common/CMakeLists.txt); the #if below
// turns it into a stub when the toolchain cannot target AVX2, and the
// runtime cpuid check keeps it unselected on hosts that cannot run it.
// No alignment is assumed anywhere (loadu/storeu + scalar tails).

#include "common/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace mlake::kernels {
namespace {

inline float Hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

float DotAvx2(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                       _mm256_add_ps(acc2, acc3));
  float acc = Hsum(acc0);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float L2SqAvx2(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = Hsum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float CosineDistanceAvx2(const float* a, const float* b, int64_t n) {
  // Single pass: dot + both squared norms share the loads.
  __m256 accd = _mm256_setzero_ps();
  __m256 acca = _mm256_setzero_ps();
  __m256 accb = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    accd = _mm256_fmadd_ps(va, vb, accd);
    acca = _mm256_fmadd_ps(va, va, acca);
    accb = _mm256_fmadd_ps(vb, vb, accb);
  }
  float dot = Hsum(accd);
  float na = Hsum(acca);
  float nb = Hsum(accb);
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

void AxpyAvx2(float s, const float* x, float* y, int64_t n) {
  __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(vs, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void ScaleInPlaceAvx2(float* x, float s, int64_t n) {
  __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void AddInPlaceAvx2(float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void SubInPlaceAvx2(float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] -= b[i];
}

void MulInPlaceAvx2(float* a, const float* b, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
}

/// 4-rows x 16-columns register-blocked panel: 8 FMA accumulators live
/// across the whole k loop, B rows are loaded once per 4 output rows.
inline void GemmMicro4x16(int64_t k, int64_t n, const float* a0,
                          const float* a1, const float* a2, const float* a3,
                          const float* b, float* c0, float* c1, float* c2,
                          float* c3) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    __m256 b0 = _mm256_loadu_ps(b + kk * n);
    __m256 b1 = _mm256_loadu_ps(b + kk * n + 8);
    __m256 av = _mm256_set1_ps(a0[kk]);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_set1_ps(a1[kk]);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_set1_ps(a2[kk]);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_set1_ps(a3[kk]);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  _mm256_storeu_ps(c0, acc00);
  _mm256_storeu_ps(c0 + 8, acc01);
  _mm256_storeu_ps(c1, acc10);
  _mm256_storeu_ps(c1 + 8, acc11);
  _mm256_storeu_ps(c2, acc20);
  _mm256_storeu_ps(c2 + 8, acc21);
  _mm256_storeu_ps(c3, acc30);
  _mm256_storeu_ps(c3 + 8, acc31);
}

inline void GemmMicro1x16(int64_t k, int64_t n, const float* a0,
                          const float* b, float* c0) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    __m256 av = _mm256_set1_ps(a0[kk]);
    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n), acc0);
    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + 8), acc1);
  }
  _mm256_storeu_ps(c0, acc0);
  _mm256_storeu_ps(c0 + 8, acc1);
}

inline void GemmMicro1x8(int64_t k, int64_t n, const float* a0,
                         const float* b, float* c0) {
  __m256 acc = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < k; ++kk) {
    acc = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]),
                          _mm256_loadu_ps(b + kk * n), acc);
  }
  _mm256_storeu_ps(c0, acc);
}

void GemmAvx2(int64_t m, int64_t n, int64_t k, const float* a,
              const float* b, float* c) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
      GemmMicro4x16(k, n, a + i * k, a + (i + 1) * k, a + (i + 2) * k,
                    a + (i + 3) * k, b + j, c + i * n + j,
                    c + (i + 1) * n + j, c + (i + 2) * n + j,
                    c + (i + 3) * n + j);
    }
    for (; i < m; ++i) {
      GemmMicro1x16(k, n, a + i * k, b + j, c + i * n + j);
    }
  }
  for (; j + 8 <= n; j += 8) {
    for (int64_t i = 0; i < m; ++i) {
      GemmMicro1x8(k, n, a + i * k, b + j, c + i * n + j);
    }
  }
  if (j < n) {
    // Scalar column tail (< 8 columns).
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t jj = j; jj < n; ++jj) crow[jj] = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        float av = arow[kk];
        const float* brow = b + kk * n;
        for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

const Backend kAvx2Backend = {
    "avx2",        DotAvx2,          L2SqAvx2,       CosineDistanceAvx2,
    AxpyAvx2,      ScaleInPlaceAvx2, AddInPlaceAvx2, SubInPlaceAvx2,
    MulInPlaceAvx2, GemmAvx2,
};

}  // namespace

namespace internal {
const Backend* Avx2BackendIfSupported() {
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Backend;
  }
  return nullptr;
}
}  // namespace internal

}  // namespace mlake::kernels

#else  // !(__AVX2__ && __FMA__)

namespace mlake::kernels::internal {
const Backend* Avx2BackendIfSupported() { return nullptr; }
}  // namespace mlake::kernels::internal

#endif
