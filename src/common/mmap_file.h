#ifndef MLAKE_COMMON_MMAP_FILE_H_
#define MLAKE_COMMON_MMAP_FILE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// Read-only memory-mapped file.
///
/// The mapping is private and page-cache backed: bytes are faulted in
/// on demand and can be reclaimed by the kernel at any time, so holding
/// a view over a multi-megabyte checkpoint costs O(1) heap. The file
/// descriptor is closed immediately after mapping (the mapping keeps
/// the inode alive), and the destructor unmaps.
///
/// On platforms without mmap (or when the filesystem refuses it) `Open`
/// returns an error; callers are expected to fall back to a copying
/// read — see `BlobStore::GetView`.
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file maps to a valid empty view.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  /// True once `Open` succeeded (including the empty-file case).
  bool valid() const { return valid_; }

  std::string_view bytes() const {
    return {static_cast<const char*>(data_), size_};
  }
  size_t size() const { return size_; }

 private:
  void Reset();

  void* data_ = nullptr;
  size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace mlake

#endif  // MLAKE_COMMON_MMAP_FILE_H_
