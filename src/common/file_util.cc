#include "common/file_util.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/fs.h"
#include "common/string_util.h"

namespace mlake {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string data;
  in.seekg(0, std::ios::end);
  std::streampos size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat: " + path);
  data.resize(static_cast<size_t>(size));
  in.seekg(0, std::ios::beg);
  if (size > 0) in.read(data.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  return data;
}

Status WriteFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

bool FsyncEnabled() { return std::getenv("MLAKE_NO_FSYNC") == nullptr; }

#if defined(__unix__) || defined(__APPLE__)
namespace {
Status SyncFd(const std::string& path, int flags, const char* what) {
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IOError(std::string("cannot open for ") + what + ": " +
                           path);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError(std::string(what) + " failed: " + path);
  }
  return Status::OK();
}
}  // namespace

Status SyncFile(const std::string& path) {
  return SyncFd(path, O_RDONLY, "fsync");
}

Status SyncDir(const std::string& path) {
  return SyncFd(path.empty() ? "." : path, O_RDONLY | O_DIRECTORY,
                "dir fsync");
}
#else
Status SyncFile(const std::string&) { return Status::OK(); }
Status SyncDir(const std::string&) { return Status::OK(); }
#endif

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  // Refactored onto the Fs seam so fault injection covers every step
  // (temp write, fsync, rename, dir fsync) — see fs.h.
  return WriteFileAtomic(RealFs(), path, data);
}

Status AppendFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short append: " + path);
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Result<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat: " + path);
  return size;
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("cannot create dirs: " + path);
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("cannot remove: " + path);
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IOError("cannot remove file: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot list: " + dir);
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + b;
  return a + "/" + b;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IOError("no temp dir");
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        base / StrFormat("%s-%d-%llu", prefix.c_str(), attempt,
                         static_cast<unsigned long long>(
                             counter.fetch_add(1)));
    if (fs::create_directory(candidate, ec)) {
      return candidate.string();
    }
  }
  return Status::IOError("cannot create temp dir");
}

}  // namespace mlake
