#include "common/status.h"

namespace mlake {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += state_->message;
  return Status(state_->code, std::move(msg));
}

}  // namespace mlake
