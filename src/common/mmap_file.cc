#include "common/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MLAKE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MLAKE_HAVE_MMAP 0
#endif

namespace mlake {

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      valid_(std::exchange(other.valid_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    valid_ = std::exchange(other.valid_, false);
  }
  return *this;
}

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() {
#if MLAKE_HAVE_MMAP
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
#if MLAKE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat for mmap: " + path);
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("mmap failed: " + path);
    }
    file.data_ = data;
  }
  ::close(fd);
  file.valid_ = true;
  return file;
#else
  return Status::Unimplemented("mmap not available on this platform: " +
                               path);
#endif
}

}  // namespace mlake
