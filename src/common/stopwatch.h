#ifndef MLAKE_COMMON_STOPWATCH_H_
#define MLAKE_COMMON_STOPWATCH_H_

#include <chrono>

namespace mlake {

/// Wall-clock stopwatch used by the benchmark harnesses to report
/// per-stage timings.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mlake

#endif  // MLAKE_COMMON_STOPWATCH_H_
