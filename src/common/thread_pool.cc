#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace mlake {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskGroup::Add(std::function<Status()> fn) {
  size_t index = added_++;
  waited_ = false;
  auto state = state_;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->pending;
    if (state->statuses.size() <= index) state->statuses.resize(index + 1);
  }
  auto run = [state, index, fn = std::move(fn)] {
    Status st;
    try {
      st = fn();
    } catch (const std::exception& e) {
      st = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      st = Status::Internal("task threw a non-std exception");
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->statuses[index] = std::move(st);
    if (--state->pending == 0) state->done_cv.notify_all();
  };
  if (pool_ == nullptr) {
    run();
  } else {
    pool_->Submit(std::move(run));
  }
}

Status TaskGroup::Wait() {
  if (waited_) return Status::OK();
  // Help drain the pool while our tasks are outstanding, so a TaskGroup
  // joined from inside a pool task cannot deadlock the pool.
  if (pool_ != nullptr) {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state_->mu);
        if (state_->pending == 0) break;
      }
      if (!pool_->RunOneTask()) break;  // queue empty: just block below
    }
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done_cv.wait(lock, [this] { return state_->pending == 0; });
  waited_ = true;
  for (const Status& st : state_->statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

namespace internal {

Status ParallelForImpl(const ExecutionContext& ctx, size_t begin, size_t end,
                       const std::function<Status(size_t)>& fn) {
  if (begin >= end) return Status::OK();
  size_t n = end - begin;
  size_t shards = static_cast<size_t>(std::max(1, ctx.parallelism()));
  shards = std::min(shards, n);

  auto run_range = [&fn](size_t lo, size_t hi) -> Status {
    for (size_t i = lo; i < hi; ++i) {
      // Stop this shard at the first error; other shards still run to
      // completion (they own disjoint indices, so that is safe), and
      // Wait() reports the lowest-shard error deterministically.
      MLAKE_RETURN_NOT_OK(fn(i));
    }
    return Status::OK();
  };

  if (shards == 1) return run_range(begin, end);

  // Static partition: shard s covers a contiguous range whose bounds
  // depend only on (n, shards) — never on scheduling.
  TaskGroup group(ctx.pool.get());
  size_t chunk = n / shards;
  size_t rem = n % shards;
  size_t lo = begin;
  for (size_t s = 0; s < shards; ++s) {
    size_t len = chunk + (s < rem ? 1 : 0);
    size_t hi = lo + len;
    group.Add([run_range, lo, hi] { return run_range(lo, hi); });
    lo = hi;
  }
  return group.Wait();
}

}  // namespace internal

}  // namespace mlake
