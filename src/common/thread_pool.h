#ifndef MLAKE_COMMON_THREAD_POOL_H_
#define MLAKE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace mlake {

/// Fixed-size worker pool — the lake's shared execution substrate.
///
/// Everything parallel in mlake (lake generation, batched embedding,
/// HNSW bulk build, heritage distance matrices, index rebuild) runs on
/// one of these via `ParallelFor` / `TaskGroup`. The pool itself is a
/// plain task queue; determinism is a property of how work is
/// partitioned (statically, by index) and reduced (in index order), not
/// of the pool — see DESIGN.md "Threading model & determinism".
///
/// Thread-safety: `Submit` may be called from any thread, including
/// from inside a pool task (tasks never block on other tasks here, so
/// no deadlock by construction — ParallelFor/TaskGroup have the calling
/// thread steal queued work while it waits).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; num_threads <= 0 means
  /// hardware_concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (wrap exceptions yourself;
  /// TaskGroup below does).
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread if any is available.
  /// Returns false when the queue is empty. Used by waiters to make
  /// progress instead of blocking (work-stealing join).
  bool RunOneTask();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// A batch of heterogeneous jobs with a deterministic error contract:
/// `Wait()` blocks until every added task finished and returns the
/// first non-OK status in *submission order* (not completion order), so
/// the reported error is identical at any thread count. Exceptions
/// escaping a task are captured as Status::Internal.
///
/// One TaskGroup is used by one "owner" thread (Add/Wait are not
/// thread-safe against each other); the tasks themselves run anywhere.
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline in `Add` (serial mode).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Add(std::function<Status()> fn);

  /// Joins all tasks; the calling thread helps drain the pool queue
  /// while it waits. Idempotent.
  Status Wait();

 private:
  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = 0;
    std::vector<Status> statuses;  // by submission index
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_ = std::make_shared<State>();
  size_t added_ = 0;
  bool waited_ = false;
};

/// Execution policy handed down through LakeOptions and config structs.
/// A default-constructed context is serial (no pool); `WithThreads(n)`
/// owns a shared pool. Copies share the same pool, so one context can
/// fan out through every lake layer.
struct ExecutionContext {
  std::shared_ptr<ThreadPool> pool;

  /// Serial execution (ParallelFor degenerates to a plain loop).
  static ExecutionContext Serial() { return ExecutionContext{}; }

  /// A context backed by a pool of `n` workers (n <= 0: hardware
  /// concurrency). n == 1 still builds a pool — useful for exercising
  /// the parallel code path deterministically in tests.
  static ExecutionContext WithThreads(int n) {
    ExecutionContext ctx;
    ctx.pool = std::make_shared<ThreadPool>(n);
    return ctx;
  }

  /// Degree of parallelism this context offers (1 when serial).
  int parallelism() const { return pool ? pool->num_threads() : 1; }
};

namespace internal {
Status ParallelForImpl(const ExecutionContext& ctx, size_t begin, size_t end,
                       const std::function<Status(size_t)>& fn);
}  // namespace internal

/// Statically partitioned parallel loop over [begin, end).
///
/// `fn` is invoked exactly once per index and must only write state
/// owned by that index (e.g. its slot of a pre-sized output vector);
/// under that contract the result is identical at any thread count.
/// `fn` may return Status or void. The returned Status is the first
/// non-OK by index (deterministic); exceptions become Status::Internal.
template <typename Fn>
Status ParallelFor(const ExecutionContext& ctx, size_t begin, size_t end,
                   Fn&& fn) {
  if constexpr (std::is_same_v<std::invoke_result_t<Fn, size_t>, Status>) {
    return internal::ParallelForImpl(ctx, begin, end, std::function<Status(size_t)>(std::forward<Fn>(fn)));
  } else {
    auto wrapped = [f = std::forward<Fn>(fn)](size_t i) -> Status {
      f(i);
      return Status::OK();
    };
    return internal::ParallelForImpl(ctx, begin, end,
                                     std::function<Status(size_t)>(wrapped));
  }
}

}  // namespace mlake

#endif  // MLAKE_COMMON_THREAD_POOL_H_
