// Portable scalar backend — the conformance oracle every SIMD backend
// is tested against, and the fallback on hosts without AVX2. Compiled
// with the project's baseline flags only (no -m options) so it runs
// anywhere the binary does.

#include <cmath>

#include "common/kernels.h"

namespace mlake::kernels {
namespace {

float DotScalar(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float L2SqScalar(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float CosineDistanceScalar(const float* a, const float* b, int64_t n) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0f || nb == 0.0f) return 1.0f;
  return 1.0f - dot / std::sqrt(na * nb);
}

void AxpyScalar(float s, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void ScaleInPlaceScalar(float* x, float s, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= s;
}

void AddInPlaceScalar(float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void SubInPlaceScalar(float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] -= b[i];
}

void MulInPlaceScalar(float* a, const float* b, int64_t n) {
  for (int64_t i = 0; i < n; ++i) a[i] *= b[i];
}

void GemmScalar(int64_t m, int64_t n, int64_t k, const float* a,
                const float* b, float* c) {
  for (int64_t i = 0; i < m * n; ++i) c[i] = 0.0f;
  // ikj order: streams rows of B and C.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

const Backend kScalarBackend = {
    "scalar",        DotScalar,         L2SqScalar,       CosineDistanceScalar,
    AxpyScalar,      ScaleInPlaceScalar, AddInPlaceScalar, SubInPlaceScalar,
    MulInPlaceScalar, GemmScalar,
};

}  // namespace

namespace internal {
const Backend* ScalarBackend() { return &kScalarBackend; }
}  // namespace internal

}  // namespace mlake::kernels
