#ifndef MLAKE_COMMON_LOGGING_H_
#define MLAKE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mlake {

/// Severity levels for the process-wide logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity emitted to stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level without evaluating
/// stream operands' formatting.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define MLAKE_LOG(level)                                              \
  (::mlake::LogLevel::k##level < ::mlake::GetLogLevel())              \
      ? (void)0                                                       \
      : (void)(::mlake::internal::LogMessage(::mlake::LogLevel::k##level, \
                                             __FILE__, __LINE__))

/// Streams a log line at the given severity when enabled, e.g.
///   MLAKE_LOG_INFO << "ingested " << n << " models";
#define MLAKE_LOG_DEBUG \
  ::mlake::internal::LogMessage(::mlake::LogLevel::kDebug, __FILE__, __LINE__)
#define MLAKE_LOG_INFO \
  ::mlake::internal::LogMessage(::mlake::LogLevel::kInfo, __FILE__, __LINE__)
#define MLAKE_LOG_WARNING                                            \
  ::mlake::internal::LogMessage(::mlake::LogLevel::kWarning, __FILE__, \
                                __LINE__)
#define MLAKE_LOG_ERROR \
  ::mlake::internal::LogMessage(::mlake::LogLevel::kError, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants, not user input (user input produces
/// Status errors instead).
#define MLAKE_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::mlake::internal::LogMessage(::mlake::LogLevel::kFatal, __FILE__,        \
                                __LINE__)                                   \
      << "Check failed: " #cond " "

#define MLAKE_DCHECK(cond) MLAKE_CHECK(cond)

}  // namespace mlake

#endif  // MLAKE_COMMON_LOGGING_H_
