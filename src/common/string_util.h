#ifndef MLAKE_COMMON_STRING_UTIL_H_
#define MLAKE_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace mlake {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lowercased alphanumeric tokens of `s` (non-alphanumerics are
/// separators). The shared tokenizer for BM25 and keyword search.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Formats a byte count as a human-readable string ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace mlake

#endif  // MLAKE_COMMON_STRING_UTIL_H_
