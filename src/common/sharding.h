#ifndef MLAKE_COMMON_SHARDING_H_
#define MLAKE_COMMON_SHARDING_H_

// Digest → shard placement, shared by the backend's ingest guard
// (server/server.cc) and the router's ShardMap (cluster/shard_map.h).
// Header-only so neither side grows a link dependency on the other.
//
// Placement is by *content*: a model lives on the shard its artifact's
// SHA-256 digest hashes to, so any node (or client) holding the bytes
// can compute the owner without a directory lookup. Metadata-only
// documents with no artifact bytes fall back to hashing the model id.

#include <cstdint>
#include <string_view>

#include "common/hash.h"

namespace mlake {

/// Shard slot for a lowercase-hex content digest: the first 16 hex
/// characters interpreted as a uint64, modulo `n`. SHA-256 output is
/// uniform, so a prefix is as good as the whole digest for placement.
/// n == 0 returns 0 (standalone).
inline uint64_t ShardSlotForDigest(std::string_view digest_hex, uint64_t n) {
  uint64_t v = 0;
  size_t take = digest_hex.size() < 16 ? digest_hex.size() : 16;
  for (size_t i = 0; i < take; ++i) {
    char c = digest_hex[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      nibble = static_cast<unsigned char>(c) & 0xF;  // defensive fold
    }
    v = (v << 4) | nibble;
  }
  return n == 0 ? 0 : v % n;
}

/// Shard slot for a metadata-only model id (no artifact to digest).
/// n == 0 returns 0 (standalone).
inline uint64_t ShardSlotForId(std::string_view model_id, uint64_t n) {
  return n == 0 ? 0 : Fnv1a64(model_id) % n;
}

}  // namespace mlake

#endif  // MLAKE_COMMON_SHARDING_H_
