#ifndef MLAKE_COMMON_FS_H_
#define MLAKE_COMMON_FS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/mmap_file.h"
#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// The filesystem seam under the storage layer.
///
/// Every durable side effect of `BlobStore`, `KvStore`, `Catalog`, the
/// intent journal and `WriteFileAtomic` goes through one of these
/// virtual calls, so a decorator (see fault_fs.h) can deterministically
/// inject I/O errors, short writes, torn tails and crash points — the
/// same seam RocksDB/LevelDB use (`Env`/`FileSystem`) to make crash
/// recovery testable without real power cuts.
///
/// Semantics match the free functions in file_util.h; `RealFs()` is the
/// passthrough implementation built on them. Implementations must be
/// safe to call from multiple threads (the lake reads concurrently
/// under its shared lock).
class Fs {
 public:
  virtual ~Fs() = default;

  // ------------------------------------------------------------- reads
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Names (not paths) of regular files directly inside `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;
  /// Names of immediate subdirectories of `dir`, sorted.
  virtual Result<std::vector<std::string>> ListSubdirs(
      const std::string& dir) = 0;
  /// Zero-copy read hook. Implementations that cannot (or, for fault
  /// injection, will not) serve mmap return an error; callers fall back
  /// to `ReadFile` so injected read faults stay observable.
  virtual Result<MmapFile> Mmap(const std::string& path) = 0;

  // ----------------------------------------------------------- writes
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;
  virtual Status AppendFile(const std::string& path,
                            std::string_view data) = 0;
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;

  // -------------------------------------------------------- durability
  virtual Status SyncFile(const std::string& path) = 0;
  virtual Status SyncDir(const std::string& path) = 0;
};

/// The process-wide passthrough Fs (delegates to file_util.h). Never
/// null; not owned by callers.
Fs* RealFs();

/// `WriteFileAtomic` composed from Fs primitives: temp write + fsync +
/// rename + dir fsync (see file_util.h for the durability rationale).
/// Any failure removes the temp file best-effort, so error paths leave
/// no `*.tmp.*` strays behind.
Status WriteFileAtomic(Fs* fs, const std::string& path,
                       std::string_view data);

/// True for names WriteFileAtomic's temp files use ("<name>.tmp.<n>");
/// what recovery scans look for.
bool IsTmpFileName(std::string_view name);

/// Removes stray `*.tmp.*` files directly inside `dir` (non-recursive);
/// adds the number removed to `*removed` when non-null. Missing dir is
/// OK (nothing to clean).
Status RemoveStrayTmpFiles(Fs* fs, const std::string& dir,
                           size_t* removed = nullptr);

}  // namespace mlake

#endif  // MLAKE_COMMON_FS_H_
