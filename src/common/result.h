#ifndef MLAKE_COMMON_RESULT_H_
#define MLAKE_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mlake {

/// The result of an operation that either produces a `T` or fails with a
/// `Status`.
///
/// Mirrors `arrow::Result<T>`: construct implicitly from a value or a
/// non-OK `Status`; access the payload with `ValueOrDie()` /
/// `ValueUnsafe()` after checking `ok()`, or move it out with
/// `MoveValueUnsafe()`. Use `MLAKE_ASSIGN_OR_RETURN` to chain fallible
/// computations.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : data_(std::in_place_index<1>, std::move(value)) {}

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and aborts.
  Result(Status status) : data_(std::in_place_index<0>, std::move(status)) {
    if (std::get<0>(data_).ok()) {
      std::abort();  // Result from OK status carries no value.
    }
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return data_.index() == 1; }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<0>(data_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const {
    if (!ok()) std::abort();
    return std::get<1>(data_);
  }
  T& ValueOrDie() {
    if (!ok()) std::abort();
    return std::get<1>(data_);
  }

  /// Unchecked accessors; caller must have verified `ok()`.
  const T& ValueUnsafe() const { return std::get<1>(data_); }
  T& ValueUnsafe() { return std::get<1>(data_); }
  T MoveValueUnsafe() { return std::move(std::get<1>(data_)); }

  /// Returns the value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<1>(data_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> data_;
};

/// Evaluates `rexpr` (a Result<T>), returning its Status on failure;
/// otherwise assigns the moved value to `lhs`.
#define MLAKE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = tmp.MoveValueUnsafe()

#define MLAKE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MLAKE_ASSIGN_OR_RETURN_NAME(a, b) MLAKE_ASSIGN_OR_RETURN_CONCAT(a, b)

#define MLAKE_ASSIGN_OR_RETURN(lhs, rexpr) \
  MLAKE_ASSIGN_OR_RETURN_IMPL(             \
      MLAKE_ASSIGN_OR_RETURN_NAME(_mlake_result_, __LINE__), lhs, rexpr)

}  // namespace mlake

#endif  // MLAKE_COMMON_RESULT_H_
