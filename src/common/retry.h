#ifndef MLAKE_COMMON_RETRY_H_
#define MLAKE_COMMON_RETRY_H_

#include <functional>

#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// Bounded exponential backoff for transient I/O (Status::IsTransient).
///
/// Non-transient errors — corruption, not-found, ENOSPC — return
/// immediately: retrying cannot fix wrong bytes or a full disk, and
/// hammering them only hides the real failure. Defaults are tuned for
/// a local disk hiccup: 3 attempts, 1ms first backoff, doubling, capped.
struct RetryPolicy {
  int max_attempts = 3;
  int initial_backoff_ms = 1;
  int max_backoff_ms = 100;
  /// Test hook: when set, called instead of sleeping. Receives the
  /// backoff that would have been slept, in order.
  std::function<void(int ms)> sleeper;

  /// A policy that never retries (max_attempts = 1); the knob for
  /// callers that want the seam without the loop.
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Backoff before retry number `retry` (1-based), in ms.
int BackoffMs(const RetryPolicy& policy, int retry);

/// Sleeps (or calls the test sleeper) for the given backoff.
void RetrySleep(const RetryPolicy& policy, int ms);

/// Runs `op` until it returns OK, a non-transient error, or the policy
/// is exhausted; returns the last status. `attempts_out` (optional)
/// receives the number of attempts made.
Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op,
                      int* attempts_out = nullptr);

/// Result<T>-returning flavor; same policy semantics.
template <typename T>
Result<T> RetryTransient(const RetryPolicy& policy,
                         const std::function<Result<T>()>& op,
                         int* attempts_out = nullptr) {
  Result<T> result = op();
  int attempts = 1;
  while (!result.ok() && result.status().IsTransient() &&
         attempts < policy.max_attempts) {
    RetrySleep(policy, BackoffMs(policy, attempts));
    result = op();
    ++attempts;
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return result;
}

}  // namespace mlake

#endif  // MLAKE_COMMON_RETRY_H_
