#include "common/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdint>

namespace mlake {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

}  // namespace mlake
