#ifndef MLAKE_COMMON_KERNELS_H_
#define MLAKE_COMMON_KERNELS_H_

#include <cstdint>

namespace mlake::kernels {

/// Runtime-dispatched single-core vector/matrix kernels — the compute
/// floor under every similarity hot path (index distance, tensor ops,
/// CKA Gram matrices). The best backend the CPU supports is selected
/// once at first use (cpuid); every entry point also has a portable
/// scalar reference that doubles as the conformance oracle.
///
/// Dispatch policy:
///   - `Active()` resolves lazily: AVX2+FMA when the host supports both
///     (and the binary was built with the AVX2 translation unit),
///     otherwise scalar.
///   - `MLAKE_KERNELS=scalar|avx2|auto` overrides selection at startup
///     (A/B testing and bug triage). An unavailable request falls back
///     to scalar with a warning on stderr.
///   - `ForceBackend()` switches at runtime (benches and tests only;
///     not thread-safe against in-flight kernel calls).
///
/// All pointers are to contiguous float32 arrays; no alignment is
/// required (kernels handle unaligned heads/tails). Backends may
/// reassociate floating-point sums, so scalar and AVX2 results can
/// differ in the last ulps — never across runs of the same backend,
/// which is what the lake's determinism contract needs.

/// Function table for one backend.
struct Backend {
  const char* name;

  /// sum_i a[i]*b[i]
  float (*dot)(const float* a, const float* b, int64_t n);
  /// sum_i (a[i]-b[i])^2
  float (*l2sq)(const float* a, const float* b, int64_t n);
  /// 1 - dot(a,b)/(|a||b|); 1.0f when either norm is zero.
  float (*cosine_distance)(const float* a, const float* b, int64_t n);
  /// y[i] += s * x[i]
  void (*axpy)(float s, const float* x, float* y, int64_t n);
  /// x[i] *= s
  void (*scale_inplace)(float* x, float s, int64_t n);
  /// a[i] += b[i]
  void (*add_inplace)(float* a, const float* b, int64_t n);
  /// a[i] -= b[i]
  void (*sub_inplace)(float* a, const float* b, int64_t n);
  /// a[i] *= b[i]
  void (*mul_inplace)(float* a, const float* b, int64_t n);
  /// C[m,n] = A[m,k] * B[k,n], row-major contiguous; C is overwritten.
  void (*gemm)(int64_t m, int64_t n, int64_t k, const float* a,
               const float* b, float* c);
};

/// The dispatched backend (cpuid + MLAKE_KERNELS, resolved on first use).
const Backend& Active();

/// Scalar reference backend (always available).
const Backend& Scalar();

/// Best SIMD backend compiled into this binary, or nullptr when the
/// host cannot run it.
const Backend* Simd();

/// Forces dispatch to `name` ("scalar", "avx2", "auto"). Returns false
/// (leaving dispatch unchanged) when the backend is unavailable. For
/// benches and tests; not thread-safe against concurrent kernel calls.
bool ForceBackend(const char* name);

/// --- Convenience wrappers over Active() ---

inline float Dot(const float* a, const float* b, int64_t n) {
  return Active().dot(a, b, n);
}
inline float L2Sq(const float* a, const float* b, int64_t n) {
  return Active().l2sq(a, b, n);
}
inline float CosineDistance(const float* a, const float* b, int64_t n) {
  return Active().cosine_distance(a, b, n);
}
inline void Axpy(float s, const float* x, float* y, int64_t n) {
  Active().axpy(s, x, y, n);
}
inline void ScaleInPlace(float* x, float s, int64_t n) {
  Active().scale_inplace(x, s, n);
}
inline void AddInPlace(float* a, const float* b, int64_t n) {
  Active().add_inplace(a, b, n);
}
inline void SubInPlace(float* a, const float* b, int64_t n) {
  Active().sub_inplace(a, b, n);
}
inline void MulInPlace(float* a, const float* b, int64_t n) {
  Active().mul_inplace(a, b, n);
}
inline void Gemm(int64_t m, int64_t n, int64_t k, const float* a,
                 const float* b, float* c) {
  Active().gemm(m, n, k, a, b, c);
}

namespace internal {
/// Defined in kernels_scalar.cc / kernels_avx2.cc.
const Backend* ScalarBackend();
/// Returns nullptr when the TU was compiled without AVX2 support or the
/// host lacks AVX2/FMA.
const Backend* Avx2BackendIfSupported();
}  // namespace internal

}  // namespace mlake::kernels

#endif  // MLAKE_COMMON_KERNELS_H_
