#include "common/fault_fs.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace mlake {

namespace {
Status DeadError(const std::string& op) {
  return Status::IOError("fs crashed (simulated): " + op + " refused");
}
}  // namespace

void FaultInjectingFs::CrashNow() {
  // No unwinding, no atexit, no stream flush: the closest a test can
  // get to SIGKILL from inside the process.
  std::_Exit(kCrashExitCode);
}

Status FaultInjectingFs::InjectedError(const std::string& op,
                                       const std::string& path) {
  ++injected_errors_;
  return Status(plan_.error_code,
                StrFormat("injected fault: %s %s", op.c_str(), path.c_str()));
}

Status FaultInjectingFs::BeforeMutatingOp(const std::string& op,
                                          const std::string& path,
                                          std::string_view payload,
                                          bool is_write, bool append) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError(op);
  uint64_t idx = ++mutating_ops_;

  if (plan_.crash_at_op != 0 && idx == plan_.crash_at_op) {
    if (plan_.crash_style == CrashStyle::kTornOp && is_write &&
        payload.size() > 1) {
      // Persist a strict, seeded prefix before dying: a torn tail.
      size_t prefix = static_cast<size_t>(rng_.NextBelow(payload.size()));
      if (prefix > 0) {
        std::string_view partial = payload.substr(0, prefix);
        if (append) {
          base_->AppendFile(path, partial);
        } else {
          base_->WriteFile(path, partial);
        }
      }
    }
    if (plan_.crash_exits_process) CrashNow();
    dead_ = true;
    return Status::IOError(
        StrFormat("injected crash at op %llu: %s %s",
                  static_cast<unsigned long long>(idx), op.c_str(),
                  path.c_str()));
  }

  if (std::find(plan_.fail_ops.begin(), plan_.fail_ops.end(), idx) !=
      plan_.fail_ops.end()) {
    return InjectedError(op, path);
  }
  if (is_write && plan_.short_write_rate > 0.0 &&
      rng_.NextDouble() < plan_.short_write_rate && payload.size() > 1) {
    size_t prefix = static_cast<size_t>(rng_.NextBelow(payload.size()));
    if (prefix > 0) {
      std::string_view partial = payload.substr(0, prefix);
      if (append) {
        base_->AppendFile(path, partial);
      } else {
        base_->WriteFile(path, partial);
      }
    }
    return InjectedError(op + " (short write)", path);
  }
  if (plan_.error_rate > 0.0 && rng_.NextDouble() < plan_.error_rate) {
    return InjectedError(op, path);
  }
  return Status::OK();
}

Status FaultInjectingFs::BeforeReadOp(const std::string& op,
                                      const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return DeadError(op);
  if (plan_.error_rate > 0.0 && rng_.NextDouble() < plan_.error_rate) {
    return InjectedError(op, path);
  }
  return Status::OK();
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) {
  MLAKE_RETURN_NOT_OK(BeforeReadOp("read", path));
  return base_->ReadFile(path);
}

bool FaultInjectingFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectingFs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Result<std::vector<std::string>> FaultInjectingFs::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Result<std::vector<std::string>> FaultInjectingFs::ListSubdirs(
    const std::string& dir) {
  return base_->ListSubdirs(dir);
}

Result<MmapFile> FaultInjectingFs::Mmap(const std::string& path) {
  if (plan_.fail_mmap) {
    return Status::Unavailable("injected fault: mmap refused " + path);
  }
  MLAKE_RETURN_NOT_OK(BeforeReadOp("mmap", path));
  return base_->Mmap(path);
}

Status FaultInjectingFs::WriteFile(const std::string& path,
                                   std::string_view data) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("write", path, data,
                                       /*is_write=*/true, /*append=*/false));
  return base_->WriteFile(path, data);
}

Status FaultInjectingFs::AppendFile(const std::string& path,
                                    std::string_view data) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("append", path, data,
                                       /*is_write=*/true, /*append=*/true));
  return base_->AppendFile(path, data);
}

Status FaultInjectingFs::Truncate(const std::string& path, uint64_t size) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("truncate", path, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->Truncate(path, size);
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("rename", from, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->Rename(from, to);
}

Status FaultInjectingFs::RemoveFile(const std::string& path) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("unlink", path, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->RemoveFile(path);
}

Status FaultInjectingFs::CreateDirs(const std::string& path) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("mkdir", path, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->CreateDirs(path);
}

Status FaultInjectingFs::SyncFile(const std::string& path) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("fsync", path, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->SyncFile(path);
}

Status FaultInjectingFs::SyncDir(const std::string& path) {
  MLAKE_RETURN_NOT_OK(BeforeMutatingOp("fsync-dir", path, {},
                                       /*is_write=*/false, /*append=*/false));
  return base_->SyncDir(path);
}

uint64_t FaultInjectingFs::mutating_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mutating_ops_;
}

uint64_t FaultInjectingFs::injected_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_errors_;
}

bool FaultInjectingFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

}  // namespace mlake
