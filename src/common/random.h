#ifndef MLAKE_COMMON_RANDOM_H_
#define MLAKE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mlake {

/// Deterministic pseudo-random generator (PCG-XSH-RR 64/32).
///
/// Every stochastic component in mlake (weight init, dataset synthesis,
/// lake generation, index construction) draws from an explicitly seeded
/// `Rng` so experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds yield independent-looking streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 32-bit draw.
  uint32_t NextU32();

  /// Uniform 64-bit draw.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw (Box-Muller; caches the second variate).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Draws an index from an (unnormalized) non-negative weight vector.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives a child generator with an independent stream; convenient for
  /// giving each sub-component its own reproducible source.
  Rng Fork();

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mlake

#endif  // MLAKE_COMMON_RANDOM_H_
