#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mlake {

int BackoffMs(const RetryPolicy& policy, int retry) {
  // initial * 2^(retry-1), saturating at the cap (and against overflow
  // for absurd retry counts).
  long long backoff = policy.initial_backoff_ms;
  for (int i = 1; i < retry && backoff < policy.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  return static_cast<int>(
      std::min<long long>(backoff, policy.max_backoff_ms));
}

void RetrySleep(const RetryPolicy& policy, int ms) {
  if (policy.sleeper) {
    policy.sleeper(ms);
    return;
  }
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status RetryTransient(const RetryPolicy& policy,
                      const std::function<Status()>& op, int* attempts_out) {
  Status st = op();
  int attempts = 1;
  while (!st.ok() && st.IsTransient() && attempts < policy.max_attempts) {
    RetrySleep(policy, BackoffMs(policy, attempts));
    st = op();
    ++attempts;
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  return st;
}

}  // namespace mlake
