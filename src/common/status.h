#ifndef MLAKE_COMMON_STATUS_H_
#define MLAKE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace mlake {

/// Error categories used across all mlake libraries.
///
/// The set mirrors the categories used by storage engines (RocksDB) and
/// columnar libraries (Arrow): callers are expected to branch on broad
/// categories, not on message text.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kFailedPrecondition = 6,
  kOutOfRange = 7,
  kUnimplemented = 8,
  kInternal = 9,
  /// Transient failure of an underlying service or device (flaky disk,
  /// injected EIO, network hiccup): retrying the same operation may
  /// succeed. The only code `IsTransient()` accepts.
  kUnavailable = 10,
  /// A resource budget was exhausted (ENOSPC, quota). Not transient:
  /// retrying without freeing space will fail again.
  kResourceExhausted = 11,
  /// The caller's deadline expired before the operation completed. The
  /// work may or may not have run to completion server-side; read-only
  /// operations are safe to retry with a fresh deadline.
  kDeadlineExceeded = 12,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value payload.
///
/// `Status` is cheap to copy in the success case (a single pointer
/// comparison against null); error states allocate a small state block.
/// Functions that produce a value use `Result<T>` (see result.h) instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// The error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Error-category taxonomy for the robustness layer (see retry.h):
  ///
  ///   transient  -> safe and worthwhile to retry the same operation
  ///                 (kUnavailable only; the storage seam reports flaky
  ///                 I/O as Unavailable and hard failures as IOError)
  ///   corruption -> the bytes are wrong; retrying cannot help, the
  ///                 object should be quarantined and repaired
  ///
  /// All other categories (not-found, invalid-argument, ...) are
  /// program-logic outcomes: neither retried nor quarantined.
  bool IsTransient() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<Category>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prefixed to the message.
  /// Useful when propagating errors upward through layers.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null <=> OK
};

/// Propagates a non-OK `Status` from the current function.
#define MLAKE_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::mlake::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace mlake

#endif  // MLAKE_COMMON_STATUS_H_
