#ifndef MLAKE_COMMON_FILE_UTIL_H_
#define MLAKE_COMMON_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// Reads the entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path`, replacing any previous contents.
Status WriteFile(const std::string& path, std::string_view data);

/// Writes via a temp file + rename so readers never observe a torn
/// file. Durable by default: the temp file is fsynced before the rename
/// and the parent directory after it, so a crash straddling the rename
/// cannot leave a renamed-but-empty file. Setting the MLAKE_NO_FSYNC
/// environment variable skips both syncs (test/bench speed knob).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Flushes a file's data and metadata to stable storage (fsync).
Status SyncFile(const std::string& path);

/// Flushes a directory entry table to stable storage, making renames
/// and creations inside it durable.
Status SyncDir(const std::string& path);

/// False when the MLAKE_NO_FSYNC escape hatch is set.
bool FsyncEnabled();

/// Appends `data` to `path`, creating it if needed.
Status AppendFile(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);

Result<uint64_t> FileSize(const std::string& path);

/// Creates the directory and all parents; OK if it already exists.
Status CreateDirs(const std::string& path);

/// Recursively removes `path`; OK if it does not exist.
Status RemoveAll(const std::string& path);

Status RemoveFile(const std::string& path);

/// Names (not full paths) of regular files directly inside `dir`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Joins two path segments with exactly one separator.
std::string JoinPath(const std::string& a, const std::string& b);

/// Creates a unique fresh directory under the system temp dir with the
/// given prefix; used by tests and examples.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace mlake

#endif  // MLAKE_COMMON_FILE_UTIL_H_
