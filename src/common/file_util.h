#ifndef MLAKE_COMMON_FILE_UTIL_H_
#define MLAKE_COMMON_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mlake {

/// Reads the entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `data` to `path`, replacing any previous contents.
Status WriteFile(const std::string& path, std::string_view data);

/// Writes via a temp file + rename so readers never observe a torn file.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Appends `data` to `path`, creating it if needed.
Status AppendFile(const std::string& path, std::string_view data);

bool FileExists(const std::string& path);

Result<uint64_t> FileSize(const std::string& path);

/// Creates the directory and all parents; OK if it already exists.
Status CreateDirs(const std::string& path);

/// Recursively removes `path`; OK if it does not exist.
Status RemoveAll(const std::string& path);

Status RemoveFile(const std::string& path);

/// Names (not full paths) of regular files directly inside `dir`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

/// Joins two path segments with exactly one separator.
std::string JoinPath(const std::string& a, const std::string& b);

/// Creates a unique fresh directory under the system temp dir with the
/// given prefix; used by tests and examples.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace mlake

#endif  // MLAKE_COMMON_FILE_UTIL_H_
