#ifndef MLAKE_COMMON_FAULT_FS_H_
#define MLAKE_COMMON_FAULT_FS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/fs.h"
#include "common/random.h"

namespace mlake {

/// How a crash point fires (see FaultPlan::crash_at_op).
enum class CrashStyle {
  /// The op at the crash point is not applied at all: the crash lands
  /// between two filesystem operations.
  kBeforeOp,
  /// A WriteFile/AppendFile at the crash point persists a seeded strict
  /// prefix of its payload first — a torn tail, the worst case for an
  /// append-only log. Non-write ops degrade to kBeforeOp.
  kTornOp,
};

/// Exit code a crash-exiting FaultInjectingFs dies with; parents that
/// fork a crashing child assert on it.
inline constexpr int kCrashExitCode = 86;

/// One deterministic fault schedule, keyed entirely by `seed` and the
/// op sequence (op indices are 1-based and count only mutating ops:
/// write/append/truncate/rename/unlink/mkdir/fsync). With a serial
/// execution context the op sequence — and therefore the schedule — is
/// reproducible run to run.
struct FaultPlan {
  uint64_t seed = 1;

  /// Probability any data op (read or mutating) fails with `error_code`.
  double error_rate = 0.0;
  /// Probability a WriteFile/AppendFile persists only a seeded prefix
  /// of its payload and then fails (short write: EIO/ENOSPC mid-write).
  double short_write_rate = 0.0;
  /// Code injected errors carry. kUnavailable models transient EIO (the
  /// retry layer's food); kResourceExhausted models ENOSPC.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Exact mutating-op indices that fail once with `error_code`, on top
  /// of `error_rate`. Each index is hit at most once by construction,
  /// so a retried op (next index) succeeds — deterministic retry tests.
  std::vector<uint64_t> fail_ops;

  /// Mutating-op index at which the process "crashes"; 0 = never.
  uint64_t crash_at_op = 0;
  CrashStyle crash_style = CrashStyle::kBeforeOp;
  /// true: `_exit(kCrashExitCode)` at the crash point — pair with
  /// fork() for a real kill (crash_matrix_test). false: the op fails
  /// with IOError and every later op refuses, simulating the dead
  /// process in-process.
  bool crash_exits_process = false;

  /// Refuse Mmap so every blob read funnels through ReadFile and stays
  /// under injection.
  bool fail_mmap = true;
};

/// Fs decorator that injects the FaultPlan. Existence/size/list checks
/// pass through untouched (faults model data-path I/O, not stat); after
/// an in-process crash every data op — reads and writes — fails.
/// Thread-safe; the schedule is only deterministic when the op order is
/// (serial ExecutionContext).
class FaultInjectingFs final : public Fs {
 public:
  FaultInjectingFs(Fs* base, FaultPlan plan)
      : base_(base), plan_(std::move(plan)), rng_(plan_.seed) {}

  Result<std::string> ReadFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListSubdirs(
      const std::string& dir) override;
  Result<MmapFile> Mmap(const std::string& path) override;

  Status WriteFile(const std::string& path, std::string_view data) override;
  Status AppendFile(const std::string& path, std::string_view data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

  /// Mutating ops seen so far (the crash/fail_ops index space).
  uint64_t mutating_ops() const;
  /// Errors injected so far (rate- and schedule-based, short writes
  /// included; crash refusals excluded).
  uint64_t injected_errors() const;
  /// True once an in-process crash point fired.
  bool crashed() const;

 private:
  /// Returns the injected error for this mutating op, or OK. Fires the
  /// crash point (may _exit). For write ops, `payload`/`torn_target`
  /// enable torn-tail prefixes (append=true appends the prefix).
  Status BeforeMutatingOp(const std::string& op, const std::string& path,
                          std::string_view payload, bool is_write,
                          bool append);
  Status BeforeReadOp(const std::string& op, const std::string& path);
  Status InjectedError(const std::string& op, const std::string& path);
  void CrashNow();

  Fs* base_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  uint64_t mutating_ops_ = 0;
  uint64_t injected_errors_ = 0;
  bool dead_ = false;
};

}  // namespace mlake

#endif  // MLAKE_COMMON_FAULT_FS_H_
