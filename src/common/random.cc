#include "common/random.h"

#include <cmath>

namespace mlake {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr uint64_t kDefaultStream = 1442695040888963407ULL;
}  // namespace

void Rng::Seed(uint64_t seed) {
  state_ = 0;
  inc_ = (kDefaultStream << 1u) | 1u;
  NextU32();
  state_ += seed;
  NextU32();
  has_cached_normal_ = false;
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  MLAKE_CHECK(n > 0) << "NextBelow(0)";
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MLAKE_CHECK(lo <= hi) << "UniformInt bounds reversed";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBelow(span));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  MLAKE_CHECK(k <= n) << "sample size exceeds population";
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first k positions need shuffling.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBelow(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  MLAKE_CHECK(!weights.empty()) << "empty categorical";
  double total = 0.0;
  for (double w : weights) {
    MLAKE_CHECK(w >= 0.0) << "negative categorical weight";
    total += w;
  }
  MLAKE_CHECK(total > 0.0) << "categorical weights sum to zero";
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0x9e3779b97f4a7c15ULL); }

}  // namespace mlake
