#ifndef MLAKE_COMMON_HASH_H_
#define MLAKE_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mlake {

/// FNV-1a 64-bit hash; used for cheap in-memory hashing (index buckets,
/// minhash base permutations). Not collision-resistant.
uint64_t Fnv1a64(const void* data, size_t len);
uint64_t Fnv1a64(std::string_view s);

/// CRC-32 (IEEE polynomial, reflected). Used for per-section integrity
/// checks in the model artifact format and the log-structured KV store.
uint32_t Crc32(const void* data, size_t len);
uint32_t Crc32(std::string_view s);

/// Incremental SHA-256. Used for content addressing in the blob store:
/// a model artifact's identity is the digest of its bytes.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards; call Reset() to reuse.
  std::array<uint8_t, 32> Finish();

  void Reset();

  /// One-shot convenience returning a lowercase hex digest.
  static std::string HexDigest(std::string_view data);
  static std::string HexDigest(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// Lowercase hex encoding of a byte buffer.
std::string ToHex(const uint8_t* data, size_t len);

}  // namespace mlake

#endif  // MLAKE_COMMON_HASH_H_
