#include "embed/embedder.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace mlake::embed {

Result<std::vector<std::vector<float>>> ModelEmbedder::EmbedAll(
    const std::vector<nn::Model*>& models, const ExecutionContext& exec) const {
  std::vector<std::vector<float>> out(models.size());
  MLAKE_RETURN_NOT_OK(
      ParallelFor(exec, 0, models.size(), [&](size_t i) -> Status {
        MLAKE_ASSIGN_OR_RETURN(out[i], Embed(models[i]));
        return Status::OK();
      }));
  return out;
}

void L2NormalizeInPlace(std::vector<float>* v) {
  double norm_sq = 0.0;
  for (float x : *v) norm_sq += static_cast<double>(x) * x;
  if (norm_sq <= 0.0) return;
  float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
  for (float& x : *v) x *= inv;
}

// ----------------------------------------------------- BehavioralEmbedder

BehavioralEmbedder::BehavioralEmbedder(Tensor probes, int64_t num_classes)
    : probes_(std::move(probes)), num_classes_(num_classes) {
  MLAKE_CHECK(probes_.rank() == 2) << "probes must be [n, dim]";
  MLAKE_CHECK(num_classes_ > 0) << "num_classes";
}

Result<std::vector<float>> BehavioralEmbedder::Embed(nn::Model* model) const {
  if (model->spec().input_dim != probes_.dim(1)) {
    return Status::InvalidArgument(
        "BehavioralEmbedder: model input dim does not match probe set");
  }
  if (model->spec().num_classes != num_classes_) {
    return Status::InvalidArgument(
        "BehavioralEmbedder: model class count does not match lake");
  }
  Tensor logits = model->Forward(probes_, /*training=*/false);
  Tensor probs = RowSoftmax(logits);
  std::vector<float> out(probs.data(), probs.data() + probs.NumElements());
  L2NormalizeInPlace(&out);
  return out;
}

// ---------------------------------------------------- WeightStatsEmbedder

WeightStatsEmbedder::WeightStatsEmbedder(size_t max_layers)
    : max_layers_(max_layers) {
  MLAKE_CHECK(max_layers_ > 0) << "max_layers";
}

Result<std::vector<float>> WeightStatsEmbedder::Embed(
    nn::Model* model) const {
  std::vector<float> out(max_layers_ * kStatsPerLayer, 0.0f);
  std::vector<nn::Param*> params = model->Params();
  size_t slot = 0;
  for (nn::Param* p : params) {
    if (slot >= max_layers_) break;
    const std::vector<float>& w = p->value.storage();
    if (w.empty()) continue;
    double n = static_cast<double>(w.size());
    double mean = 0.0;
    for (float v : w) mean += v;
    mean /= n;
    double var = 0.0, abs_mean = 0.0, fourth = 0.0, sum_sq = 0.0;
    for (float v : w) {
      double d = v - mean;
      var += d * d;
      fourth += d * d * d * d;
      abs_mean += std::fabs(v);
      sum_sq += static_cast<double>(v) * v;
    }
    var /= n;
    abs_mean /= n;
    fourth /= n;
    double kurtosis = var > 1e-20 ? fourth / (var * var) : 0.0;
    float* s = out.data() + slot * kStatsPerLayer;
    s[0] = static_cast<float>(mean);
    s[1] = static_cast<float>(std::sqrt(var));
    s[2] = static_cast<float>(abs_mean);
    s[3] = static_cast<float>(kurtosis);
    s[4] = static_cast<float>(std::sqrt(sum_sq));
    ++slot;
  }
  L2NormalizeInPlace(&out);
  return out;
}

// --------------------------------------------------------- FisherEmbedder

FisherEmbedder::FisherEmbedder(Tensor probes, int64_t num_classes)
    : probes_(std::move(probes)), num_classes_(num_classes) {
  MLAKE_CHECK(probes_.rank() == 2) << "probes must be [n, dim]";
}

Result<std::vector<float>> FisherEmbedder::Embed(nn::Model* model) const {
  if (model->spec().input_dim != probes_.dim(1)) {
    return Status::InvalidArgument(
        "FisherEmbedder: model input dim does not match probe set");
  }
  if (model->spec().num_classes != num_classes_) {
    return Status::InvalidArgument(
        "FisherEmbedder: model class count does not match lake");
  }
  // Find the final linear layer; the "hidden" feature is its input.
  int last_linear = -1;
  for (size_t i = 0; i < model->num_layers(); ++i) {
    if (model->layer(i)->type() == "linear") {
      last_linear = static_cast<int>(i);
    }
  }
  if (last_linear < 0) {
    return Status::FailedPrecondition("FisherEmbedder: no linear head");
  }
  Tensor hidden = model->ForwardUpTo(probes_,
                                     static_cast<size_t>(last_linear));
  Tensor logits = model->Forward(probes_, /*training=*/false);
  Tensor probs = RowSoftmax(logits);

  int64_t n = probes_.dim(0);
  int64_t h_dim = hidden.dim(1);
  // Diagonal Fisher of head weights W_cj under the model's own
  // distribution: F_cj = E_x[ p_c (1 - p_c) h_j^2 ]. Summarize per class
  // by mean, max and log-trace over j.
  std::vector<float> out(static_cast<size_t>(num_classes_ * kStatsPerClass),
                         0.0f);
  for (int64_t c = 0; c < num_classes_; ++c) {
    double mean_f = 0.0, max_f = 0.0, trace = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double pc = probs.At(i, c);
      double coeff = pc * (1.0 - pc);
      double row_sum = 0.0, row_max = 0.0;
      for (int64_t j = 0; j < h_dim; ++j) {
        double f = coeff * static_cast<double>(hidden.At(i, j)) *
                   hidden.At(i, j);
        row_sum += f;
        row_max = std::max(row_max, f);
      }
      mean_f += row_sum / static_cast<double>(h_dim);
      max_f = std::max(max_f, row_max);
      trace += row_sum;
    }
    mean_f /= static_cast<double>(n);
    trace /= static_cast<double>(n);
    float* s = out.data() + c * kStatsPerClass;
    s[0] = static_cast<float>(mean_f);
    s[1] = static_cast<float>(max_f);
    s[2] = static_cast<float>(std::log1p(trace));
  }
  L2NormalizeInPlace(&out);
  return out;
}

// ----------------------------------------------------------------- Factory

Result<std::unique_ptr<ModelEmbedder>> MakeEmbedder(
    const std::string& name, const Tensor& probes, int64_t num_classes) {
  if (name == "behavioral") {
    return std::unique_ptr<ModelEmbedder>(
        new BehavioralEmbedder(probes, num_classes));
  }
  if (name == "weight_stats") {
    return std::unique_ptr<ModelEmbedder>(new WeightStatsEmbedder());
  }
  if (name == "fisher") {
    return std::unique_ptr<ModelEmbedder>(
        new FisherEmbedder(probes, num_classes));
  }
  return Status::InvalidArgument("unknown embedder: " + name);
}

}  // namespace mlake::embed
