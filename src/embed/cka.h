#ifndef MLAKE_EMBED_CKA_H_
#define MLAKE_EMBED_CKA_H_

#include "common/result.h"
#include "nn/model.h"
#include "tensor/tensor.h"

namespace mlake::embed {

/// Linear Centered Kernel Alignment between two activation matrices
/// X [n, p1] and Y [n, p2] over the same n inputs:
///
///   CKA(X, Y) = ||Xc^T Yc||_F^2 / (||Xc^T Xc||_F ||Yc^T Yc||_F)
///
/// (columns centered). Value in [0, 1]; invariant to orthogonal
/// transformations and isotropic scaling of either representation, which
/// is what makes it the standard tool for comparing hidden
/// representations across *different* networks — the "representation
/// analysis" of the paper's §3 attribution discussion (intrinsic
/// viewpoint) usable even across architectures with different widths.
Result<double> LinearCka(const Tensor& x, const Tensor& y);

/// CKA between the final hidden representations (input of the last
/// linear layer) of two models on a shared probe set. Unlike weight
/// distance, this works across architectures and is invariant to neuron
/// permutations.
Result<double> RepresentationSimilarity(nn::Model* a, nn::Model* b,
                                        const Tensor& probes);

}  // namespace mlake::embed

#endif  // MLAKE_EMBED_CKA_H_
