#include "embed/cka.h"

#include <cmath>
#include <vector>

#include "common/kernels.h"
#include "tensor/ops.h"

namespace mlake::embed {

namespace {

/// Centers columns in place. Column sums are accumulated row-by-row
/// (contiguous loads, double accumulators) and the mean is subtracted
/// with one kernel row-broadcast per row.
void CenterColumns(Tensor* m) {
  int64_t rows = m->dim(0), cols = m->dim(1);
  std::vector<double> sums(static_cast<size_t>(cols), 0.0);
  const float* p = m->data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = p + i * cols;
    for (int64_t j = 0; j < cols; ++j) sums[static_cast<size_t>(j)] += row[j];
  }
  std::vector<float> means(static_cast<size_t>(cols));
  for (int64_t j = 0; j < cols; ++j) {
    means[static_cast<size_t>(j)] =
        static_cast<float>(sums[static_cast<size_t>(j)] /
                           static_cast<double>(rows));
  }
  float* pm = m->data();
  for (int64_t i = 0; i < rows; ++i) {
    kernels::SubInPlace(pm + i * cols, means.data(), cols);
  }
}

/// Squared Frobenius norm of A^T B for column-centered A [n,p], B [n,q].
/// The Gram matrix itself comes out of the blocked Gemm kernel (via
/// MatMulTransposedA); only the final reduction stays in double.
double CrossFrobeniusSq(const Tensor& a, const Tensor& b) {
  Tensor cross = MatMulTransposedA(a, b);  // [p, q]
  double acc = 0.0;
  for (float v : cross.storage()) acc += static_cast<double>(v) * v;
  return acc;
}

/// Index of the final linear layer, or -1.
int FindHead(nn::Model* model) {
  int last = -1;
  for (size_t i = 0; i < model->num_layers(); ++i) {
    if (model->layer(i)->type() == "linear") last = static_cast<int>(i);
  }
  return last;
}

}  // namespace

Result<double> LinearCka(const Tensor& x, const Tensor& y) {
  if (x.rank() != 2 || y.rank() != 2) {
    return Status::InvalidArgument("LinearCka: inputs must be matrices");
  }
  if (x.dim(0) != y.dim(0)) {
    return Status::InvalidArgument(
        "LinearCka: representations must cover the same examples");
  }
  if (x.dim(0) < 2) {
    return Status::InvalidArgument("LinearCka: need at least 2 examples");
  }
  Tensor xc = x;
  Tensor yc = y;
  CenterColumns(&xc);
  CenterColumns(&yc);
  double numerator = CrossFrobeniusSq(xc, yc);
  double x_norm = std::sqrt(CrossFrobeniusSq(xc, xc));
  double y_norm = std::sqrt(CrossFrobeniusSq(yc, yc));
  if (x_norm < 1e-12 || y_norm < 1e-12) {
    return 0.0;  // a constant representation matches nothing
  }
  return numerator / (x_norm * y_norm);
}

Result<double> RepresentationSimilarity(nn::Model* a, nn::Model* b,
                                        const Tensor& probes) {
  if (probes.rank() != 2) {
    return Status::InvalidArgument("probes must be [n, dim]");
  }
  if (a->spec().input_dim != probes.dim(1) ||
      b->spec().input_dim != probes.dim(1)) {
    return Status::InvalidArgument(
        "RepresentationSimilarity: probe dim does not match the models");
  }
  int head_a = FindHead(a);
  int head_b = FindHead(b);
  if (head_a < 0 || head_b < 0) {
    return Status::FailedPrecondition(
        "RepresentationSimilarity: models need a linear head");
  }
  Tensor hidden_a = a->ForwardUpTo(probes, static_cast<size_t>(head_a));
  Tensor hidden_b = b->ForwardUpTo(probes, static_cast<size_t>(head_b));
  return LinearCka(hidden_a, hidden_b);
}

}  // namespace mlake::embed
