#ifndef MLAKE_EMBED_EMBEDDER_H_
#define MLAKE_EMBED_EMBEDDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "nn/model.h"

namespace mlake::embed {

/// Maps a model to a fixed-length vector so the lake's ANN index can
/// compare models — the paper's §5 "Indexer" requires "effective
/// embedding of models ... crucial for accurate comparison and ranking".
///
/// The three implementations realize the three viewpoints of Figure 1:
///   - BehavioralEmbedder:   extrinsic (p_θ on a shared probe set)
///   - WeightStatsEmbedder:  intrinsic (statistics of θ per layer)
///   - FisherEmbedder:       intrinsic×task (Task2Vec-style diagonal
///                           Fisher information of the classifier head)
class ModelEmbedder {
 public:
  virtual ~ModelEmbedder() = default;

  /// Embedding vector; always `Dim()` long and L2-normalized.
  virtual Result<std::vector<float>> Embed(nn::Model* model) const = 0;

  /// Batched embedding: one vector per model, in input order, computed
  /// with `ParallelFor` over `exec` (each model is embedded on one
  /// task, so results are identical at any thread count). The models
  /// must be distinct objects — `Embed` runs a forward pass, which
  /// mutates per-model scratch state. This is the path ingest batches
  /// and index rebuilds use; embedding is the dominant per-model cost
  /// after training itself.
  Result<std::vector<std::vector<float>>> EmbedAll(
      const std::vector<nn::Model*>& models,
      const ExecutionContext& exec) const;

  virtual int64_t Dim() const = 0;

  /// Stable name recorded in the lake config ("behavioral", ...).
  virtual std::string_view name() const = 0;
};

/// Extrinsic embedding: concatenated softmax outputs on a fixed probe
/// set. Works for any model exposing the shared input space; requires
/// no access to weights or history (the pure black-box case).
class BehavioralEmbedder : public ModelEmbedder {
 public:
  /// `probes` is [n, input_dim]; embedding dim = n * num_classes.
  BehavioralEmbedder(Tensor probes, int64_t num_classes);

  Result<std::vector<float>> Embed(nn::Model* model) const override;
  int64_t Dim() const override { return probes_.dim(0) * num_classes_; }
  std::string_view name() const override { return "behavioral"; }

  const Tensor& probes() const { return probes_; }

 private:
  Tensor probes_;
  int64_t num_classes_;
};

/// Intrinsic embedding: per-layer weight statistics (mean, std, abs
/// mean, kurtosis, L2 norm) for up to `max_layers` parameter tensors,
/// zero-padded. Cheap, needs weights only, blind to behavior.
class WeightStatsEmbedder : public ModelEmbedder {
 public:
  explicit WeightStatsEmbedder(size_t max_layers = 16);

  Result<std::vector<float>> Embed(nn::Model* model) const override;
  int64_t Dim() const override {
    return static_cast<int64_t>(max_layers_ * kStatsPerLayer);
  }
  std::string_view name() const override { return "weight_stats"; }

  static constexpr size_t kStatsPerLayer = 5;

 private:
  size_t max_layers_;
};

/// Task2Vec-style embedding: diagonal Fisher information of the final
/// linear layer, estimated on a probe set under the model's own output
/// distribution, summarized per class. Combines intrinsic access with
/// extrinsic probing.
class FisherEmbedder : public ModelEmbedder {
 public:
  FisherEmbedder(Tensor probes, int64_t num_classes);

  Result<std::vector<float>> Embed(nn::Model* model) const override;
  int64_t Dim() const override { return num_classes_ * kStatsPerClass; }
  std::string_view name() const override { return "fisher"; }

  static constexpr int64_t kStatsPerClass = 3;

 private:
  Tensor probes_;
  int64_t num_classes_;
};

/// Factory by name; probes/num_classes are the lake-wide probe set.
Result<std::unique_ptr<ModelEmbedder>> MakeEmbedder(
    const std::string& name, const Tensor& probes, int64_t num_classes);

/// L2-normalizes in place (no-op on the zero vector).
void L2NormalizeInPlace(std::vector<float>* v);

}  // namespace mlake::embed

#endif  // MLAKE_EMBED_EMBEDDER_H_
