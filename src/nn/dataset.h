#ifndef MLAKE_NN_DATASET_H_
#define MLAKE_NN_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "tensor/tensor.h"

namespace mlake::nn {

/// An in-memory labeled dataset.
struct Dataset {
  Tensor x;  // [n, dim]
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  size_t size() const { return labels.size(); }
  int64_t dim() const { return x.rank() == 2 ? x.dim(1) : 0; }

  /// Subset by row indices.
  Dataset Select(const std::vector<size_t>& indices) const;

  /// Copy with row `index` removed (leave-one-out attribution).
  Dataset Without(size_t index) const;

  /// Random split into (train, test) with `train_fraction` of rows.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng* rng) const;

  /// Concatenates rows of two compatible datasets.
  static Dataset Concat(const Dataset& a, const Dataset& b);
};

/// Identifies a synthetic classification task.
///
/// The *family* fixes the class-concept geometry (the paper's task, e.g.
/// "summarization of legal text"); the *domain* applies a systematic
/// input transformation (e.g. "US supreme court corpus" vs "EU
/// directives"). Models trained on the same family behave alike on
/// probes; same family + same domain behave nearly identically — the
/// structure the search and versioning experiments rely on.
struct TaskSpec {
  std::string family_id;  // semantic task family
  std::string domain_id;  // corpus/domain variant
  int64_t dim = 32;
  int64_t num_classes = 8;
  double noise = 0.55;  // within-class sample noise

  /// Canonical "family/domain" name used in cards and catalogs.
  std::string DatasetName() const { return family_id + "/" + domain_id; }

  Json ToJson() const;
  static Result<TaskSpec> FromJson(const Json& j);
};

/// A materialized task: class centroids in input space, derived
/// deterministically from the spec (same spec => same task).
class SyntheticTask {
 public:
  static SyntheticTask Make(const TaskSpec& spec);

  /// Draws `n` labeled samples.
  Dataset Sample(size_t n, Rng* rng) const;

  const TaskSpec& spec() const { return spec_; }
  const Tensor& centroids() const { return centroids_; }

 private:
  TaskSpec spec_;
  Tensor centroids_;  // [classes, dim]
};

/// A fixed set of unlabeled probe inputs shared across the lake; the
/// basis of extrinsic (behavioral) model comparison.
Tensor MakeProbeSet(int64_t dim, size_t n, uint64_t seed);

}  // namespace mlake::nn

#endif  // MLAKE_NN_DATASET_H_
