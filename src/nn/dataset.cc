#include "nn/dataset.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace mlake::nn {

Dataset Dataset::Select(const std::vector<size_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  int64_t d = dim();
  out.x = Tensor({static_cast<int64_t>(indices.size()), d});
  out.labels.reserve(indices.size());
  for (size_t row = 0; row < indices.size(); ++row) {
    size_t src = indices[row];
    MLAKE_CHECK(src < size()) << "Select index out of range";
    const float* ps = x.data() + static_cast<int64_t>(src) * d;
    float* pd = out.x.data() + static_cast<int64_t>(row) * d;
    std::copy(ps, ps + d, pd);
    out.labels.push_back(labels[src]);
  }
  return out;
}

Dataset Dataset::Without(size_t index) const {
  std::vector<size_t> keep;
  keep.reserve(size() - 1);
  for (size_t i = 0; i < size(); ++i) {
    if (i != index) keep.push_back(i);
  }
  return Select(keep);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng* rng) const {
  std::vector<size_t> order(size());
  for (size_t i = 0; i < size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t train_n = static_cast<size_t>(
      static_cast<double>(size()) * train_fraction);
  std::vector<size_t> train_idx(order.begin(), order.begin() + train_n);
  std::vector<size_t> test_idx(order.begin() + train_n, order.end());
  return {Select(train_idx), Select(test_idx)};
}

Dataset Dataset::Concat(const Dataset& a, const Dataset& b) {
  MLAKE_CHECK(a.dim() == b.dim()) << "Concat: dim mismatch";
  MLAKE_CHECK(a.num_classes == b.num_classes) << "Concat: class mismatch";
  Dataset out;
  out.num_classes = a.num_classes;
  int64_t d = a.dim();
  out.x = Tensor({static_cast<int64_t>(a.size() + b.size()), d});
  std::copy(a.x.data(), a.x.data() + a.x.NumElements(), out.x.data());
  std::copy(b.x.data(), b.x.data() + b.x.NumElements(),
            out.x.data() + a.x.NumElements());
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

Json TaskSpec::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("family_id", family_id);
  j.Set("domain_id", domain_id);
  j.Set("dim", dim);
  j.Set("num_classes", num_classes);
  j.Set("noise", noise);
  return j;
}

Result<TaskSpec> TaskSpec::FromJson(const Json& j) {
  if (!j.is_object()) return Status::Corruption("TaskSpec: not an object");
  TaskSpec spec;
  spec.family_id = j.GetString("family_id");
  spec.domain_id = j.GetString("domain_id");
  spec.dim = j.GetInt64("dim", 32);
  spec.num_classes = j.GetInt64("num_classes", 8);
  spec.noise = j.GetDouble("noise", 0.55);
  if (spec.family_id.empty()) {
    return Status::Corruption("TaskSpec: missing family_id");
  }
  return spec;
}

SyntheticTask SyntheticTask::Make(const TaskSpec& spec) {
  SyntheticTask task;
  task.spec_ = spec;

  // Family geometry: well-separated centroids drawn from the family rng.
  Rng family_rng(Fnv1a64(spec.family_id) ^ 0xA5A5A5A5ULL);
  Tensor centroids({spec.num_classes, spec.dim});
  for (float& v : centroids.storage()) {
    v = static_cast<float>(family_rng.Normal(0.0, 1.6));
  }

  // Domain transform: mild linear distortion plus a shift, derived from
  // the (family, domain) pair so distinct domains of one family stay
  // related but distinguishable.
  Rng domain_rng(Fnv1a64(spec.DatasetName()) ^ 0x5A5A5A5AULL);
  std::vector<float> shift(static_cast<size_t>(spec.dim));
  for (float& v : shift) v = static_cast<float>(domain_rng.Normal(0.0, 0.6));
  // Distortion: x -> x + eps * G x with a sparse random G.
  for (int64_t c = 0; c < spec.num_classes; ++c) {
    std::vector<float> distorted(static_cast<size_t>(spec.dim), 0.0f);
    for (int64_t i = 0; i < spec.dim; ++i) {
      distorted[static_cast<size_t>(i)] = centroids.At(c, i);
    }
    Rng g_rng(Fnv1a64(spec.domain_id) ^ 0x77777777ULL);
    for (int64_t i = 0; i < spec.dim; ++i) {
      float acc = 0.0f;
      for (int64_t j = 0; j < spec.dim; ++j) {
        acc += static_cast<float>(g_rng.Normal(0.0, 0.12)) *
               centroids.At(c, j);
      }
      distorted[static_cast<size_t>(i)] += acc;
    }
    for (int64_t i = 0; i < spec.dim; ++i) {
      centroids.At(c, i) =
          distorted[static_cast<size_t>(i)] + shift[static_cast<size_t>(i)];
    }
  }
  task.centroids_ = std::move(centroids);
  return task;
}

Dataset SyntheticTask::Sample(size_t n, Rng* rng) const {
  Dataset out;
  out.num_classes = spec_.num_classes;
  out.x = Tensor({static_cast<int64_t>(n), spec_.dim});
  out.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t y = static_cast<int64_t>(rng->NextBelow(
        static_cast<uint64_t>(spec_.num_classes)));
    out.labels[i] = y;
    float* row = out.x.data() + static_cast<int64_t>(i) * spec_.dim;
    for (int64_t j = 0; j < spec_.dim; ++j) {
      row[j] = centroids_.At(y, j) +
               static_cast<float>(rng->Normal(0.0, spec_.noise));
    }
  }
  return out;
}

Tensor MakeProbeSet(int64_t dim, size_t n, uint64_t seed) {
  Rng rng(seed ^ 0xBEEFCAFEULL);
  return Tensor::RandomNormal({static_cast<int64_t>(n), dim}, &rng, 1.4f);
}

}  // namespace mlake::nn
