#ifndef MLAKE_NN_LAYERS_H_
#define MLAKE_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace mlake::nn {

/// Fully connected layer: y = x W^T + b with W of shape [out, in].
class Linear : public Layer {
 public:
  /// Xavier-uniform weight init, zero bias.
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::vector<Param*> Params() override { return {&weight_, &bias_}; }
  std::string_view type() const override { return "linear"; }
  int64_t OutputDim(int64_t) const override { return out_dim_; }

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

/// Rectified linear activation.
class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::string_view type() const override { return "relu"; }
  int64_t OutputDim(int64_t in) const override { return in; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::string_view type() const override { return "tanh"; }
  int64_t OutputDim(int64_t in) const override { return in; }

 private:
  Tensor cached_output_;
};

/// Gaussian error linear unit (tanh approximation).
class Gelu : public Layer {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::string_view type() const override { return "gelu"; }
  int64_t OutputDim(int64_t in) const override { return in; }

 private:
  Tensor cached_input_;
};

/// Layer normalization over the feature axis with learned gain/bias.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int64_t dim, float epsilon = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::vector<Param*> Params() override { return {&gamma_, &beta_}; }
  std::string_view type() const override { return "layernorm"; }
  int64_t OutputDim(int64_t) const override { return dim_; }

 private:
  int64_t dim_;
  float epsilon_;
  Param gamma_;
  Param beta_;
  Tensor cached_normalized_;
  Tensor cached_inv_std_;  // [batch]
};

/// Single-head self-attention over an input interpreted as `seq_len`
/// tokens of width `d_model` (input/output shape [batch, seq*d]).
///
/// Weights Wq/Wk/Wv/Wo are [d, d]; per example:
///   Q = X Wq^T, K = X Wk^T, V = X Wv^T,
///   A = softmax(Q K^T / sqrt(d)), out = (A V) Wo^T.
/// Full manual backward pass, including through the softmax.
class SelfAttention : public Layer {
 public:
  SelfAttention(int64_t seq_len, int64_t d_model, Rng* rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::vector<Param*> Params() override {
    return {&wq_, &wk_, &wv_, &wo_};
  }
  std::string_view type() const override { return "attention"; }
  int64_t OutputDim(int64_t in) const override { return in; }

  int64_t seq_len() const { return seq_len_; }
  int64_t d_model() const { return d_model_; }

 private:
  int64_t seq_len_;
  int64_t d_model_;
  Param wq_, wk_, wv_, wo_;
  // Per-example forward caches (training mode only).
  std::vector<Tensor> cached_x_, cached_q_, cached_k_, cached_v_, cached_a_,
      cached_z_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); inference
/// is the identity. The layer owns its RNG so training runs remain
/// deterministic given the build seed.
class Dropout : public Layer {
 public:
  Dropout(float rate, uint64_t seed);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::string_view type() const override { return "dropout"; }
  int64_t OutputDim(int64_t in) const override { return in; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
  Tensor cached_mask_;
};

/// Pre-activation residual block of width d:
///   out = x + W2 · relu(W1 · x + b1) + b2.
/// Composite layer owning two Linear sublayers; the skip connection is
/// what lets the "resmlp" family go deep without vanishing gradients.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int64_t dim, Rng* rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::vector<Param*> Params() override;
  std::string_view type() const override { return "resblock"; }
  int64_t OutputDim(int64_t) const override { return dim_; }

 private:
  int64_t dim_;
  Linear inner_;
  Relu relu_;
  Linear outer_;
};

/// Averages token positions: [batch, seq*d] -> [batch, d].
class MeanPool : public Layer {
 public:
  MeanPool(int64_t seq_len, int64_t d_model)
      : seq_len_(seq_len), d_model_(d_model) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& d_out) override;
  std::string_view type() const override { return "meanpool"; }
  int64_t OutputDim(int64_t) const override { return d_model_; }

 private:
  int64_t seq_len_;
  int64_t d_model_;
  int64_t cached_batch_ = 0;
};

}  // namespace mlake::nn

#endif  // MLAKE_NN_LAYERS_H_
