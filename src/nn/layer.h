#ifndef MLAKE_NN_LAYER_H_
#define MLAKE_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mlake::nn {

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Frozen params are skipped by optimizers (used by LoRA fine-tuning
  /// and linear-probe training).
  bool frozen = false;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// A differentiable layer.
///
/// `Forward` caches whatever activations `Backward` needs; a layer is
/// therefore stateful across a forward/backward pair and not reentrant.
/// This is the classic define-by-layer design (no autograd tape), which
/// keeps the substrate small while supporting every architecture in the
/// lake.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Maps a [batch, in] activation to [batch, out]. When `training` is
  /// true the layer caches activations for `Backward`.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must follow a `Forward(x, /*training=*/true)`.
  virtual Tensor Backward(const Tensor& d_out) = 0;

  /// Trainable parameters (may be empty).
  virtual std::vector<Param*> Params() { return {}; }

  /// Stable type tag ("linear", "relu", ...) used in parameter names and
  /// artifact section names.
  virtual std::string_view type() const = 0;

  /// Output width for input width `in`; used by the model factory for
  /// shape validation.
  virtual int64_t OutputDim(int64_t in) const = 0;
};

}  // namespace mlake::nn

#endif  // MLAKE_NN_LAYER_H_
