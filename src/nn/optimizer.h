#ifndef MLAKE_NN_OPTIMIZER_H_
#define MLAKE_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace mlake::nn {

/// First-order optimizer over a fixed parameter list. Frozen params are
/// skipped (their gradients may still accumulate; they are simply never
/// applied).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void Step(const std::vector<Param*>& params) = 0;
};

/// Stochastic gradient descent with optional momentum and decoupled
/// weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f, float weight_decay = 0.0f)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(const std::vector<Param*>& params) override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;  // lazily sized to params
};

/// Adam with decoupled weight decay (AdamW).
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon),
        weight_decay_(weight_decay) {}

  void Step(const std::vector<Param*>& params) override;

 private:
  float lr_, beta1_, beta2_, epsilon_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace mlake::nn

#endif  // MLAKE_NN_OPTIMIZER_H_
