#include "nn/layers.h"

#include <cmath>

namespace mlake::nn {

// ---------------------------------------------------------------- Linear

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_("weight", Tensor::XavierUniform(out_dim, in_dim, rng)),
      bias_("bias", Tensor::Zeros({out_dim})) {}

Tensor Linear::Forward(const Tensor& x, bool training) {
  MLAKE_CHECK(x.rank() == 2 && x.dim(1) == in_dim_)
      << "Linear: bad input " << x.ShapeString();
  if (training) cached_input_ = x;
  return AddRowBroadcast(MatMulTransposedB(x, weight_.value), bias_.value);
}

Tensor Linear::Backward(const Tensor& d_out) {
  // dW = dY^T X; db = column-sum dY; dX = dY W.
  Tensor dw = MatMulTransposedA(d_out, cached_input_);
  Axpy(1.0f, dw, &weight_.grad);
  int64_t batch = d_out.dim(0);
  for (int64_t i = 0; i < batch; ++i) {
    for (int64_t j = 0; j < out_dim_; ++j) {
      bias_.grad.At(j) += d_out.At(i, j);
    }
  }
  return MatMul(d_out, weight_.value);
}

// ------------------------------------------------------------------ Relu

Tensor Relu::Forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  Tensor out = x;
  for (float& v : out.storage()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor Relu::Backward(const Tensor& d_out) {
  Tensor dx = d_out;
  const float* in = cached_input_.data();
  float* p = dx.data();
  for (int64_t i = 0; i < dx.NumElements(); ++i) {
    if (in[i] <= 0.0f) p[i] = 0.0f;
  }
  return dx;
}

// ------------------------------------------------------------------ Tanh

Tensor Tanh::Forward(const Tensor& x, bool training) {
  Tensor out = x;
  for (float& v : out.storage()) v = std::tanh(v);
  if (training) cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& d_out) {
  Tensor dx = d_out;
  const float* y = cached_output_.data();
  float* p = dx.data();
  for (int64_t i = 0; i < dx.NumElements(); ++i) {
    p[i] *= (1.0f - y[i] * y[i]);
  }
  return dx;
}

// ------------------------------------------------------------------ Gelu

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

inline float GeluValue(float x) {
  float inner = kGeluC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float GeluGrad(float x) {
  float x3 = x * x * x;
  float inner = kGeluC * (x + 0.044715f * x3);
  float t = std::tanh(inner);
  float sech2 = 1.0f - t * t;
  float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
}
}  // namespace

Tensor Gelu::Forward(const Tensor& x, bool training) {
  if (training) cached_input_ = x;
  Tensor out = x;
  for (float& v : out.storage()) v = GeluValue(v);
  return out;
}

Tensor Gelu::Backward(const Tensor& d_out) {
  Tensor dx = d_out;
  const float* in = cached_input_.data();
  float* p = dx.data();
  for (int64_t i = 0; i < dx.NumElements(); ++i) {
    p[i] *= GeluGrad(in[i]);
  }
  return dx;
}

// ------------------------------------------------------------- LayerNorm

LayerNorm::LayerNorm(int64_t dim, float epsilon)
    : dim_(dim),
      epsilon_(epsilon),
      gamma_("gamma", Tensor::Full({dim}, 1.0f)),
      beta_("beta", Tensor::Zeros({dim})) {}

Tensor LayerNorm::Forward(const Tensor& x, bool training) {
  MLAKE_CHECK(x.rank() == 2 && x.dim(1) == dim_)
      << "LayerNorm: bad input " << x.ShapeString();
  int64_t batch = x.dim(0);
  Tensor normalized({batch, dim_});
  Tensor inv_std({batch});
  Tensor out({batch, dim_});
  for (int64_t i = 0; i < batch; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < dim_; ++j) mean += x.At(i, j);
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (int64_t j = 0; j < dim_; ++j) {
      double d = x.At(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim_);
    float istd = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    inv_std.At(i) = istd;
    for (int64_t j = 0; j < dim_; ++j) {
      float n = (x.At(i, j) - static_cast<float>(mean)) * istd;
      normalized.At(i, j) = n;
      out.At(i, j) = n * gamma_.value.At(j) + beta_.value.At(j);
    }
  }
  if (training) {
    cached_normalized_ = normalized;
    cached_inv_std_ = inv_std;
  }
  return out;
}

Tensor LayerNorm::Backward(const Tensor& d_out) {
  int64_t batch = d_out.dim(0);
  Tensor dx({batch, dim_});
  for (int64_t i = 0; i < batch; ++i) {
    // Accumulate dGamma/dBeta and the two row reductions needed for dX.
    double sum_dn = 0.0;
    double sum_dn_n = 0.0;
    for (int64_t j = 0; j < dim_; ++j) {
      float n = cached_normalized_.At(i, j);
      float g = d_out.At(i, j);
      gamma_.grad.At(j) += g * n;
      beta_.grad.At(j) += g;
      float dn = g * gamma_.value.At(j);
      sum_dn += dn;
      sum_dn_n += static_cast<double>(dn) * n;
    }
    float istd = cached_inv_std_.At(i);
    float inv_dim = 1.0f / static_cast<float>(dim_);
    for (int64_t j = 0; j < dim_; ++j) {
      float n = cached_normalized_.At(i, j);
      float dn = d_out.At(i, j) * gamma_.value.At(j);
      dx.At(i, j) =
          istd * (dn - inv_dim * static_cast<float>(sum_dn) -
                  n * inv_dim * static_cast<float>(sum_dn_n));
    }
  }
  return dx;
}

// --------------------------------------------------------- SelfAttention

SelfAttention::SelfAttention(int64_t seq_len, int64_t d_model, Rng* rng)
    : seq_len_(seq_len),
      d_model_(d_model),
      wq_("wq", Tensor::XavierUniform(d_model, d_model, rng)),
      wk_("wk", Tensor::XavierUniform(d_model, d_model, rng)),
      wv_("wv", Tensor::XavierUniform(d_model, d_model, rng)),
      wo_("wo", Tensor::XavierUniform(d_model, d_model, rng)) {}

Tensor SelfAttention::Forward(const Tensor& x, bool training) {
  MLAKE_CHECK(x.rank() == 2 && x.dim(1) == seq_len_ * d_model_)
      << "SelfAttention: bad input " << x.ShapeString();
  int64_t batch = x.dim(0);
  float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  Tensor out({batch, seq_len_ * d_model_});
  if (training) {
    cached_x_.clear();
    cached_q_.clear();
    cached_k_.clear();
    cached_v_.clear();
    cached_a_.clear();
    cached_z_.clear();
  }
  for (int64_t b = 0; b < batch; ++b) {
    Tensor xe = x.Row(b).Reshape({seq_len_, d_model_});
    Tensor q = MatMulTransposedB(xe, wq_.value);
    Tensor k = MatMulTransposedB(xe, wk_.value);
    Tensor v = MatMulTransposedB(xe, wv_.value);
    Tensor scores = Scale(MatMulTransposedB(q, k), scale);
    Tensor a = RowSoftmax(scores);
    Tensor z = MatMul(a, v);
    Tensor y = MatMulTransposedB(z, wo_.value);
    const float* py = y.data();
    float* po = out.data() + b * seq_len_ * d_model_;
    std::copy(py, py + seq_len_ * d_model_, po);
    if (training) {
      cached_x_.push_back(std::move(xe));
      cached_q_.push_back(std::move(q));
      cached_k_.push_back(std::move(k));
      cached_v_.push_back(std::move(v));
      cached_a_.push_back(std::move(a));
      cached_z_.push_back(std::move(z));
    }
  }
  return out;
}

Tensor SelfAttention::Backward(const Tensor& d_out) {
  int64_t batch = d_out.dim(0);
  MLAKE_CHECK(static_cast<size_t>(batch) == cached_x_.size())
      << "SelfAttention::Backward without matching Forward";
  float scale = 1.0f / std::sqrt(static_cast<float>(d_model_));
  Tensor dx_full({batch, seq_len_ * d_model_});
  for (int64_t b = 0; b < batch; ++b) {
    Tensor dy = d_out.Row(b).Reshape({seq_len_, d_model_});
    const Tensor& xe = cached_x_[static_cast<size_t>(b)];
    const Tensor& q = cached_q_[static_cast<size_t>(b)];
    const Tensor& k = cached_k_[static_cast<size_t>(b)];
    const Tensor& v = cached_v_[static_cast<size_t>(b)];
    const Tensor& a = cached_a_[static_cast<size_t>(b)];
    const Tensor& z = cached_z_[static_cast<size_t>(b)];

    // y = z Wo^T  =>  dWo = dy^T z, dz = dy Wo.
    Axpy(1.0f, MatMulTransposedA(dy, z), &wo_.grad);
    Tensor dz = MatMul(dy, wo_.value);

    // z = a v  =>  da = dz v^T, dv = a^T dz.
    Tensor da = MatMulTransposedB(dz, v);
    Tensor dv = MatMulTransposedA(a, dz);

    // a = softmax(s) rowwise => ds_ij = a_ij * (da_ij - sum_k da_ik a_ik).
    Tensor ds({seq_len_, seq_len_});
    for (int64_t i = 0; i < seq_len_; ++i) {
      double inner = 0.0;
      for (int64_t j = 0; j < seq_len_; ++j) {
        inner += static_cast<double>(da.At(i, j)) * a.At(i, j);
      }
      for (int64_t j = 0; j < seq_len_; ++j) {
        ds.At(i, j) =
            a.At(i, j) * (da.At(i, j) - static_cast<float>(inner));
      }
    }

    // s = scale * q k^T  =>  dq = scale * ds k, dk = scale * ds^T q.
    Tensor dq = Scale(MatMul(ds, k), scale);
    Tensor dk = Scale(MatMulTransposedA(ds, q), scale);

    // q = x Wq^T  =>  dWq = dq^T x, dx += dq Wq (same for k, v).
    Axpy(1.0f, MatMulTransposedA(dq, xe), &wq_.grad);
    Axpy(1.0f, MatMulTransposedA(dk, xe), &wk_.grad);
    Axpy(1.0f, MatMulTransposedA(dv, xe), &wv_.grad);
    Tensor dxe = MatMul(dq, wq_.value);
    Axpy(1.0f, MatMul(dk, wk_.value), &dxe);
    Axpy(1.0f, MatMul(dv, wv_.value), &dxe);

    const float* ps = dxe.data();
    float* pd = dx_full.data() + b * seq_len_ * d_model_;
    std::copy(ps, ps + seq_len_ * d_model_, pd);
  }
  return dx_full;
}

// --------------------------------------------------------------- Dropout

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  MLAKE_CHECK(rate >= 0.0f && rate < 1.0f) << "dropout rate in [0, 1)";
}

Tensor Dropout::Forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0f) return x;
  cached_mask_ = Tensor(x.shape());
  float keep_scale = 1.0f / (1.0f - rate_);
  float* pm = cached_mask_.data();
  for (int64_t i = 0; i < cached_mask_.NumElements(); ++i) {
    pm[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  return Mul(x, cached_mask_);
}

Tensor Dropout::Backward(const Tensor& d_out) {
  if (rate_ == 0.0f) return d_out;
  return Mul(d_out, cached_mask_);
}

// ---------------------------------------------------------- ResidualBlock

ResidualBlock::ResidualBlock(int64_t dim, Rng* rng)
    : dim_(dim), inner_(dim, dim, rng), outer_(dim, dim, rng) {
  // Distinct parameter names so the flattened state dict stays unique.
  inner_.weight().name = "w1";
  inner_.bias().name = "b1";
  outer_.weight().name = "w2";
  outer_.bias().name = "b2";
}

Tensor ResidualBlock::Forward(const Tensor& x, bool training) {
  Tensor h = inner_.Forward(x, training);
  h = relu_.Forward(h, training);
  h = outer_.Forward(h, training);
  return Add(x, h);
}

Tensor ResidualBlock::Backward(const Tensor& d_out) {
  Tensor d = outer_.Backward(d_out);
  d = relu_.Backward(d);
  d = inner_.Backward(d);
  return Add(d_out, d);  // skip path
}

std::vector<Param*> ResidualBlock::Params() {
  return {&inner_.weight(), &inner_.bias(), &outer_.weight(),
          &outer_.bias()};
}

// -------------------------------------------------------------- MeanPool

Tensor MeanPool::Forward(const Tensor& x, bool training) {
  MLAKE_CHECK(x.rank() == 2 && x.dim(1) == seq_len_ * d_model_)
      << "MeanPool: bad input " << x.ShapeString();
  int64_t batch = x.dim(0);
  if (training) cached_batch_ = batch;
  Tensor out({batch, d_model_});
  float inv = 1.0f / static_cast<float>(seq_len_);
  for (int64_t b = 0; b < batch; ++b) {
    const float* px = x.data() + b * seq_len_ * d_model_;
    float* po = out.data() + b * d_model_;
    for (int64_t t = 0; t < seq_len_; ++t) {
      for (int64_t j = 0; j < d_model_; ++j) {
        po[j] += px[t * d_model_ + j] * inv;
      }
    }
  }
  return out;
}

Tensor MeanPool::Backward(const Tensor& d_out) {
  int64_t batch = d_out.dim(0);
  Tensor dx({batch, seq_len_ * d_model_});
  float inv = 1.0f / static_cast<float>(seq_len_);
  for (int64_t b = 0; b < batch; ++b) {
    const float* pd = d_out.data() + b * d_model_;
    float* px = dx.data() + b * seq_len_ * d_model_;
    for (int64_t t = 0; t < seq_len_; ++t) {
      for (int64_t j = 0; j < d_model_; ++j) {
        px[t * d_model_ + j] = pd[j] * inv;
      }
    }
  }
  return dx;
}

}  // namespace mlake::nn
