#include "nn/trainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "tensor/ops.h"

namespace mlake::nn {

Json TrainConfig::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("epochs", epochs);
  j.Set("batch_size", batch_size);
  j.Set("lr", static_cast<double>(lr));
  j.Set("optimizer", optimizer);
  j.Set("momentum", static_cast<double>(momentum));
  j.Set("weight_decay", static_cast<double>(weight_decay));
  j.Set("seed", seed);
  return j;
}

TrainConfig TrainConfig::FromJson(const Json& j) {
  TrainConfig c;
  c.epochs = static_cast<int>(j.GetInt64("epochs", c.epochs));
  c.batch_size = static_cast<int>(j.GetInt64("batch_size", c.batch_size));
  c.lr = static_cast<float>(j.GetDouble("lr", c.lr));
  c.optimizer = j.GetString("optimizer", c.optimizer);
  c.momentum = static_cast<float>(j.GetDouble("momentum", c.momentum));
  c.weight_decay =
      static_cast<float>(j.GetDouble("weight_decay", c.weight_decay));
  c.seed = static_cast<uint64_t>(j.GetInt64("seed", 17));
  return c;
}

Result<std::unique_ptr<Optimizer>> MakeOptimizer(const TrainConfig& config) {
  if (config.optimizer == "adam") {
    return std::unique_ptr<Optimizer>(
        new Adam(config.lr, 0.9f, 0.999f, 1e-8f, config.weight_decay));
  }
  if (config.optimizer == "sgd") {
    return std::unique_ptr<Optimizer>(
        new Sgd(config.lr, config.momentum, config.weight_decay));
  }
  return Status::InvalidArgument("unknown optimizer: " + config.optimizer);
}

Result<TrainReport> Train(Model* model, const Dataset& data,
                          const TrainConfig& config) {
  if (data.size() == 0) {
    return Status::InvalidArgument("Train: empty dataset");
  }
  if (data.dim() != model->spec().input_dim) {
    return Status::InvalidArgument("Train: dataset dim mismatch");
  }
  if (config.epochs <= 0 || config.batch_size <= 0) {
    return Status::InvalidArgument("Train: bad epochs/batch");
  }
  MLAKE_ASSIGN_OR_RETURN(std::unique_ptr<Optimizer> opt,
                         MakeOptimizer(config));

  Rng rng(config.seed);
  std::vector<Param*> params = model->Params();
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainReport report;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t correct = 0;
    size_t seen = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config.batch_size)) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      std::vector<size_t> batch_idx(order.begin() + start,
                                    order.begin() + end);
      Dataset batch = data.Select(batch_idx);
      Tensor logits = model->Forward(batch.x, /*training=*/true);
      LossAndGrad lg = SoftmaxCrossEntropy(logits, batch.labels);
      epoch_loss += lg.loss * static_cast<double>(batch.size());
      std::vector<int64_t> pred = RowArgMax(logits);
      for (size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == batch.labels[i]) ++correct;
      }
      seen += batch.size();
      model->Backward(lg.d_logits);
      opt->Step(params);
    }
    report.epoch_loss.push_back(epoch_loss / static_cast<double>(seen));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(seen));
  }
  report.final_loss = report.epoch_loss.back();
  report.final_accuracy = report.epoch_accuracy.back();
  return report;
}

double EvaluateAccuracy(Model* model, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  Tensor logits = model->Forward(data.x, /*training=*/false);
  return Accuracy(logits, data.labels);
}

double EvaluateLoss(Model* model, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  Tensor logits = model->Forward(data.x, /*training=*/false);
  LossAndGrad lg = SoftmaxCrossEntropy(logits, data.labels);
  return lg.loss;
}

}  // namespace mlake::nn
