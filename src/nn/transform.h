#ifndef MLAKE_NN_TRANSFORM_H_
#define MLAKE_NN_TRANSFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/dataset.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace mlake::nn {

/// Model-to-model transformations. Each corresponds to one typed edge in
/// the model version graph (paper §4 "Model Versions"): fine-tuning,
/// parameter-efficient tuning (LoRA), model editing, model stitching,
/// pruning, and distillation.

/// Full fine-tuning: continues training every parameter on `data`.
Result<TrainReport> Finetune(Model* model, const Dataset& data,
                             const TrainConfig& config);

/// Result of a LoRA fine-tune: the adapters were merged into the model's
/// linear weights (W <- W + scale * B A) after training.
struct LoraReport {
  TrainReport train;
  int64_t rank = 0;
  int64_t adapted_layers = 0;
};

/// Parameter-efficient fine-tuning with low-rank adapters on every
/// Linear layer. Base weights and biases stay frozen during adaptation;
/// gradients for A and B are derived from the merged-weight gradient by
/// the chain rule (dA = s B^T dW, dB = s dW A^T). On success the deltas
/// are merged, so downstream weight-space analyses see a low-rank
/// difference from the parent — the signature heritage recovery exploits.
Result<LoraReport> LoraFinetune(Model* model, const Dataset& data,
                                int64_t rank, float scale,
                                const TrainConfig& config);

/// ROME-style rank-one edit of the final Linear layer: for the hidden key
/// vector produced by `probe_input` (a [1, input_dim] tensor), shifts the
/// layer's output toward `target_class` by `strength` logits:
///   W <- W + (delta ⊗ h) / ||h||^2.
/// Returns the logit gap achieved for the probe after the edit.
Result<double> RankOneEdit(Model* model, const Tensor& probe_input,
                           int64_t target_class, float strength);

/// Model stitching: layers [0, cut) from `bottom` and [cut, end) from
/// `top`. Both models must share the same architecture spec.
Result<std::unique_ptr<Model>> StitchModels(const Model& bottom,
                                            const Model& top, size_t cut);

/// Global magnitude pruning: zeroes the smallest-|w| `fraction` of linear
/// weight entries (biases untouched). Returns the number zeroed.
Result<int64_t> MagnitudePrune(Model* model, double fraction);

/// Adds i.i.d. Gaussian noise with stddev `relative * rms(weights)` to
/// every parameter; models "continued pre-training by someone else".
void AddWeightNoise(Model* model, double relative, Rng* rng);

/// Knowledge distillation: trains a fresh `student_spec` model to match
/// the teacher's softened output distribution on `inputs`.
Result<std::unique_ptr<Model>> Distill(Model* teacher,
                                       const ArchSpec& student_spec,
                                       const Tensor& inputs,
                                       float temperature,
                                       const TrainConfig& config, Rng* rng);

}  // namespace mlake::nn

#endif  // MLAKE_NN_TRANSFORM_H_
